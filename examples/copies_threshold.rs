//! The Figure 6 phenomenon, live: a transaction whose copies are
//! deadlock-free at two instances and deadlock-prone at three — the
//! counterexample showing Theorem 5's copy-reduction fails for
//! deadlock-freedom alone.
//!
//! Run with: `cargo run --example copies_threshold --release`

use ddlf::core::{copies_safe_df, Explorer};
use ddlf::model::Database;
use ddlf::sim::{run, DeadlockPolicy, SimConfig};
use ddlf::workloads::{fig6, fig6_transaction};

fn main() {
    let db = Database::one_entity_per_site(3);
    let t = fig6_transaction(&db, "fig6");
    println!("transaction: {t}");
    println!("  (entities a,b,c on three sites; arcs La→Ub, Lb→Uc, Lc→Ua)");

    // Static view: Corollary 3 rejects safe+DF already at two copies …
    match copies_safe_df(&t) {
        Ok(_) => println!("Corollary 3: safe+DF for any number of copies"),
        Err(v) => println!("Corollary 3: NOT safe+DF for ≥2 copies ({v})"),
    }

    // … but deadlock-freedom alone has a threshold between 2 and 3.
    println!("\n== exhaustive deadlock search ==");
    for d in 2..=4 {
        let sys = fig6(d);
        let ex = Explorer::new(&sys, 50_000_000);
        let (verdict, stats) = ex.find_deadlock();
        println!(
            "{d} copies: {} ({} states explored)",
            if verdict.violated() {
                "DEADLOCK REACHABLE"
            } else {
                "deadlock-free"
            },
            stats.states
        );
    }

    // Runtime view: hammer the 2-copy and 3-copy systems across seeds.
    println!("\n== runtime (policy = Nothing, 200 seeds each) ==");
    for d in [2usize, 3] {
        let sys = fig6(d);
        let mut stalls = 0;
        for seed in 0..200 {
            let r = run(
                &sys,
                SimConfig {
                    policy: DeadlockPolicy::Nothing,
                    seed,
                    ..Default::default()
                },
            );
            stalls += usize::from(!r.stalled.is_empty());
        }
        println!("{d} copies: deadlocked in {stalls}/200 runs");
    }
    println!("\nTwo copies can never close the odd hold-and-wait ring; three can.");
}
