//! Theorem 2 end-to-end: encode a 3SAT′ formula as two distributed
//! transactions, decide deadlock-freedom by cycle search, and read the
//! satisfying assignment back off the reduction-graph cycle.
//!
//! Run with: `cargo run --example sat_hardness`

use ddlf::core::SatReduction;
use ddlf::sat::{generate_batch, solve, Cnf, SatResult};

fn main() {
    // The paper's worked example: (x1 ∨ x2)(x1 ∨ ¬x2)(¬x1 ∨ x2).
    let f = Cnf::paper_example();
    println!("formula: {f}");

    let red = SatReduction::build(&f).expect("paper example is 3SAT'");
    println!(
        "gadget: 2 transactions × {} nodes over {} entities on {} sites",
        red.sys.txn(ddlf::model::TxnId(0)).node_count(),
        red.sys.db().entity_count(),
        red.sys.db().site_count(),
    );

    // Independent SAT decision.
    let sat = solve(&f);
    println!(
        "DPLL: {}",
        match &sat {
            SatResult::Sat(a) => format!("SAT with {a:?}"),
            SatResult::Unsat => "UNSAT".to_string(),
        }
    );

    // Independent deadlock decision on the gadget.
    match red.has_deadlock_prefix(100_000_000).expect("budget") {
        Some(w) => {
            println!(
                "gadget: deadlock prefix FOUND; reduction cycle has {} nodes",
                w.cycle.len()
            );
            let a = red.assignment_from_cycle(&w.cycle);
            println!("assignment read off the cycle: {a:?}");
            assert!(f.evaluate(&a), "cycle assignment must satisfy the formula");
            println!("…and it satisfies the formula. (SAT ⇒ deadlock verified)");
        }
        None => println!("gadget: no deadlock prefix (formula must be UNSAT)"),
    }

    // The other direction on a small unsatisfiable instance: (x)(x)(¬x).
    let mut unsat = Cnf::new(1);
    unsat.add_clause(vec![ddlf::sat::Lit::pos(ddlf::sat::Var(0))]);
    unsat.add_clause(vec![ddlf::sat::Lit::pos(ddlf::sat::Var(0))]);
    unsat.add_clause(vec![ddlf::sat::Lit::neg(ddlf::sat::Var(0))]);
    println!("\nformula: {unsat}");
    let red2 = SatReduction::build(&unsat).unwrap();
    println!(
        "DPLL: {:?} | gadget deadlock prefix: {:?}",
        solve(&unsat).is_sat(),
        red2.has_deadlock_prefix(100_000_000).unwrap().is_some()
    );

    // A batch sweep: SAT answer vs deadlock answer must agree everywhere.
    println!("\n== random 3SAT' sweep (n = 1..3, 10 instances each) ==");
    let mut agree = 0;
    let mut total = 0;
    for n in 1..=3 {
        for f in generate_batch(n, 0xDDF + n as u64, 10) {
            let red = SatReduction::build(&f).unwrap();
            let s = solve(&f).is_sat();
            let d = red.has_deadlock_prefix(100_000_000).unwrap().is_some();
            total += 1;
            if s == d {
                agree += 1;
            } else {
                println!("MISMATCH on {f}: sat={s} deadlock={d}");
            }
        }
    }
    println!("agreement: {agree}/{total} (Theorem 2: satisfiable ⟺ not deadlock-free)");
}
