//! Static audit of a realistic multi-site workload: certify a banking
//! transaction mix, inspect the witnesses when certification fails, and
//! reproduce the paper's Fig. 2 warning that two-entity deadlock
//! detectors are unsound for distributed transactions.
//!
//! Run with: `cargo run --example static_audit`

use ddlf::core::{
    certify_safe_and_deadlock_free, check_deadlock_prefix, tirri_two_entity_pattern,
    CertifyOptions, Violation,
};
use ddlf::model::TxnId;
use ddlf::workloads::{bank_greedy_pair, bank_ordered_pair, fig2, Bank};

fn main() {
    println!("== banking workload audit ==");

    // Greedy transfers: lock own branch first, then the other side.
    let (_, greedy) = bank_greedy_pair();
    match certify_safe_and_deadlock_free(&greedy, CertifyOptions::default()) {
        Ok(_) => println!("greedy transfers: certified (unexpected)"),
        Err(Violation::Pair { i, j, violation }) => {
            println!("greedy transfers: REJECTED — pair ({i}, {j}): {violation}");
        }
        Err(v) => println!("greedy transfers: REJECTED — {v}"),
    }

    // Ordered transfers: canonical global lock order.
    let (_, ordered) = bank_ordered_pair();
    match certify_safe_and_deadlock_free(&ordered, CertifyOptions::default()) {
        Ok(cert) => println!("ordered transfers: CERTIFIED ({cert:?})"),
        Err(v) => println!("ordered transfers: rejected — {v}"),
    }

    // A bigger mix: transfers + audits, all canonically ordered.
    let bank = Bank::new(3, 4);
    let mix = vec![
        bank.transfer_ordered("t0", (0, 0), (1, 2)),
        bank.transfer_ordered("t1", (1, 1), (2, 0)),
        bank.transfer_ordered("t2", (2, 3), (0, 1)),
        bank.audit("audit0", 0),
        bank.audit("audit1", 1),
    ];
    let sys = ddlf::model::TransactionSystem::new(bank.db.clone(), mix).unwrap();
    match certify_safe_and_deadlock_free(&sys, CertifyOptions::default()) {
        Ok(cert) => println!("5-transaction mix: CERTIFIED ({cert:?})"),
        Err(v) => println!("5-transaction mix: rejected — {v}"),
    }

    // The Fig. 2 lesson: a two-entity pattern detector (Tirri PODC'83)
    // says "deadlock-free", the reduction graph disagrees.
    println!("\n== Fig. 2: why two-entity detectors are unsound ==");
    let (sys2, prefix) = fig2();
    let tirri = tirri_two_entity_pattern(sys2.txn(TxnId(0)), sys2.txn(TxnId(1)));
    println!("Tirri two-entity pattern: {tirri:?} (no pair found)");
    let dp = check_deadlock_prefix(&sys2, &prefix, 1_000_000).expect("deadlock prefix");
    println!(
        "reduction graph of the paper's prefix: CYCLIC, cycle of {} nodes:",
        dp.cycle.len()
    );
    for g in &dp.cycle {
        let txn = sys2.txn(g.txn);
        let op = txn.op(g.node);
        print!(
            "  {}{}({})",
            if op.is_lock() { "L" } else { "U" },
            sys2.db().name_of(op.entity),
            g.txn
        );
    }
    println!("\n(a deadlock through four entities — invisible to any two-entity test)");
}
