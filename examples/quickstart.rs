//! Quickstart: build a distributed database, write two transactions,
//! certify them, and watch a certified system run deadlock-free with no
//! runtime machinery at all.
//!
//! Run with: `cargo run --example quickstart`

use ddlf::core::{certify_safe_and_deadlock_free, CertifyOptions, Violation};
use ddlf::model::{Database, Transaction, TransactionSystem};
use ddlf::sim::{run, DeadlockPolicy, SimConfig};

fn main() {
    // A two-site database: account x at the branch, ledger y at HQ.
    let mut b = Database::builder();
    let branch = b.add_site();
    let hq = b.add_site();
    let x = b.add_entity("account", branch);
    let y = b.add_entity("ledger", hq);
    let db = b.build();

    // Discipline A: both transactions lock `account` first and hold it
    // until after `ledger` — a common first-locked entity with coverage.
    let disciplined = {
        let mut tb = Transaction::builder("disciplined");
        let lx = tb.lock(x);
        let ly = tb.lock(y);
        let uy = tb.unlock(y);
        let ux = tb.unlock(x);
        tb.chain(&[lx, ly, uy, ux]);
        tb.build(&db).unwrap()
    };

    // Discipline B: opposite lock orders — the classic distributed
    // deadlock shape.
    let t1 = {
        let mut tb = Transaction::builder("x-then-y");
        let lx = tb.lock(x);
        let ly = tb.lock(y);
        let ux = tb.unlock(x);
        let uy = tb.unlock(y);
        tb.chain(&[lx, ly, ux, uy]);
        tb.build(&db).unwrap()
    };
    let t2 = {
        let mut tb = Transaction::builder("y-then-x");
        let ly = tb.lock(y);
        let lx = tb.lock(x);
        let uy = tb.unlock(y);
        let ux = tb.unlock(x);
        tb.chain(&[ly, lx, uy, ux]);
        tb.build(&db).unwrap()
    };

    let good = TransactionSystem::copies(db.clone(), &disciplined, 2).unwrap();
    let bad = TransactionSystem::new(db, vec![t1, t2]).unwrap();

    // Static certification (Theorem 3 under the hood for a pair).
    println!("== static certification ==");
    match certify_safe_and_deadlock_free(&good, CertifyOptions::default()) {
        Ok(cert) => println!("disciplined pair: CERTIFIED ({cert:?})"),
        Err(v) => println!("disciplined pair: rejected: {v}"),
    }
    match certify_safe_and_deadlock_free(&bad, CertifyOptions::default()) {
        Ok(_) => println!("opposite-order pair: certified (unexpected!)"),
        Err(v @ Violation::Pair { .. }) => println!("opposite-order pair: REJECTED: {v}"),
        Err(v) => println!("opposite-order pair: rejected: {v}"),
    }

    // Runtime consequences: run both under the *no handling* policy.
    println!("\n== runtime, policy = Nothing (no detector, no timeouts) ==");
    let cfg = SimConfig {
        policy: DeadlockPolicy::Nothing,
        seed: 3,
        ..Default::default()
    };
    let r = run(&good, cfg);
    println!(
        "certified system : committed {}/2, serializable = {:?}, messages = {}",
        r.committed, r.serializable, r.messages
    );
    let mut stalls = 0;
    for seed in 0..20 {
        let r = run(&bad, SimConfig { seed, ..cfg });
        if !r.stalled.is_empty() {
            stalls += 1;
        }
    }
    println!("uncertified pair : deadlocked in {stalls}/20 seeded runs");

    println!("\n== runtime, policy = Detect (uncertified pair) ==");
    let r = run(
        &bad,
        SimConfig {
            policy: DeadlockPolicy::Detect { period_us: 1_000 },
            seed: 3,
            ..Default::default()
        },
    );
    println!(
        "detector run     : committed {}/2 after {} aborts, {} deadlocks detected",
        r.committed, r.aborted_attempts, r.deadlocks_detected
    );
}
