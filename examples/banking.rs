//! Runtime policy comparison on a contended banking workload: static
//! certification vs. deadlock detection vs. wound-wait vs. wait-die.
//!
//! Run with: `cargo run --example banking --release`

use ddlf::core::{certify_safe_and_deadlock_free, CertifyOptions};
use ddlf::model::TransactionSystem;
use ddlf::sim::{run, DeadlockPolicy, SimConfig};
use ddlf::workloads::Bank;

fn build_workload(greedy: bool) -> TransactionSystem {
    let bank = Bank::new(4, 4);
    let routes = [
        ((0, 0), (1, 0)),
        ((1, 1), (2, 1)),
        ((2, 2), (3, 2)),
        ((3, 3), (0, 3)),
        ((1, 2), (0, 1)),
        ((3, 0), (2, 3)),
    ];
    let txns = routes
        .iter()
        .enumerate()
        .map(|(i, &(from, to))| {
            if greedy {
                bank.transfer_greedy(&format!("transfer{i}"), from, to)
            } else {
                bank.transfer_ordered(&format!("transfer{i}"), from, to)
            }
        })
        .collect();
    TransactionSystem::new(bank.db.clone(), txns).unwrap()
}

fn summarize(name: &str, sys: &TransactionSystem, policy: DeadlockPolicy, seeds: u64) {
    let mut committed = 0usize;
    let mut aborts = 0usize;
    let mut stalls = 0usize;
    let mut msgs = 0u64;
    let mut end = 0u64;
    let mut nonserial = 0usize;
    for seed in 0..seeds {
        let r = run(
            sys,
            SimConfig {
                policy,
                seed,
                ..Default::default()
            },
        );
        committed += r.committed;
        aborts += r.aborted_attempts;
        stalls += usize::from(!r.stalled.is_empty());
        msgs += r.messages;
        end += r.end_time.micros();
        if r.serializable == Some(false) {
            nonserial += 1;
        }
    }
    println!(
        "{name:<28} committed {committed:>3}/{} | aborts {aborts:>3} | deadlocked runs {stalls:>2}/{seeds} | avg msgs {:>5} | avg time {:>7}µs | non-serializable {nonserial}",
        sys.len() * seeds as usize,
        msgs / seeds,
        end / seeds,
    );
}

fn main() {
    let ordered = build_workload(false);
    let greedy = build_workload(true);

    println!("== certification ==");
    println!(
        "ordered transfers: {}",
        match certify_safe_and_deadlock_free(&ordered, CertifyOptions::default()) {
            Ok(_) => "CERTIFIED safe + deadlock-free".to_string(),
            Err(v) => format!("rejected ({v})"),
        }
    );
    println!(
        "greedy transfers : {}",
        match certify_safe_and_deadlock_free(&greedy, CertifyOptions::default()) {
            Ok(_) => "CERTIFIED safe + deadlock-free".to_string(),
            Err(v) => format!("rejected ({v})"),
        }
    );

    let seeds = 20;
    println!("\n== certified (ordered) workload across policies, {seeds} seeds ==");
    summarize(
        "Nothing (certified!)",
        &ordered,
        DeadlockPolicy::Nothing,
        seeds,
    );
    summarize(
        "Detect 5ms",
        &ordered,
        DeadlockPolicy::Detect { period_us: 5_000 },
        seeds,
    );
    summarize("WoundWait", &ordered, DeadlockPolicy::WoundWait, seeds);
    summarize("WaitDie", &ordered, DeadlockPolicy::WaitDie, seeds);

    println!("\n== uncertified (greedy) workload across policies, {seeds} seeds ==");
    summarize(
        "Nothing (uncertified)",
        &greedy,
        DeadlockPolicy::Nothing,
        seeds,
    );
    summarize(
        "Detect 5ms",
        &greedy,
        DeadlockPolicy::Detect { period_us: 5_000 },
        seeds,
    );
    summarize("WoundWait", &greedy, DeadlockPolicy::WoundWait, seeds);
    summarize("WaitDie", &greedy, DeadlockPolicy::WaitDie, seeds);

    println!("\nTakeaway: the certified workload needs no runtime deadlock machinery");
    println!("(zero aborts under `Nothing`), while the greedy workload stalls without");
    println!("a policy and pays aborts under every dynamic scheme.");
}
