//! Engine demo: the runtime price of a missing certificate.
//!
//! Runs the same banking workload through the `ddlf-engine` key-value
//! store three ways:
//!
//! 1. ordered transfers, **certified** → no-detector path, zero aborts;
//! 2. the same certified workload with the certificate ignored
//!    (`--force-fallback` equivalent) → wait-die overhead for nothing;
//! 3. greedy opposite-direction transfers, **uncertified** → wait-die
//!    with real aborts.
//!
//! ```text
//! cargo run --release --example engine_throughput
//! ```

use ddlf::engine::{Engine, EngineConfig, Program, TemplateRegistry};
use ddlf::model::TxnId;
use ddlf::workloads::{bank_greedy_pair, bank_ordered_pair, Bank};
use std::time::Duration;

fn cfg(force_fallback: bool) -> EngineConfig {
    EngineConfig {
        threads: 4,
        instances: 200,
        work: Duration::from_micros(20),
        force_fallback,
        ..Default::default()
    }
}

fn transfer_registry(bank: &Bank, reg: &mut TemplateRegistry) {
    reg.set_program(
        TxnId(0),
        Program::transfer(bank.accounts[0][0], bank.accounts[1][0], 5),
    );
    reg.set_program(
        TxnId(1),
        Program::transfer(bank.accounts[1][1], bank.accounts[0][1], 3),
    );
}

fn main() {
    println!("== certified ordered transfers (no detector, no timeouts)");
    let (bank, sys) = bank_ordered_pair();
    let mut reg = TemplateRegistry::register(sys.clone());
    transfer_registry(&bank, &mut reg);
    println!("   admission: {}", reg.verdict());
    let engine = Engine::with_registry(reg, cfg(false));
    let r = engine.run();
    println!("   {}", r.summary());
    println!("   Σint = {} (conserved)", engine.store().total_int());

    println!("== same workload, certificate ignored (wait-die anyway)");
    let mut reg = TemplateRegistry::register(sys);
    transfer_registry(&bank, &mut reg);
    let engine = Engine::with_registry(reg, cfg(true));
    let r_fb = engine.run();
    println!("   {}", r_fb.summary());

    println!("== uncertified greedy transfers (wait-die, real contention)");
    let (_, greedy) = bank_greedy_pair();
    let engine = Engine::new(greedy, cfg(false));
    println!("   admission: {}", engine.registry().verdict());
    let r_greedy = engine.run();
    println!("   {}", r_greedy.summary());

    println!();
    println!(
        "certified path: {:.0} txn/s with 0 aborts; greedy fallback paid {} aborts",
        r.throughput_per_sec(),
        r_greedy.aborted_attempts
    );
}
