//! Engine demo: the runtime price of a missing certificate, and the
//! payoff of certified k-inflation.
//!
//! Runs banking workloads through the `ddlf-engine` key-value store:
//!
//! 1. ordered transfers, **certified** → no-detector path, zero aborts;
//! 2. the same certified workload with the certificate ignored
//!    (`--force-fallback` equivalent) → wait-die overhead for nothing;
//! 3. greedy opposite-direction transfers, **uncertified** → wait-die
//!    with real aborts;
//! 4. a single pipelined-transfer template under `--inflate auto`:
//!    Theorem 5 certifies unbounded copies, the admission gate opens,
//!    and instances pipeline hand-over-hand down the entity chain.
//!
//! ```text
//! cargo run --release --example engine_throughput
//! ```

use ddlf::engine::{AdmissionOptions, Engine, EngineConfig, Inflation, Program, TemplateRegistry};
use ddlf::model::TxnId;
use ddlf::workloads::{bank_greedy_pair, bank_ordered_pair, bank_uniform_transfer, Bank};
use std::time::Duration;

fn cfg(force_fallback: bool) -> EngineConfig {
    EngineConfig {
        threads: 4,
        instances: 200,
        work: Duration::from_micros(20),
        force_fallback,
        ..Default::default()
    }
}

fn transfer_registry(bank: &Bank, reg: &mut TemplateRegistry) {
    reg.set_program(
        TxnId(0),
        Program::transfer(bank.accounts[0][0], bank.accounts[1][0], 5),
    )
    .unwrap();
    reg.set_program(
        TxnId(1),
        Program::transfer(bank.accounts[1][1], bank.accounts[0][1], 3),
    )
    .unwrap();
}

fn main() {
    println!("== certified ordered transfers (no detector, no timeouts)");
    let (bank, sys) = bank_ordered_pair();
    let mut reg = TemplateRegistry::register(sys.clone());
    transfer_registry(&bank, &mut reg);
    println!("   admission: {}", reg.verdict());
    let engine = Engine::with_registry(reg, cfg(false));
    let r = engine.run();
    println!("   {}", r.summary());
    println!("   Σint = {} (conserved)", engine.store().total_int());

    println!("== same workload, certificate ignored (wait-die anyway)");
    let mut reg = TemplateRegistry::register(sys);
    transfer_registry(&bank, &mut reg);
    let engine = Engine::with_registry(reg, cfg(true));
    let r_fb = engine.run();
    println!("   {}", r_fb.summary());

    println!("== uncertified greedy transfers (wait-die, real contention)");
    let (_, greedy) = bank_greedy_pair();
    let engine = Engine::new(greedy, cfg(false));
    println!("   admission: {}", engine.registry().verdict());
    let r_greedy = engine.run();
    println!("   {}", r_greedy.summary());

    println!("== certified k-inflation: single pipelined template, auto gate");
    let (ubank, usys) = bank_uniform_transfer();
    let mut reg = TemplateRegistry::register_with(
        usys,
        AdmissionOptions {
            inflate: Inflation::Auto { cap: 8 },
            ..Default::default()
        },
    );
    reg.set_program(
        TxnId(0),
        Program::transfer(ubank.accounts[0][0], ubank.accounts[1][0], 5),
    )
    .unwrap();
    println!("   admission: {}", reg.verdict());
    print!("{}", reg.plan().render(reg.system()));
    let engine = Engine::with_registry(reg, cfg(false));
    let r_inflated = engine.run();
    println!("   {}", r_inflated.summary());
    print!("{}", r_inflated.template_table());

    println!();
    println!(
        "certified path: {:.0} txn/s with 0 aborts; greedy fallback paid {} aborts; \
         inflated single template reached peak k = {}",
        r.throughput_per_sec(),
        r_greedy.aborted_attempts,
        r_inflated.peak_inflight()
    );
}
