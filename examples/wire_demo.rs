//! Wire demo: the certified banking workload served over real TCP.
//!
//! Starts a `ddlf-server` on an ephemeral loopback port, connects the
//! typed client, registers the ordered-transfer banking system (the
//! same spec the CI wire-smoke step ships between two OS processes),
//! submits transfers, and verifies the paper's payoff end to end:
//! **zero aborts** and an **audited-serializable** history, with the
//! certification decision made once, server-side, at registration.
//!
//! ```text
//! cargo run --release --example wire_demo
//! ```

use ddlf::model::SystemSpec;
use ddlf::server::{Client, InflateSpec, ServeConfig, Server};
use ddlf::workloads::{bank_ordered_pair, bank_uniform_transfer};

fn main() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind loopback");
    let addr = server.local_addr().to_string();
    println!("== server listening on {addr}");
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    let mut client = Client::connect(&addr).expect("connect");

    println!("== register certified ordered transfers (spec JSON over the wire)");
    let (_, sys) = bank_ordered_pair();
    let spec = serde_json::to_string(&SystemSpec::from_system(&sys)).expect("spec encodes");
    let reg = client.register(&spec, InflateSpec::None).expect("register");
    println!("   admission: {}", reg.verdict);
    assert!(reg.certified, "ordered transfers must certify");

    println!("== submit 100 transfers");
    let stats = client.submit_all(100).expect("submit");
    println!("   run: {}", stats.summary());
    assert!(stats.all_committed(), "{stats:?}");
    assert_eq!(
        stats.aborted_attempts, 0,
        "certified ⇒ zero aborts over TCP"
    );
    assert_eq!(stats.serializable, Some(true), "audited, not assumed");

    println!("== re-register with Theorem 5 inflation (pipelined single template)");
    let (_, sys) = bank_uniform_transfer();
    let spec = serde_json::to_string(&SystemSpec::from_system(&sys)).expect("spec encodes");
    let reg = client
        .register(&spec, InflateSpec::Auto { cap: 64 })
        .expect("register");
    println!("   admission: {}", reg.verdict);
    for entry in &reg.plan {
        match entry.slots {
            None => println!("   {} k = ∞ (Theorem 5)", entry.template),
            Some(k) => println!("   {} k = {k}", entry.template),
        }
    }

    let stats = client.submit("transfer", 200).expect("submit");
    println!("   run: {}", stats.summary());
    assert!(
        stats.all_committed() && stats.aborted_attempts == 0,
        "{stats:?}"
    );

    let cumulative = client.report().expect("report");
    println!(
        "== cumulative since re-registration: {}",
        cumulative.summary()
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    println!("== server exited cleanly");
}
