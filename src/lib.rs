//! # ddlf — Deadlock-Freedom (and Safety) of Transactions in a Distributed Database
//!
//! A Rust reproduction of Wolfson & Yannakakis (PODS 1985 / JCSS 1986):
//! static analysis of locked distributed transactions — deadlock
//! characterization via reduction graphs (Theorem 1), coNP-completeness
//! via the 3SAT′ gadget (Theorem 2), and polynomial safety-and-
//! deadlock-freedom tests (Theorems 3–5) — together with the distributed
//! database runtime the analyses govern.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`model`] — entities/sites, partial-order transactions, schedules,
//!   conflict graphs (§2);
//! * [`core`] — reduction graphs, exhaustive ground truth, the pairwise /
//!   many-transaction / copies certifiers, Tirri baseline, SAT gadget
//!   (§3–§5);
//! * [`sat`] — 3SAT′ formulas and a DPLL solver;
//! * [`sim`] — discrete-event and threaded runtimes with deadlock
//!   detection/prevention policies;
//! * [`engine`] — a sharded transactional key-value execution engine
//!   whose admission control is the certifier: certified systems run
//!   with **no detector and no timeouts** at their certified
//!   k-inflation (a counting `SlotGate` per template), uncertified
//!   ones fall back to wait-die — with a per-shard value/undo log that
//!   rolls dying attempts back (no dirty aborts) and an optional
//!   write-ahead file sink whose `wal::recover` replays a crashed
//!   store and re-audits its history;
//! * [`server`] — a TCP wire-protocol front-end for the engine
//!   (length-prefixed binary frames), plus the typed client that
//!   `ddlf-audit serve` / `submit` and external processes use;
//! * [`workloads`] — the paper's figures, random generators, scenarios.
//!
//! ## Crate map
//!
//! (`ARCHITECTURE.md` at the repository root is the canonical, expanded
//! version of this diagram, with the per-crate responsibility table, the
//! instance-lifecycle data flow, and the binary format grammars.)
//!
//! ```text
//!                      ┌────────── ddlf (this facade) ──────────┐
//!                      │                                        │
//!   ddlf-cli (ddlf-audit) ──────────┐                           │
//!     certify/deadlock/simulate/run │ serve/submit              │
//!     recover (WAL replay + audit)  │                           │
//!                      ▼            ▼                           │
//!   ddlf-workloads   ddlf-engine   ddlf-server ── TCP frames ── clients
//!        │              │  certify-then-run admission           │
//!        │              │  wal: shard value/undo logs ──▶ recover
//!        ▼              ▼          (frames via msg::frame)      │
//!   ddlf-core ───── ddlf-model ◀──── ddlf-sim (runtime, msg::frame)
//!        │ Theorems 1–5   │ §2 model          │
//!        ▼                │                   └ history ──▶ streaming
//!   ddlf-sat (3SAT′)      └ incremental D(S) auditor ◀──── D(S) verdict
//!                           (batch audit kept as the oracle)
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use ddlf::model::{Database, Transaction, TransactionSystem};
//! use ddlf::core::{certify_safe_and_deadlock_free, CertifyOptions};
//!
//! // Two entities on two sites; both transactions lock x first (a shared
//! // "entry ticket"), hold it across y — certifiably safe & deadlock-free.
//! let mut b = Database::builder();
//! let s0 = b.add_site();
//! let s1 = b.add_site();
//! let x = b.add_entity("x", s0);
//! let y = b.add_entity("y", s1);
//! let db = b.build();
//!
//! let mut tb = Transaction::builder("T");
//! let lx = tb.lock(x);
//! let ly = tb.lock(y);
//! let uy = tb.unlock(y);
//! let ux = tb.unlock(x);
//! tb.chain(&[lx, ly, uy, ux]);
//! let t = tb.build(&db).unwrap();
//!
//! let sys = TransactionSystem::copies(db, &t, 2).unwrap();
//! assert!(certify_safe_and_deadlock_free(&sys, CertifyOptions::default()).is_ok());
//! ```

#![warn(missing_docs)]

pub use ddlf_core as core;
pub use ddlf_engine as engine;
pub use ddlf_model as model;
pub use ddlf_sat as sat;
pub use ddlf_server as server;
pub use ddlf_sim as sim;
pub use ddlf_workloads as workloads;
