//! Offline stand-in for `serde`: the build environment has no crates.io
//! access, so the workspace vendors a minimal serialization framework
//! with the same *surface* (`Serialize`/`Deserialize` traits, derive
//! macros, `#[serde(default)]` / `skip_serializing_if` attributes) over
//! a concrete JSON-shaped [`Value`] data model instead of serde's
//! visitor machinery.
//!
//! `serde_json` (also vendored) supplies the text round-trip. Swapping
//! the real crates back in is a manifest change; call sites compile
//! unmodified either way.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A dynamically-typed serialized value (the JSON data model, with
/// lossless 64-bit integers).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up a field in object entries (first match wins, like serde).
pub fn obj_get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// An error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Serializes `self` into the value data model.
    fn serialize_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserializes from the value data model.
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let raw: u64 = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) => u64::try_from(*n)
                        .map_err(|_| DeError::msg(format!("negative value {n} for unsigned field")))?,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(DeError::msg(format!("expected unsigned integer, got {other:?}"))),
                };
                <$t>::try_from(raw).map_err(|_| DeError::msg(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::msg(format!("value {n} too large for signed field")))?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(DeError::msg(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(raw).map_err(|_| DeError::msg(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::msg(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        f64::deserialize_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("checked")),
            other => Err(DeError::msg(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_arr()
            .ok_or_else(|| DeError::msg(format!("expected array of length {N}")))?;
        if items.len() != N {
            return Err(DeError::msg(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items
            .iter()
            .map(T::deserialize_value)
            .collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::msg("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Arr(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v.as_arr() {
            Some([a, b]) => Ok((A::deserialize_value(a)?, B::deserialize_value(b)?)),
            _ => Err(DeError::msg("expected two-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_value(&self) -> Value {
        Value::Arr(vec![
            self.0.serialize_value(),
            self.1.serialize_value(),
            self.2.serialize_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v.as_arr() {
            Some([a, b, c]) => Ok((
                A::deserialize_value(a)?,
                B::deserialize_value(b)?,
                C::deserialize_value(c)?,
            )),
            _ => Err(DeError::msg("expected three-element array")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
                .collect(),
            other => Err(DeError::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn serialize_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
                .collect(),
            other => Err(DeError::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::deserialize_value(&42u32.serialize_value()), Ok(42));
        assert_eq!(i64::deserialize_value(&(-7i64).serialize_value()), Ok(-7));
        assert_eq!(bool::deserialize_value(&true.serialize_value()), Ok(true));
        assert_eq!(
            String::deserialize_value(&"hi".to_string().serialize_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn option_null_mapping() {
        assert_eq!(Option::<u32>::deserialize_value(&Value::Null), Ok(None));
        assert_eq!(
            Option::<u32>::deserialize_value(&Value::U64(3)),
            Ok(Some(3))
        );
        assert!(Some(5u32).serialize_value() == Value::U64(5));
        assert!(None::<u32>.serialize_value().is_null());
    }

    #[test]
    fn range_errors_detected() {
        assert!(u8::deserialize_value(&Value::U64(300)).is_err());
        assert!(u32::deserialize_value(&Value::I64(-1)).is_err());
        assert!(bool::deserialize_value(&Value::U64(1)).is_err());
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize_value(&v.serialize_value()), Ok(v));
        let pair = ("a".to_string(), 9u64);
        assert_eq!(
            <(String, u64)>::deserialize_value(&pair.serialize_value()),
            Ok(pair)
        );
    }
}
