//! Offline stand-in for `proptest`: random-sampling property tests with
//! the same macro surface (`proptest!`, `prop_assert*`, `prop_oneof!`,
//! `Just`, `any`, `prop::collection::{vec, hash_set}`), minus shrinking —
//! on failure the panic message carries the failing case via the assert
//! text instead of a minimized counterexample.
//!
//! Each test function draws `ProptestConfig::cases` samples from a
//! deterministic per-test RNG (seeded from the test name), so failures
//! reproduce across runs.

use rand::prelude::*;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy wrapper returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for a type: `any::<bool>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A uniform choice between boxed strategies (`prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over the given options; must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// Boxes a strategy (the `prop_oneof!` building block).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A vector of `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>`.
    pub struct HashSetStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A hash set with size drawn from `len` (best effort: duplicate
    /// draws collapse, like real proptest).
    pub fn hash_set<S>(element: S, len: std::ops::Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, len }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            let mut out = HashSet::new();
            // Bounded retries so impossible targets terminate.
            for _ in 0..n * 4 + 8 {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }
}

/// Deterministic seed derived from a test name.
pub fn rng_for_test(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use super::collection;
    pub use super::{any, boxed, Arbitrary, Just, ProptestConfig, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias so `prop::collection::vec(..)` works.
    pub mod prop {
        pub use super::super::collection;
    }
}

/// Runs property functions over random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(
                    let $pat = $crate::Strategy::sample(&($strat), &mut __rng);
                )+
                // Bodies are Result-typed like real proptest, so
                // `return Ok(())` and `prop_assume!` work; assertion
                // failures panic with the usual assert messages.
                #[allow(clippy::redundant_closure_call)]
                let __result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!("property failed at case {}: {}", __case, __e);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property (panics with the case inline).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Skips the current case when the assumption fails (approximated as a
/// vacuous pass; no case-count compensation).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// A uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($strat:expr),+ $(,)? ) => {
        $crate::Union::new(vec![ $( $crate::boxed($strat) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0u64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_just(k in prop_oneof![Just(1u32), Just(2u32), 5u32..7]) {
            prop_assert!(k == 1 || k == 2 || k == 5 || k == 6);
        }

        #[test]
        fn tuples_and_any((n, b) in (0usize..4, any::<bool>())) {
            prop_assert!(n < 4);
            let _ = b;
        }
    }

    #[test]
    fn deterministic_rng() {
        let mut a = super::rng_for_test("x");
        let mut b = super::rng_for_test("x");
        assert_eq!(
            super::Strategy::sample(&(0u64..1000), &mut a),
            super::Strategy::sample(&(0u64..1000), &mut b)
        );
    }

    #[test]
    fn hash_set_strategy_terminates() {
        let mut rng = super::rng_for_test("hs");
        // Target sizes larger than the domain must still terminate.
        let s = collection::hash_set(0usize..3, 0..10);
        let v = super::Strategy::sample(&s, &mut rng);
        assert!(v.len() <= 3);
    }
}
