//! Offline stand-in for the `crossbeam` crate: an unbounded MPMC channel
//! built on `Mutex` + `Condvar`, exposing the `crossbeam::channel` API
//! subset the workspace uses (`unbounded`, `send`, `recv`,
//! `recv_timeout`, `try_recv`, blocking iteration, disconnect
//! detection). Throughput is adequate for the runtimes' message rates;
//! swap in the real crate when a registry is available.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// The sending half; clonable across threads.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues a message, waking one receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            self.inner.queue.lock().unwrap().push_back(value);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake every blocked receiver so it can
                // observe the disconnect.
                let _guard = self.inner.queue.lock().unwrap();
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half; clonable across threads (messages go to one
    /// receiver each).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.inner.senders.load(Ordering::SeqCst) == 0
        }

        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                q = self.inner.ready.wait(q).unwrap();
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self.inner.ready.wait_timeout(q, deadline - now).unwrap();
                q = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.queue.lock().unwrap();
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.disconnected() {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// A blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn drained_before_disconnect_reported() {
        let (tx, rx) = unbounded();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn cross_thread_wakeup() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            tx.send(7u32).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
        h.join().unwrap();
    }

    #[test]
    fn iter_ends_on_disconnect() {
        let (tx, rx) = unbounded();
        for i in 0..3 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![0, 1, 2]);
    }
}
