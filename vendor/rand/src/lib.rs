//! Offline stand-in for the `rand` crate (0.8 API subset): `StdRng`
//! seeded from a `u64`, `gen_range` over half-open and inclusive integer
//! ranges, `gen_bool`, and `SliceRandom::{shuffle, choose}`.
//!
//! The generator is xoshiro256** seeded via SplitMix64 — high-quality,
//! deterministic, and dependency-free. Sequences differ from the real
//! `StdRng` (ChaCha12), which only matters to tests that bake in
//! specific seeds; those were re-checked against this generator.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

mod private {
    /// Seals [`super::Rng`] so the blanket impl is the only one.
    pub trait Sealed {}
    impl<T: super::RngCore + ?Sized> Sealed for T {}
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore + private::Sealed {
    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that knows how to sample itself — mirrors
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty inclusive range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, span)` (`span == 0` means the full 2^64 range,
/// which only arises for `T::MIN..=T::MAX`). Uses Lemire-style rejection
/// to avoid modulo bias.
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span <= 1 << 64);
    if span == 0 || span == 1 << 64 {
        return rng.next_u64();
    }
    let span = span as u64;
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Shuffling and choosing on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// The glob-import surface, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(0..=5);
            assert!(w <= 5);
            let x: i32 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_extremes_and_middle() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_stays_in_slice() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [10, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
