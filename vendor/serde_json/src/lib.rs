//! Offline stand-in for `serde_json`: a complete JSON parser and printer
//! over the vendored `serde` [`Value`] model, exposing the `from_str` /
//! `to_string` / `to_string_pretty` entry points the workspace uses.

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Parse or serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::deserialize_value(&value).map_err(|e| Error(e.to_string()))
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&v.serialize_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&v.serialize_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `]` in array"));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(entries)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `}` in object"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(c) => {
                    // Multi-byte UTF-8: copy the full sequence.
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8 in string")),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number slice");
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if n <= i64::MAX as u64 + 1 {
                        return Ok(Value::I64((n as i64).wrapping_neg()));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse_value("null").unwrap(), Value::Null);
        assert_eq!(parse_value(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse_value("42").unwrap(), Value::U64(42));
        assert_eq!(parse_value("-3").unwrap(), Value::I64(-3));
        assert_eq!(parse_value("2.5").unwrap(), Value::F64(2.5));
        assert_eq!(parse_value("1e3").unwrap(), Value::F64(1000.0));
        assert_eq!(
            parse_value(r#""a\nbA""#).unwrap(),
            Value::Str("a\nbA".to_string())
        );
    }

    #[test]
    fn containers_parse() {
        let v = parse_value(r#"{"a": [1, 2], "b": {"c": false}}"#).unwrap();
        assert_eq!(
            v,
            Value::Obj(vec![
                ("a".into(), Value::Arr(vec![Value::U64(1), Value::U64(2)])),
                (
                    "b".into(),
                    Value::Obj(vec![("c".into(), Value::Bool(false))])
                ),
            ])
        );
    }

    #[test]
    fn malformed_rejected() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nul").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(parse_value(r#""\q""#).is_err());
    }

    #[test]
    fn text_roundtrip() {
        let src = r#"{"name":"x","vals":[1,-2,3.5],"flag":true,"none":null}"#;
        let v = parse_value(src).unwrap();
        let compact = to_string(&v).unwrap();
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  "));
    }

    #[test]
    fn typed_entry_points() {
        let xs: Vec<u32> = from_str("[1,2,3]").unwrap();
        assert_eq!(xs, vec![1, 2, 3]);
        assert_eq!(to_string(&xs).unwrap(), "[1,2,3]");
        assert!(from_str::<Vec<u32>>("[1,\"no\"]").is_err());
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse_value(r#""héllo → 世界""#).unwrap();
        assert_eq!(v, Value::Str("héllo → 世界".to_string()));
        let s = to_string(&v).unwrap();
        assert_eq!(parse_value(&s).unwrap(), v);
    }
}
