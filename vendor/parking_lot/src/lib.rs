//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of `parking_lot` it uses: `Mutex`, `RwLock`, and
//! `Condvar` with panic-poisoning ignored (parking_lot's signature
//! difference from std). Swap back to the real crate by flipping one
//! line in the workspace manifest.

use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutual-exclusion primitive; `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Poison is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock; poisoning is ignored.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

/// A condition variable compatible with [`Mutex`] guards.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

/// Result of a timed wait: whether the wait timed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Blocks on the condvar, atomically releasing the guard.
    pub fn wait<'a, T>(&self, guard: &mut MutexGuard<'a, T>) {
        take_mut_guard(guard, |g| match self.0.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Blocks with a timeout; returns whether the wait timed out.
    pub fn wait_for<'a, T>(
        &self,
        guard: &mut MutexGuard<'a, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_mut_guard(guard, |g| {
            let (g, r) = match self.0.wait_timeout(g, timeout) {
                Ok(pair) => pair,
                Err(p) => p.into_inner(),
            };
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

// std's Condvar::wait consumes the guard; parking_lot's takes &mut. Bridge
// by moving the guard out and back in. The dance is safe because the
// closure always returns a live guard for the same mutex.
fn take_mut_guard<'a, T>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    unsafe {
        let guard = std::ptr::read(slot);
        let new = f(guard);
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        h.join().unwrap();
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
