//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of `parking_lot` it uses: `Mutex`, `RwLock`, and
//! `Condvar` with panic-poisoning ignored (parking_lot's signature
//! difference from std). Swap back to the real crate by flipping one
//! line in the workspace manifest.
//!
//! With the `lockdep` cargo feature, every acquire, release, and condvar
//! wait additionally reports to the `ddlf_lockdep` validator: guards
//! carry their lock class and `#[track_caller]` captures each
//! acquisition site, so one instrumented test run certifies the
//! class-order graph of everything it executed. Without the feature the
//! hooks compile to nothing and the guards are plain newtypes.
//!
//! One deliberate API divergence from the real crate:
//! [`Mutex::new_named`]/[`RwLock::new_named`] register the lock under a
//! lock-discipline *class name* (see ARCHITECTURE.md "Lock discipline");
//! the name is ignored when `lockdep` is off, and the real parking_lot
//! would simply not have the constructor.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

#[cfg(feature = "lockdep")]
use std::panic::Location;
#[cfg(feature = "lockdep")]
use std::sync::atomic::{AtomicU32, Ordering};

/// Lazily-assigned lockdep class of one lock instance.
#[cfg(feature = "lockdep")]
#[derive(Debug, Default)]
struct ClassCell {
    /// Class name from the construction site; `""` means anonymous
    /// (a fresh per-instance class, so unrelated locks never alias).
    name: &'static str,
    /// 0 = unassigned; otherwise class index + 1.
    id: AtomicU32,
}

#[cfg(feature = "lockdep")]
impl ClassCell {
    const fn new(name: &'static str) -> Self {
        Self {
            name,
            id: AtomicU32::new(0),
        }
    }

    fn class(&self) -> ddlf_lockdep::ClassId {
        let v = self.id.load(Ordering::Relaxed);
        if v != 0 {
            return ddlf_lockdep::ClassId::from_raw(v - 1);
        }
        let id = if self.name.is_empty() {
            ddlf_lockdep::anon_class()
        } else {
            ddlf_lockdep::register_class(self.name)
        };
        match self
            .id
            .compare_exchange(0, id.raw() + 1, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => id,
            // Another thread won the installation race; defer to its
            // class (identical anyway for named locks).
            Err(cur) => ddlf_lockdep::ClassId::from_raw(cur - 1),
        }
    }
}

/// A mutual-exclusion primitive; `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lockdep")]
    class: ClassCell,
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
#[must_use = "if unused the Mutex will immediately unlock"]
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "lockdep")]
    class: ddlf_lockdep::ClassId,
    inner: sync::MutexGuard<'a, T>,
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "lockdep")]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        ddlf_lockdep::on_release(self.class);
    }
}

impl<T> Mutex<T> {
    /// Creates a new mutex (anonymous lock class under lockdep).
    pub const fn new(value: T) -> Self {
        Self {
            #[cfg(feature = "lockdep")]
            class: ClassCell::new(""),
            inner: sync::Mutex::new(value),
        }
    }

    /// Creates a mutex registered under the lock-discipline class
    /// `name`. All locks sharing a name share one ordering class; the
    /// name is ignored without the `lockdep` feature.
    pub const fn new_named(name: &'static str, value: T) -> Self {
        #[cfg(not(feature = "lockdep"))]
        let _ = name;
        Self {
            #[cfg(feature = "lockdep")]
            class: ClassCell::new(name),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Poison is ignored.
    #[cfg_attr(feature = "lockdep", track_caller)]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lockdep")]
        let class = {
            let class = self.class.class();
            // Report before blocking: a potential deadlock is recorded
            // even if this very acquisition would hang.
            ddlf_lockdep::on_acquire(class, Location::caller());
            class
        };
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard {
            #[cfg(feature = "lockdep")]
            class,
            inner,
        }
    }

    /// Attempts to acquire the mutex without blocking.
    #[cfg_attr(feature = "lockdep", track_caller)]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "lockdep")]
        let class = {
            let class = self.class.class();
            ddlf_lockdep::on_acquire(class, Location::caller());
            class
        };
        Some(MutexGuard {
            #[cfg(feature = "lockdep")]
            class,
            inner,
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock; poisoning is ignored.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "lockdep")]
    class: ClassCell,
    inner: sync::RwLock<T>,
}

/// RAII read guard returned by [`RwLock::read`].
#[must_use = "if unused the RwLock will immediately unlock"]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "lockdep")]
    class: ddlf_lockdep::ClassId,
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII write guard returned by [`RwLock::write`].
#[must_use = "if unused the RwLock will immediately unlock"]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "lockdep")]
    class: ddlf_lockdep::ClassId,
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "lockdep")]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        ddlf_lockdep::on_release(self.class);
    }
}

#[cfg(feature = "lockdep")]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        ddlf_lockdep::on_release(self.class);
    }
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock (anonymous class under lockdep).
    pub const fn new(value: T) -> Self {
        Self {
            #[cfg(feature = "lockdep")]
            class: ClassCell::new(""),
            inner: sync::RwLock::new(value),
        }
    }

    /// Creates a reader-writer lock registered under the
    /// lock-discipline class `name`; see [`Mutex::new_named`].
    pub const fn new_named(name: &'static str, value: T) -> Self {
        #[cfg(not(feature = "lockdep"))]
        let _ = name;
        Self {
            #[cfg(feature = "lockdep")]
            class: ClassCell::new(name),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    #[cfg_attr(feature = "lockdep", track_caller)]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lockdep")]
        let class = {
            let class = self.class.class();
            ddlf_lockdep::on_acquire(class, Location::caller());
            class
        };
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard {
            #[cfg(feature = "lockdep")]
            class,
            inner,
        }
    }

    /// Acquires an exclusive write lock.
    #[cfg_attr(feature = "lockdep", track_caller)]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lockdep")]
        let class = {
            let class = self.class.class();
            ddlf_lockdep::on_acquire(class, Location::caller());
            class
        };
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard {
            #[cfg(feature = "lockdep")]
            class,
            inner,
        }
    }
}

/// A condition variable compatible with [`Mutex`] guards.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

/// Result of a timed wait: whether the wait timed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Blocks on the condvar, atomically releasing the guard. Under
    /// lockdep the waited mutex leaves the held-stack for the duration
    /// (the wait releases it), and holding any *other* lock class at
    /// this point is flagged as a discipline violation.
    #[cfg_attr(feature = "lockdep", track_caller)]
    pub fn wait<'a, T>(&self, guard: &mut MutexGuard<'a, T>) {
        #[cfg(feature = "lockdep")]
        let token = ddlf_lockdep::condvar_wait_begin(guard.class, Location::caller());
        take_mut_guard(&mut guard.inner, |g| match self.0.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
        #[cfg(feature = "lockdep")]
        ddlf_lockdep::condvar_wait_end(token);
    }

    /// Blocks with a timeout; returns whether the wait timed out.
    #[cfg_attr(feature = "lockdep", track_caller)]
    pub fn wait_for<'a, T>(
        &self,
        guard: &mut MutexGuard<'a, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        #[cfg(feature = "lockdep")]
        let token = ddlf_lockdep::condvar_wait_begin(guard.class, Location::caller());
        let mut timed_out = false;
        take_mut_guard(&mut guard.inner, |g| {
            let (g, r) = match self.0.wait_timeout(g, timeout) {
                Ok(pair) => pair,
                Err(p) => p.into_inner(),
            };
            timed_out = r.timed_out();
            g
        });
        #[cfg(feature = "lockdep")]
        ddlf_lockdep::condvar_wait_end(token);
        WaitTimeoutResult(timed_out)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

// std's Condvar::wait consumes the guard; parking_lot's takes &mut. Bridge
// by moving the guard out and back in. The dance is safe because the
// closure always returns a live guard for the same mutex.
fn take_mut_guard<'a, T>(
    slot: &mut sync::MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
) {
    unsafe {
        let guard = std::ptr::read(slot);
        let new = f(guard);
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        h.join().unwrap();
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn try_lock_contended_and_free() {
        let m = Mutex::new(7);
        {
            let _g = m.lock();
            assert!(m.try_lock().is_none());
        }
        assert_eq!(*m.try_lock().unwrap(), 7);
    }

    /// Shim-level detector exercise: a real ABBA inversion through the
    /// instrumented lock path (not just the raw hooks) is reported with
    /// the two named classes.
    #[cfg(feature = "lockdep")]
    #[test]
    fn lockdep_sees_abba_through_the_shim() {
        ddlf_lockdep::set_mode(ddlf_lockdep::Mode::Warn);
        let a = Mutex::new_named("shimtest.abba.a", ());
        let b = Mutex::new_named("shimtest.abba.b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        let v = ddlf_lockdep::take_violations_with_prefix("shimtest.abba.");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].kind, ddlf_lockdep::ViolationKind::OrderInversion);
        let mut cycle = v[0].classes.clone();
        cycle.sort();
        assert_eq!(cycle, vec!["shimtest.abba.a", "shimtest.abba.b"]);
    }

    /// Waiting while holding only the waited mutex is clean, and the
    /// held-stack survives the pop/re-push round trip.
    #[cfg(feature = "lockdep")]
    #[test]
    fn lockdep_condvar_wait_is_clean_when_disciplined() {
        ddlf_lockdep::set_mode(ddlf_lockdep::Mode::Warn);
        let pair = Arc::new((Mutex::new_named("shimtest.cv.m", false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        h.join().unwrap();
        assert!(ddlf_lockdep::take_violations_with_prefix("shimtest.cv.").is_empty());
    }
}
