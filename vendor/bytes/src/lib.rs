//! Offline stand-in for the `bytes` crate (no crates.io access in the
//! build environment): contiguous byte buffers with the `Buf`/`BufMut`
//! cursor traits, covering the subset the wire format in `ddlf-sim` and
//! `ddlf-engine` uses.

use std::sync::Arc;

/// Read-side cursor over a byte container.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `n`. Panics if `n > remaining()`.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }
}

/// Write-side cursor over a growable byte container.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A cheaply clonable immutable byte buffer with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self {
            data: Arc::new(Vec::new()),
            pos: 0,
        }
    }

    /// A buffer holding a copy of `src` (the real crate borrows; copying
    /// is fine at the sizes the workspace moves).
    pub fn from_static(src: &'static [u8]) -> Self {
        Self {
            data: Arc::new(src.to_vec()),
            pos: 0,
        }
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            data: Arc::new(v),
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end of Bytes");
        self.pos += n;
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing was written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        let mut bytes = b.freeze();
        assert_eq!(bytes.remaining(), 13);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u64_le(), 42);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn from_static_and_eq() {
        let a = Bytes::from_static(&[1, 2, 3]);
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(a, b);
        let mut c = a.clone();
        c.advance(1);
        assert_eq!(c.as_ref(), &[2, 3]);
    }
}
