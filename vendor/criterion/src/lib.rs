//! Offline stand-in for `criterion`: a wall-clock benchmark harness with
//! the `criterion_group!` / `criterion_main!` macro surface and the
//! `Criterion` / `BenchmarkGroup` / `Bencher` / `BenchmarkId` types the
//! workspace benches use.
//!
//! Methodology is deliberately simple (no bootstrap statistics): each
//! benchmark is warmed up, then timed over enough iterations to fill a
//! short measurement window; median-of-batches nanoseconds per iteration
//! are printed. Honouring `--bench <filter>` substrings keeps `cargo
//! bench -- <name>` usable.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark registry and runner.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as the first free
        // argument; `--bench`/`--test` flags arrive from the harness.
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                filter = Some(arg);
                break;
            }
        }
        Self {
            filter,
            sample_size: 24,
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets how many timed batches each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(4);
        self
    }

    /// Sets the target measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self, name, &mut f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size(n);
        self
    }

    /// Sets the measurement window for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time(d);
        self
    }

    /// Runs a benchmark identified by `id` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion, &full, &mut |b| f(b, input));
        self
    }

    /// Runs a benchmark identified by name.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion, &full, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id like `"name/param"`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        Self {
            text: format!("{name}/{param}"),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        Self {
            text: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to benchmark closures; `iter` does the timing.
pub struct Bencher {
    batch_iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `batch_iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.batch_iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(c: &Criterion, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    if !c.matches(id) {
        return;
    }
    // Calibrate: find an iteration count that takes ≥ ~1/sample_size of
    // the measurement window.
    let mut bench = Bencher {
        batch_iters: 1,
        elapsed: Duration::ZERO,
    };
    let batch_target = c.measurement_time / u32::try_from(c.sample_size).unwrap_or(u32::MAX);
    loop {
        f(&mut bench);
        if bench.elapsed >= batch_target || bench.batch_iters >= 1 << 30 {
            break;
        }
        let grow = if bench.elapsed.is_zero() {
            16
        } else {
            let need = batch_target.as_nanos() / bench.elapsed.as_nanos().max(1);
            u64::try_from(need.clamp(2, 16)).expect("clamped")
        };
        bench.batch_iters = bench.batch_iters.saturating_mul(grow);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        f(&mut bench);
        per_iter.push(bench.elapsed.as_nanos() as f64 / bench.batch_iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let best = per_iter[0];
    println!("{id:<60} median {} best {}", fmt_ns(median), fmt_ns(best));
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.3} s ", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        let mut c = Criterion {
            filter: None,
            sample_size: 24,
            measurement_time: Duration::from_millis(300),
        };
        c.sample_size(4).measurement_time(Duration::from_millis(2));
        c
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut c = fast_criterion();
        let mut ran = false;
        c.bench_function("t", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        assert!(ran);
    }

    #[test]
    fn group_and_ids() {
        let mut c = fast_criterion();
        let mut g = c.benchmark_group("g");
        let mut count = 0u32;
        g.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &n| {
            count += 1;
            b.iter(|| black_box(n * 2));
        });
        g.finish();
        assert!(count > 0);
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = fast_criterion();
        c.filter = Some("nomatch".to_string());
        let mut ran = false;
        c.bench_function("other", |b| {
            ran = true;
            b.iter(|| 1);
        });
        assert!(!ran);
    }
}
