//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` stub.
//!
//! The offline build environment has neither `syn` nor `quote`, so this
//! crate parses the item's raw `TokenStream` with a small recursive
//! scanner and emits the impl as source text. Supported shapes — which
//! cover every derive site in the workspace — are non-generic structs
//! (named, tuple, unit) and enums (unit, tuple, and struct variants),
//! with externally-tagged JSON representation like real serde.
//!
//! Attribute support: `#[serde(default)]` marks a field as defaultable
//! when missing; fields of type `Option<..>` are defaultable implicitly
//! and are omitted from output when `None` (subsuming the
//! `skip_serializing_if = "Option::is_none"` sites).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: Option<String>,
    optional: bool,
}

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

#[derive(Debug)]
enum Body {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

#[derive(Debug)]
struct Item {
    name: String,
    body: Body,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive stub: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive stub: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------- parsing

fn parse_item(ts: TokenStream) -> Item {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kw = expect_ident(&toks, &mut i);
    let name = expect_ident(&toks, &mut i);
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }
    let body = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(parse_tuple(g.stream())))
            }
            _ => Body::Struct(Fields::Unit),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive stub: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde_derive stub: expected struct or enum, got `{other}`"),
    };
    Item { name, body }
}

/// Skips leading attributes; returns whether any was `#[serde(.. default ..)]`.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        match toks.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                has_default |= serde_attr_has_default(g.stream());
                *i += 1;
            }
            other => panic!("serde_derive stub: malformed attribute: {other:?}"),
        }
    }
    has_default
}

fn serde_attr_has_default(attr: TokenStream) -> bool {
    let toks: Vec<TokenTree> = attr.into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            g.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default"))
        }
        _ => false,
    }
}

fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive stub: expected identifier, got {other:?}"),
    }
}

/// Consumes one type at `i`, stopping at a top-level `,` (angle-bracket
/// depth aware). Returns whether the type's head is `Option`.
fn skip_type(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut depth = 0i32;
    let mut first: Option<String> = None;
    while let Some(t) = toks.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Ident(id) if first.is_none() => first = Some(id.to_string()),
            _ => {}
        }
        *i += 1;
    }
    first.as_deref() == Some("Option")
}

fn parse_named(ts: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let has_default = skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        let name = expect_ident(&toks, &mut i);
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive stub: expected `:` after field `{name}`, got {other:?}"),
        }
        let is_option = skip_type(&toks, &mut i);
        // Skip the separating comma, if present.
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(Field {
            name: Some(name),
            optional: has_default || is_option,
        });
    }
    fields
}

fn parse_tuple(ts: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let has_default = skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        let is_option = skip_type(&toks, &mut i);
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(Field {
            name: None,
            optional: has_default || is_option,
        });
    }
    fields
}

fn parse_variants(ts: TokenStream) -> Vec<(String, Fields)> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        let name = expect_ident(&toks, &mut i);
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(parse_tuple(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named(g.stream()))
            }
            _ => Fields::Unit,
        };
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde_derive stub: explicit discriminants are not supported");
        }
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}

// --------------------------------------------------------------- codegen

fn ser_named_fields(access: &str, fields: &[Field], skip_null: bool) -> String {
    // `access` formats a field name into a place expression, e.g. "&self.{}".
    let mut out = String::from(
        "{ let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        let name = f.name.as_deref().expect("named field");
        let place = access.replace("{}", name);
        out.push_str(&format!(
            "{{ let __fv = ::serde::Serialize::serialize_value({place});\n"
        ));
        if skip_null {
            out.push_str("if !__fv.is_null() {\n");
        }
        out.push_str(&format!(
            "__fields.push((::std::string::String::from(\"{name}\"), __fv));\n"
        ));
        if skip_null {
            out.push_str("}\n");
        }
        out.push_str("}\n");
    }
    out.push_str("::serde::Value::Obj(__fields) }");
    out
}

fn de_named_fields(
    ty_and_variant: &str,
    constructor: &str,
    obj_expr: &str,
    fields: &[Field],
) -> String {
    let mut out = format!("{constructor} {{\n");
    for f in fields {
        let name = f.name.as_deref().expect("named field");
        let missing = if f.optional {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::DeError::msg(\
                 \"{ty_and_variant}: missing field `{name}`\"))"
            )
        };
        out.push_str(&format!(
            "{name}: match ::serde::obj_get({obj_expr}, \"{name}\") {{\n\
             Some(__x) => ::serde::Deserialize::deserialize_value(__x)?,\n\
             None => {missing},\n}},\n"
        ));
    }
    out.push('}');
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Body::Struct(Fields::Tuple(fields)) if fields.len() == 1 => {
            "::serde::Serialize::serialize_value(&self.0)".to_string()
        }
        Body::Struct(Fields::Tuple(fields)) => {
            let items: Vec<String> = (0..fields.len())
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Body::Struct(Fields::Named(fields)) => ser_named_fields("&self.{}", fields, true),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (vname, vfields) in variants {
                match vfields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
                    )),
                    Fields::Tuple(fs) => {
                        let binds: Vec<String> = (0..fs.len()).map(|i| format!("__f{i}")).collect();
                        let inner = if fs.len() == 1 {
                            "::serde::Serialize::serialize_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                .collect();
                            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Obj(vec![\
                             (::std::string::String::from(\"{vname}\"), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binds: Vec<String> = fs
                            .iter()
                            .map(|f| f.name.clone().expect("named field"))
                            .collect();
                        let inner = ser_named_fields("{}", fs, false);
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Obj(vec![\
                             (::std::string::String::from(\"{vname}\"), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Unit) => format!(
            "match __v {{ ::serde::Value::Null => ::std::result::Result::Ok({name}), \
             _ => ::std::result::Result::Err(::serde::DeError::msg(\"{name}: expected null\")) }}"
        ),
        Body::Struct(Fields::Tuple(fields)) if fields.len() == 1 => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(__v)?))"
        ),
        Body::Struct(Fields::Tuple(fields)) => {
            let n = fields.len();
            let items: Vec<String> = (0..n)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&__arr[{i}])?"))
                .collect();
            format!(
                "{{ let __arr = __v.as_arr().ok_or_else(|| \
                 ::serde::DeError::msg(\"{name}: expected array\"))?;\n\
                 if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::msg(\"{name}: expected {n} elements\")); }}\n\
                 ::std::result::Result::Ok({name}({})) }}",
                items.join(", ")
            )
        }
        Body::Struct(Fields::Named(fields)) => {
            let ctor = de_named_fields(name, name, "__obj", fields);
            format!(
                "{{ let __obj = __v.as_obj().ok_or_else(|| \
                 ::serde::DeError::msg(\"{name}: expected object\"))?;\n\
                 ::std::result::Result::Ok({ctor}) }}"
            )
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (vname, vfields) in variants {
                match vfields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Fields::Tuple(fs) if fs.len() == 1 => tagged_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::deserialize_value(__inner)?)),\n"
                    )),
                    Fields::Tuple(fs) => {
                        let n = fs.len();
                        let items: Vec<String> = (0..n)
                            .map(|i| {
                                format!("::serde::Deserialize::deserialize_value(&__arr[{i}])?")
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{ let __arr = __inner.as_arr().ok_or_else(|| \
                             ::serde::DeError::msg(\"{name}::{vname}: expected array\"))?;\n\
                             if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::DeError::msg(\"{name}::{vname}: expected {n} elements\")); }}\n\
                             ::std::result::Result::Ok({name}::{vname}({})) }},\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let ctor = de_named_fields(
                            &format!("{name}::{vname}"),
                            &format!("{name}::{vname}"),
                            "__obj",
                            fs,
                        );
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{ let __obj = __inner.as_obj().ok_or_else(|| \
                             ::serde::DeError::msg(\"{name}::{vname}: expected object\"))?;\n\
                             ::std::result::Result::Ok({ctor}) }},\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::msg(\
                 format!(\"{name}: unknown variant `{{__other}}`\"))),\n}},\n\
                 ::serde::Value::Obj(__m) if __m.len() == 1 => {{\n\
                 let __inner = &__m[0].1;\n\
                 match __m[0].0.as_str() {{\n{tagged_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::msg(\
                 format!(\"{name}: unknown variant `{{__other}}`\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::DeError::msg(\
                 \"{name}: expected externally tagged variant\")),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
