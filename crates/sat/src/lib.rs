//! # ddlf-sat — CNF, 3SAT′, and a DPLL solver
//!
//! Substrate for Theorem 2 of Wolfson & Yannakakis (PODS 1985): the
//! coNP-completeness of two-transaction deadlock-freedom is proved by a
//! reduction from **3SAT′** — CNF with clauses of ≤ 3 literals where each
//! variable occurs exactly twice positively and once negatively.
//!
//! This crate provides:
//! * [`Cnf`] formulas with 3SAT′ shape validation ([`Cnf::validate_three_sat_prime`]);
//! * a recursive DPLL solver ([`dpll::solve`]) plus a brute-force oracle;
//! * a deterministic random 3SAT′ instance generator ([`gen::ThreeSatPrimeGen`]).
//!
//! The transaction gadget itself lives in `ddlf-core::sat_reduction`; this
//! crate is deliberately independent of the transaction model so the SAT
//! side of the equivalence is decided by unrelated code.

#![warn(missing_docs)]

pub mod cnf;
pub mod dpll;
pub mod gen;

pub use cnf::{Assignment, Clause, Cnf, Lit, ThreeSatPrimeError, Var, VarOccurrences};
pub use dpll::{solve, solve_brute_force, SatResult};
pub use gen::{generate_batch, ThreeSatPrimeGen};
