//! Random generation of 3SAT′ instances.
//!
//! A 3SAT′ formula over `n` variables has exactly `3n` literal occurrences
//! (each variable: two positive, one negative). The generator shuffles that
//! multiset of occurrences into clause slots of size ≤ 3, retrying until no
//! clause contains complementary or duplicate literals of the same
//! variable (which would make the instance degenerate).

use crate::cnf::{Cnf, Lit, Var};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Configuration for the 3SAT′ generator.
#[derive(Debug, Clone, Copy)]
pub struct ThreeSatPrimeGen {
    /// Number of variables.
    pub n_vars: u32,
    /// RNG seed (generation is fully deterministic given the seed).
    pub seed: u64,
}

impl ThreeSatPrimeGen {
    /// Generates one valid 3SAT′ instance.
    ///
    /// # Panics
    /// Panics if `n_vars == 0`.
    pub fn generate(&self) -> Cnf {
        assert!(self.n_vars > 0, "need at least one variable");
        let mut rng = StdRng::seed_from_u64(self.seed);
        loop {
            if let Some(f) = try_generate(self.n_vars, &mut rng) {
                debug_assert!(f.validate_three_sat_prime().is_ok());
                return f;
            }
        }
    }
}

fn try_generate(n_vars: u32, rng: &mut StdRng) -> Option<Cnf> {
    // The multiset of literal occurrences: x, x, ¬x per variable.
    let mut slots: Vec<Lit> = Vec::with_capacity(3 * n_vars as usize);
    for v in 0..n_vars {
        slots.push(Lit::pos(Var(v)));
        slots.push(Lit::pos(Var(v)));
        slots.push(Lit::neg(Var(v)));
    }
    slots.shuffle(rng);

    // Partition `3n` slots into clauses of sizes 1..=3. Draw sizes until
    // they sum exactly.
    let total = slots.len();
    let mut sizes: Vec<usize> = Vec::new();
    let mut acc = 0;
    while acc < total {
        let remaining = total - acc;
        let s = if remaining <= 3 {
            remaining.min(1 + rng.gen_range(0..remaining))
        } else {
            1 + rng.gen_range(0..3usize)
        };
        sizes.push(s);
        acc += s;
    }

    let mut f = Cnf::new(n_vars);
    let mut it = slots.into_iter();
    for s in sizes {
        let clause: Vec<Lit> = (&mut it).take(s).collect();
        // Reject clauses with repeated variables (tautological or
        // duplicated literals) — retry the whole instance.
        for i in 0..clause.len() {
            for j in (i + 1)..clause.len() {
                if clause[i].var == clause[j].var {
                    return None;
                }
            }
        }
        f.add_clause(clause);
    }
    Some(f)
}

/// Generates a batch of `count` distinct-seeded instances.
pub fn generate_batch(n_vars: u32, base_seed: u64, count: usize) -> Vec<Cnf> {
    (0..count)
        .map(|i| {
            ThreeSatPrimeGen {
                n_vars,
                seed: base_seed.wrapping_add(i as u64),
            }
            .generate()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpll::{solve, solve_brute_force};

    #[test]
    fn generated_instances_are_valid() {
        for n in 1..=6 {
            for seed in 0..10 {
                let f = ThreeSatPrimeGen { n_vars: n, seed }.generate();
                f.validate_three_sat_prime().unwrap();
                assert_eq!(
                    f.clauses.iter().map(Vec::len).sum::<usize>(),
                    3 * n as usize
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ThreeSatPrimeGen { n_vars: 4, seed: 7 }.generate();
        let b = ThreeSatPrimeGen { n_vars: 4, seed: 7 }.generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_vary() {
        let batch = generate_batch(4, 0, 20);
        assert!(batch.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn dpll_matches_brute_force_on_generated() {
        for n in 1..=5 {
            for seed in 0..20 {
                let f = ThreeSatPrimeGen { n_vars: n, seed }.generate();
                assert_eq!(
                    solve(&f).is_sat(),
                    solve_brute_force(&f).is_sat(),
                    "mismatch on n={n} seed={seed}: {f}"
                );
            }
        }
    }

    #[test]
    fn both_sat_and_unsat_instances_occur() {
        let batch = generate_batch(2, 0, 200);
        let sat = batch.iter().filter(|f| solve(f).is_sat()).count();
        assert!(sat > 0, "no satisfiable instances in 200 draws");
        assert!(sat < 200, "no unsatisfiable instances in 200 draws");
    }
}
