//! A DPLL satisfiability solver with unit propagation and pure-literal
//! elimination.
//!
//! This is the *independent oracle* used to validate the Theorem 2
//! reduction: satisfiability decided here must coincide with
//! deadlock-prefix existence decided by graph search on the constructed
//! transactions. It is a classic recursive DPLL — ample for the formula
//! sizes 3SAT′ experiments use (3SAT′ formulas have exactly `3n` literal
//! occurrences, so they are always small relative to `n`).

use crate::cnf::{Assignment, Cnf, Lit, Var};

/// The solver result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a witness assignment (one `bool` per variable).
    Sat(Assignment),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// Whether the formula was satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// The witness, if satisfiable.
    pub fn assignment(&self) -> Option<&Assignment> {
        match self {
            SatResult::Sat(a) => Some(a),
            SatResult::Unsat => None,
        }
    }
}

/// Decides satisfiability of `f` by DPLL.
pub fn solve(f: &Cnf) -> SatResult {
    let mut assign: Vec<Option<bool>> = vec![None; f.n_vars as usize];
    if dpll(f, &mut assign) {
        // Unconstrained variables default to `false`.
        SatResult::Sat(assign.into_iter().map(|v| v.unwrap_or(false)).collect())
    } else {
        SatResult::Unsat
    }
}

/// Clause status under a partial assignment.
enum ClauseState {
    Satisfied,
    Conflict,
    Unit(Lit),
    Unresolved,
}

fn clause_state(clause: &[Lit], assign: &[Option<bool>]) -> ClauseState {
    let mut unassigned: Option<Lit> = None;
    let mut n_unassigned = 0;
    for &l in clause {
        match assign[l.var.index()] {
            Some(v) if l.satisfied_by(v) => return ClauseState::Satisfied,
            Some(_) => {}
            None => {
                n_unassigned += 1;
                unassigned = Some(l);
            }
        }
    }
    match n_unassigned {
        0 => ClauseState::Conflict,
        1 => ClauseState::Unit(unassigned.expect("counted")),
        _ => ClauseState::Unresolved,
    }
}

fn dpll(f: &Cnf, assign: &mut Vec<Option<bool>>) -> bool {
    // Unit propagation to fixpoint.
    let mut trail: Vec<Var> = Vec::new();
    loop {
        let mut changed = false;
        for clause in &f.clauses {
            match clause_state(clause, assign) {
                ClauseState::Conflict => {
                    for v in trail {
                        assign[v.index()] = None;
                    }
                    return false;
                }
                ClauseState::Unit(l) => {
                    assign[l.var.index()] = Some(l.positive);
                    trail.push(l.var);
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }

    // Pure literal elimination.
    {
        let n = f.n_vars as usize;
        let mut seen_pos = vec![false; n];
        let mut seen_neg = vec![false; n];
        for clause in &f.clauses {
            if matches!(clause_state(clause, assign), ClauseState::Satisfied) {
                continue;
            }
            for &l in clause {
                if assign[l.var.index()].is_none() {
                    if l.positive {
                        seen_pos[l.var.index()] = true;
                    } else {
                        seen_neg[l.var.index()] = true;
                    }
                }
            }
        }
        for v in 0..n {
            if assign[v].is_none() && (seen_pos[v] ^ seen_neg[v]) {
                assign[v] = Some(seen_pos[v]);
                trail.push(Var(v as u32));
            }
        }
    }

    // Pick the first unassigned variable appearing in an unsatisfied clause.
    let branch_var = f
        .clauses
        .iter()
        .filter(|c| !matches!(clause_state(c, assign), ClauseState::Satisfied))
        .flat_map(|c| c.iter())
        .find(|l| assign[l.var.index()].is_none())
        .map(|l| l.var);

    let Some(v) = branch_var else {
        // Every clause satisfied (a conflict would have been caught above,
        // and an unresolved clause always has an unassigned literal).
        let ok = f
            .clauses
            .iter()
            .all(|c| matches!(clause_state(c, assign), ClauseState::Satisfied));
        if !ok {
            for v in trail {
                assign[v.index()] = None;
            }
        }
        return ok;
    };

    for value in [true, false] {
        assign[v.index()] = Some(value);
        if dpll(f, assign) {
            return true;
        }
        assign[v.index()] = None;
    }
    for v in trail {
        assign[v.index()] = None;
    }
    false
}

/// Brute-force satisfiability over all `2^n` assignments; the oracle the
/// DPLL solver itself is tested against (usable for `n ≤ ~20`).
pub fn solve_brute_force(f: &Cnf) -> SatResult {
    let n = f.n_vars as usize;
    assert!(n <= 24, "brute force limited to 24 variables");
    for bits in 0..(1u64 << n) {
        let a: Assignment = (0..n).map(|i| bits & (1 << i) != 0).collect();
        if f.evaluate(&a) {
            return SatResult::Sat(a);
        }
    }
    SatResult::Unsat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Cnf, Lit, Var};

    #[test]
    fn paper_example_sat() {
        let f = Cnf::paper_example();
        let r = solve(&f);
        assert!(r.is_sat());
        assert!(f.evaluate(r.assignment().unwrap()));
    }

    #[test]
    fn trivially_unsat() {
        // (x) ∧ (¬x)
        let mut f = Cnf::new(1);
        f.add_clause(vec![Lit::pos(Var(0))]);
        f.add_clause(vec![Lit::neg(Var(0))]);
        assert_eq!(solve(&f), SatResult::Unsat);
    }

    #[test]
    fn smallest_unsat_three_sat_prime() {
        // (x)(x)(¬x): valid 3SAT′ (2 pos + 1 neg), unsatisfiable.
        let mut f = Cnf::new(1);
        f.add_clause(vec![Lit::pos(Var(0))]);
        f.add_clause(vec![Lit::pos(Var(0))]);
        f.add_clause(vec![Lit::neg(Var(0))]);
        f.validate_three_sat_prime().unwrap();
        assert_eq!(solve(&f), SatResult::Unsat);
        assert_eq!(solve_brute_force(&f), SatResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        // x0 ∧ (¬x0 ∨ x1) ∧ (¬x1 ∨ x2)
        let mut f = Cnf::new(3);
        f.add_clause(vec![Lit::pos(Var(0))]);
        f.add_clause(vec![Lit::neg(Var(0)), Lit::pos(Var(1))]);
        f.add_clause(vec![Lit::neg(Var(1)), Lit::pos(Var(2))]);
        let r = solve(&f);
        assert_eq!(r.assignment().unwrap(), &vec![true, true, true]);
    }

    #[test]
    fn empty_formula_sat() {
        let f = Cnf::new(2);
        assert!(solve(&f).is_sat());
    }

    #[test]
    fn agrees_with_brute_force_exhaustively() {
        // All 3-variable formulas with 3 random-ish structured clauses.
        let vars = [Var(0), Var(1), Var(2)];
        let lits: Vec<Lit> = vars
            .iter()
            .flat_map(|&v| [Lit::pos(v), Lit::neg(v)])
            .collect();
        // Systematic: clauses (l_a ∨ l_b) for all pairs, in triples.
        let mut count = 0;
        for a in 0..lits.len() {
            for b in 0..lits.len() {
                for c in 0..lits.len() {
                    let mut f = Cnf::new(3);
                    f.add_clause(vec![lits[a], lits[(a + 1) % 6]]);
                    f.add_clause(vec![lits[b], lits[(b + 3) % 6]]);
                    f.add_clause(vec![lits[c]]);
                    assert_eq!(
                        solve(&f).is_sat(),
                        solve_brute_force(&f).is_sat(),
                        "mismatch on {f}"
                    );
                    count += 1;
                }
            }
        }
        assert_eq!(count, 216);
    }
}
