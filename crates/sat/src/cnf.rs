//! CNF formulas and the 3SAT′ restricted form.
//!
//! Theorem 2 of the paper reduces from **3SAT′**: CNF satisfiability where
//! every clause has at most 3 literals and every variable occurs *exactly
//! twice positively and once negatively*. This module provides plain CNF
//! plus validation of the 3SAT′ shape (including locating the two positive
//! and one negative occurrence of each variable, which the transaction
//! gadget construction needs).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A propositional variable, numbered densely from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Var(pub u32);

impl Var {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lit {
    /// The underlying variable.
    pub var: Var,
    /// `true` for the positive literal `x`, `false` for `¬x`.
    pub positive: bool,
}

impl Lit {
    /// The positive literal of `v`.
    #[inline]
    pub fn pos(v: Var) -> Self {
        Self {
            var: v,
            positive: true,
        }
    }

    /// The negative literal of `v`.
    #[inline]
    pub fn neg(v: Var) -> Self {
        Self {
            var: v,
            positive: false,
        }
    }

    /// The complementary literal.
    #[inline]
    pub fn negated(self) -> Self {
        Self {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Whether the literal is satisfied under `value` for its variable.
    #[inline]
    pub fn satisfied_by(self, value: bool) -> bool {
        self.positive == value
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "{}", self.var)
        } else {
            write!(f, "¬{}", self.var)
        }
    }
}

/// A clause: a disjunction of literals.
pub type Clause = Vec<Lit>;

/// A truth assignment, one `bool` per variable.
pub type Assignment = Vec<bool>;

/// A CNF formula.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cnf {
    /// Number of variables (`Var(0)..Var(n)`).
    pub n_vars: u32,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// Creates a formula with `n_vars` variables and no clauses.
    pub fn new(n_vars: u32) -> Self {
        Self {
            n_vars,
            clauses: Vec::new(),
        }
    }

    /// Adds a clause.
    pub fn add_clause(&mut self, clause: Clause) {
        self.clauses.push(clause);
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the formula has no clauses (trivially satisfiable).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Evaluates the formula under a full assignment.
    pub fn evaluate(&self, a: &Assignment) -> bool {
        self.clauses.iter().all(|c| {
            c.iter().any(|l| {
                a.get(l.var.index())
                    .copied()
                    .map(|v| l.satisfied_by(v))
                    .unwrap_or(false)
            })
        })
    }

    /// Validates the 3SAT′ shape and returns the per-variable occurrence
    /// table needed by the Theorem 2 gadget.
    pub fn validate_three_sat_prime(&self) -> Result<Vec<VarOccurrences>, ThreeSatPrimeError> {
        let n = self.n_vars as usize;
        let mut pos: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut neg: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ci, clause) in self.clauses.iter().enumerate() {
            if clause.is_empty() || clause.len() > 3 {
                return Err(ThreeSatPrimeError::BadClauseSize {
                    clause: ci,
                    size: clause.len(),
                });
            }
            for lit in clause {
                if lit.var.index() >= n {
                    return Err(ThreeSatPrimeError::UnknownVar(lit.var));
                }
                if lit.positive {
                    pos[lit.var.index()].push(ci);
                } else {
                    neg[lit.var.index()].push(ci);
                }
            }
        }
        let mut out = Vec::with_capacity(n);
        for v in 0..n {
            if pos[v].len() != 2 || neg[v].len() != 1 {
                return Err(ThreeSatPrimeError::BadOccurrenceCount {
                    var: Var(v as u32),
                    positive: pos[v].len(),
                    negative: neg[v].len(),
                });
            }
            out.push(VarOccurrences {
                var: Var(v as u32),
                pos_clauses: [pos[v][0], pos[v][1]],
                neg_clause: neg[v][0],
            });
        }
        Ok(out)
    }

    /// The worked example from the paper's Theorem 2 discussion (Fig. 5):
    /// `(x₁ ∨ x₂) · (x₁ ∨ ¬x₂) · (¬x₁ ∨ x₂)` — a satisfiable 3SAT′
    /// formula over two variables and three clauses.
    pub fn paper_example() -> Self {
        let (x1, x2) = (Var(0), Var(1));
        let mut f = Cnf::new(2);
        f.add_clause(vec![Lit::pos(x1), Lit::pos(x2)]);
        f.add_clause(vec![Lit::pos(x1), Lit::neg(x2)]);
        f.add_clause(vec![Lit::neg(x1), Lit::pos(x2)]);
        f
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " · ")?;
            }
            write!(f, "(")?;
            for (j, l) in c.iter().enumerate() {
                if j > 0 {
                    write!(f, " ∨ ")?;
                }
                write!(f, "{l}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Occurrence table of a variable in a 3SAT′ formula.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VarOccurrences {
    /// The variable.
    pub var: Var,
    /// The clauses of its first and second positive occurrence (the
    /// paper's `c_h` and `c_k`).
    pub pos_clauses: [usize; 2],
    /// The clause of its negative occurrence (the paper's `c_l`).
    pub neg_clause: usize,
}

/// Why a formula is not in 3SAT′ form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreeSatPrimeError {
    /// A clause is empty or has more than three literals.
    BadClauseSize {
        /// Clause index.
        clause: usize,
        /// Its size.
        size: usize,
    },
    /// A literal references a variable outside `0..n_vars`.
    UnknownVar(Var),
    /// A variable does not occur exactly twice positively and once
    /// negatively.
    BadOccurrenceCount {
        /// The variable.
        var: Var,
        /// Positive occurrence count.
        positive: usize,
        /// Negative occurrence count.
        negative: usize,
    },
}

impl fmt::Display for ThreeSatPrimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreeSatPrimeError::BadClauseSize { clause, size } => {
                write!(f, "clause {clause} has {size} literals (want 1..=3)")
            }
            ThreeSatPrimeError::UnknownVar(v) => write!(f, "unknown variable {v}"),
            ThreeSatPrimeError::BadOccurrenceCount {
                var,
                positive,
                negative,
            } => write!(
                f,
                "{var} occurs {positive}× positively / {negative}× negatively (want 2/1)"
            ),
        }
    }
}

impl std::error::Error for ThreeSatPrimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_is_three_sat_prime() {
        let f = Cnf::paper_example();
        let occ = f.validate_three_sat_prime().unwrap();
        assert_eq!(occ.len(), 2);
        assert_eq!(occ[0].pos_clauses, [0, 1]);
        assert_eq!(occ[0].neg_clause, 2);
        assert_eq!(occ[1].pos_clauses, [0, 2]);
        assert_eq!(occ[1].neg_clause, 1);
    }

    #[test]
    fn paper_example_satisfied_by_all_true() {
        let f = Cnf::paper_example();
        assert!(f.evaluate(&vec![true, true]));
        assert!(!f.evaluate(&vec![false, false]));
    }

    #[test]
    fn bad_occurrence_counts_detected() {
        let mut f = Cnf::new(1);
        f.add_clause(vec![Lit::pos(Var(0))]);
        let err = f.validate_three_sat_prime().unwrap_err();
        assert!(matches!(err, ThreeSatPrimeError::BadOccurrenceCount { .. }));
    }

    #[test]
    fn oversized_clause_detected() {
        let mut f = Cnf::new(4);
        f.add_clause(vec![
            Lit::pos(Var(0)),
            Lit::pos(Var(1)),
            Lit::pos(Var(2)),
            Lit::pos(Var(3)),
        ]);
        assert!(matches!(
            f.validate_three_sat_prime().unwrap_err(),
            ThreeSatPrimeError::BadClauseSize { clause: 0, size: 4 }
        ));
    }

    #[test]
    fn empty_clause_detected() {
        let mut f = Cnf::new(0);
        f.add_clause(vec![]);
        assert!(matches!(
            f.validate_three_sat_prime().unwrap_err(),
            ThreeSatPrimeError::BadClauseSize { clause: 0, size: 0 }
        ));
    }

    #[test]
    fn unknown_var_detected() {
        let mut f = Cnf::new(1);
        f.add_clause(vec![Lit::pos(Var(5))]);
        assert!(matches!(
            f.validate_three_sat_prime().unwrap_err(),
            ThreeSatPrimeError::UnknownVar(Var(5))
        ));
    }

    #[test]
    fn literal_ops() {
        let l = Lit::pos(Var(3));
        assert_eq!(l.negated(), Lit::neg(Var(3)));
        assert_eq!(l.negated().negated(), l);
        assert!(l.satisfied_by(true) && !l.satisfied_by(false));
        assert!(Lit::neg(Var(3)).satisfied_by(false));
    }

    #[test]
    fn display_round() {
        let f = Cnf::paper_example();
        let s = f.to_string();
        assert!(s.contains("(x0 ∨ x1)") && s.contains("¬x1"));
    }

    #[test]
    fn empty_formula_is_true() {
        let f = Cnf::new(3);
        assert!(f.evaluate(&vec![false, false, false]));
        assert!(f.is_empty());
    }
}
