//! Lockdep regression tests for the engine's WAL group-commit path:
//! the discipline PR 7 promised in prose — the leader drains tickets
//! and flushes *outside* the queue lock, followers park holding only
//! `wal.group_state` — is machine-checked here by the instrumented
//! shim. Only meaningful with `--features lockdep`; without it the
//! validator observes nothing.
#![cfg(feature = "lockdep")]

use ddlf_engine::{AdmissionOptions, Engine, EngineConfig};
use ddlf_model::SystemSpec;

const SPEC: &str = r#"{
  "entities": [ {"name": "x", "site": 0}, {"name": "y", "site": 1} ],
  "transactions": [
    { "name": "T1", "ops": ["L x", "L y", "U y", "U x"] },
    { "name": "T2", "ops": ["L x", "L y", "U y", "U x"] }
  ]
}"#;

/// A contended group-commit run with per-group fsync: many followers
/// park on the group condvar while leaders flush. The condvar checker
/// asserts no follower waits holding a second class; the blocking
/// checker asserts no flush/fsync ever runs under `wal.group_state`
/// (it is deliberately absent from the allowlist); the order graph must
/// show `wal.group_state` as a *leaf* — the leader hands off before
/// touching any other lock.
#[test]
fn group_commit_park_and_flush_hold_no_extra_locks() {
    let sys = serde_json::from_str::<SystemSpec>(SPEC)
        .unwrap()
        .build()
        .unwrap();
    let dir = std::env::temp_dir().join(format!("ddlf-lockdep-group-{}", std::process::id()));
    let engine = Engine::try_with_admission(
        sys,
        AdmissionOptions::default(),
        EngineConfig {
            threads: 4,
            instances: 200,
            wal_dir: Some(dir.clone()),
            wal_sync: true,
            group_commit: Some(4),
            ..Default::default()
        },
    )
    .unwrap();
    let report = engine.run();
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(report.committed, 200, "workload must actually commit");

    let classes = ddlf_lockdep::classes();
    assert!(
        classes.iter().any(|c| c == "wal.group_state"),
        "group path must have run under the validator; saw {classes:?}"
    );
    // Leaf property: the group queue lock orders *after* nothing —
    // acquiring any other class while holding it would record an edge.
    let offenders: Vec<_> = ddlf_lockdep::edges()
        .into_iter()
        .filter(|(from, _)| from == "wal.group_state")
        .collect();
    assert!(
        offenders.is_empty(),
        "leader must flush outside wal.group_state: {offenders:?}"
    );
    let bad: Vec<_> = ddlf_lockdep::violations()
        .into_iter()
        .filter(|v| v.classes.iter().any(|c| c.starts_with("wal.")))
        .collect();
    assert!(bad.is_empty(), "wal discipline violations: {bad:#?}");
}
