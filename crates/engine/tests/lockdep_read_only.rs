//! Lockdep certification of the read-only transaction path: the
//! ISSUE 10 claim — "the RO path takes **zero** locks" — made machine-
//! checkable. The instrumented shim counts every lock acquisition per
//! thread ([`ddlf_lockdep::thread_acquire_count`]); a snapshot read
//! that leaves the counter unchanged provably acquired no lock class,
//! not merely "no contended lock". Only meaningful with
//! `--features lockdep`; without it the shim counts nothing.
#![cfg(feature = "lockdep")]

use ddlf_engine::{AdmissionOptions, Engine, EngineConfig};
use ddlf_model::{EntityId, SystemSpec};

const SPEC: &str = r#"{
  "entities": [ {"name": "x", "site": 0}, {"name": "y", "site": 1} ],
  "transactions": [
    { "name": "T1", "ops": ["L x", "L y", "U y", "U x"] },
    { "name": "T2", "ops": ["L x", "L y", "U y", "U x"] }
  ]
}"#;

fn counter_engine(instances: usize) -> Engine {
    let sys = serde_json::from_str::<SystemSpec>(SPEC)
        .unwrap()
        .build()
        .unwrap();
    Engine::try_with_admission(
        sys,
        AdmissionOptions::default(),
        EngineConfig {
            threads: 4,
            instances,
            ..Default::default()
        },
    )
    .unwrap()
}

/// After a contended writer run populated the version chains, a storm
/// of read-only transactions on this thread acquires **zero**
/// instrumented locks: the per-thread acquisition counter does not
/// move across whole-database scans, subset scans, or repeated
/// single-entity reads. The writer run beforehand proves the counter
/// works (it must have moved) — this is not a disabled-shim tautology.
#[test]
fn read_only_path_acquires_no_lock_class() {
    let engine = counter_engine(150);

    // Baseline sanity: lock instrumentation is live on this thread.
    // Engine construction + a direct locked-oracle read must count.
    let before_oracle = ddlf_lockdep::thread_acquire_count();
    let _ = engine.store().snapshot();
    assert!(
        ddlf_lockdep::thread_acquire_count() > before_oracle,
        "the locked snapshot path must register acquisitions, or the \
         zero-delta assertion below would be vacuous"
    );

    assert_eq!(engine.run().committed, 150);
    let entities: Vec<EntityId> = engine.store().db().entities().collect();

    let before = ddlf_lockdep::thread_acquire_count();
    let mut last_ts = 0;
    for round in 0..1_000 {
        // Alternate full scans with subsets so both shapes are covered.
        let snap = if round % 2 == 0 {
            engine.run_read_only(&entities)
        } else {
            engine.run_read_only(&entities[..1])
        };
        assert!(snap.ts >= last_ts);
        last_ts = snap.ts;
        assert!(!snap.entries.is_empty());
    }
    assert_eq!(
        ddlf_lockdep::thread_acquire_count(),
        before,
        "a read-only transaction acquired an instrumented lock"
    );

    // And the storm left no discipline violations behind either.
    let bad = ddlf_lockdep::violations();
    assert!(bad.is_empty(), "lockdep violations: {bad:#?}");
}
