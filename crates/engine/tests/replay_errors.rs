//! Error-path contract of [`ddlf_engine::replay_schedule`]: a corrupt
//! trace is rejected with a typed [`ReplayError::IllegalStep`] naming
//! the exact offending step and why — never a panic, never a partial
//! "success". Three corruption families, each the one an on-disk JSONL
//! trace can actually acquire:
//!
//! 1. an **unknown transaction id** (the trace belongs to a bigger
//!    system, or the gid column was mangled),
//! 2. a **step out of its transaction's order** (reordered or dropped
//!    lines),
//! 3. a **lock step where the entity is held by another transaction**
//!    (a legal-looking interleaving of the wrong system — the lock
//!    tables prove it illegal).
//!
//! `ReplayError::Stalled` is deliberately absent: phase 1 validates
//! every recorded step against both the transaction's partial order and
//! the live lock tables, so any accepted prefix is a legal partial
//! schedule — and wait-die completion always drains those.

use ddlf_engine::{replay_schedule, ReplayError};
use ddlf_model::{
    Database, EntityId, GlobalNode, NodeId, Op, Transaction, TransactionSystem, TxnId,
};

/// Two transactions over two single-entity sites, each with the given
/// total-order op list.
fn pair(ops1: &[Op], ops2: &[Op]) -> TransactionSystem {
    let db = Database::one_entity_per_site(2);
    let t1 = Transaction::from_total_order("T1", ops1, &db).unwrap();
    let t2 = Transaction::from_total_order("T2", ops2, &db).unwrap();
    TransactionSystem::new(db, vec![t1, t2]).unwrap()
}

fn two_entity_system() -> TransactionSystem {
    let (x, y) = (EntityId(0), EntityId(1));
    let ops = [Op::lock(x), Op::lock(y), Op::unlock(x), Op::unlock(y)];
    pair(&ops, &ops)
}

#[test]
fn unknown_transaction_id_is_rejected_at_its_index() {
    let sys = two_entity_system();
    // A legal first step, then a gid the system has never heard of.
    let steps = [
        GlobalNode::new(TxnId(0), NodeId(0)),
        GlobalNode::new(TxnId(7), NodeId(0)),
    ];
    let err = replay_schedule(&sys, &steps).unwrap_err();
    let ReplayError::IllegalStep {
        index,
        step,
        reason,
    } = &err
    else {
        panic!("expected IllegalStep, got {err:?}");
    };
    assert_eq!(*index, 1, "the first step was legal; only the second fails");
    assert_eq!(step.txn, TxnId(7));
    assert!(
        reason.contains("no transaction"),
        "reason names the missing txn: {reason}"
    );
    // The Display form carries the index, the step, and the reason —
    // enough to find the corrupt line in a JSONL trace.
    let shown = err.to_string();
    assert!(shown.contains("step 1"), "{shown}");
    assert!(shown.contains("no transaction"), "{shown}");
}

#[test]
fn step_out_of_transaction_order_is_rejected() {
    let sys = two_entity_system();
    // T1's node 1 (lock y) before its node 0 (lock x): not ready under
    // the transaction's own partial order, regardless of lock state.
    let steps = [GlobalNode::new(TxnId(0), NodeId(1))];
    let err = replay_schedule(&sys, &steps).unwrap_err();
    let ReplayError::IllegalStep { index, reason, .. } = &err else {
        panic!("expected IllegalStep, got {err:?}");
    };
    assert_eq!(*index, 0);
    assert!(
        reason.contains("not ready"),
        "reason blames the partial order: {reason}"
    );
}

#[test]
fn replaying_a_step_twice_is_rejected() {
    let sys = two_entity_system();
    // A duplicated JSONL line: the node was ready once, not twice.
    let steps = [
        GlobalNode::new(TxnId(0), NodeId(0)),
        GlobalNode::new(TxnId(0), NodeId(0)),
    ];
    let err = replay_schedule(&sys, &steps).unwrap_err();
    let ReplayError::IllegalStep { index, reason, .. } = &err else {
        panic!("expected IllegalStep, got {err:?}");
    };
    assert_eq!(*index, 1);
    assert!(reason.contains("not ready"), "{reason}");
}

#[test]
fn lock_on_an_entity_held_by_another_txn_is_rejected() {
    let sys = two_entity_system();
    // Both transactions lock x back to back. Each step respects its own
    // transaction's order — only the lock table can catch this one.
    let steps = [
        GlobalNode::new(TxnId(0), NodeId(0)),
        GlobalNode::new(TxnId(1), NodeId(0)),
    ];
    let err = replay_schedule(&sys, &steps).unwrap_err();
    let ReplayError::IllegalStep {
        index,
        step,
        reason,
    } = &err
    else {
        panic!("expected IllegalStep, got {err:?}");
    };
    assert_eq!(*index, 1);
    assert_eq!(step.txn, TxnId(1));
    assert!(
        reason.contains("blocked by") && reason.contains("not a legal schedule"),
        "reason names the holder: {reason}"
    );
}

#[test]
fn rejection_leaves_no_side_effects_on_a_fresh_replay() {
    let sys = two_entity_system();
    // Corrupt trace first...
    let bad = [
        GlobalNode::new(TxnId(0), NodeId(0)),
        GlobalNode::new(TxnId(1), NodeId(0)),
    ];
    assert!(replay_schedule(&sys, &bad).is_err());
    // ...then the legal prefix of the same shape replays clean: each
    // call builds its own store/auditor, so a rejected trace cannot
    // poison later replays of the same system.
    let good = [
        GlobalNode::new(TxnId(0), NodeId(0)),
        GlobalNode::new(TxnId(0), NodeId(1)),
        GlobalNode::new(TxnId(0), NodeId(2)),
        GlobalNode::new(TxnId(0), NodeId(3)),
        GlobalNode::new(TxnId(1), NodeId(0)),
    ];
    let rep = replay_schedule(&sys, &good).unwrap();
    assert_eq!(rep.instances, 2);
    assert_eq!(rep.replayed_steps, 5);
    assert_eq!(rep.committed, 2, "completion finishes T2");
    assert!(rep.completion_steps > 0);
    assert_eq!(rep.aborts, 0, "a legal prefix never forces a death");
    assert_eq!(rep.serializable, Some(true));
}
