//! Run reports, following the `ddlf_sim::metrics` conventions
//! (`throughput_per_sec`, `all_committed`, a `serializable` audit slot)
//! but measured in wall-clock time on real threads.

use crate::template::{AdmissionVerdict, Slots};
use ddlf_telemetry::PhaseSnapshot;
use std::time::Duration;

/// Latency distribution over committed instances, in microseconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyStats {
    /// Mean commit latency.
    pub mean_us: f64,
    /// Median commit latency.
    pub p50_us: u64,
    /// 99th percentile commit latency.
    pub p99_us: u64,
    /// Worst commit latency.
    pub max_us: u64,
}

impl LatencyStats {
    /// Computes stats from raw per-instance latencies (destructive sort).
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let pct = |p: f64| samples[(((n - 1) as f64) * p) as usize];
        Self {
            mean_us: samples.iter().sum::<u64>() as f64 / n as f64,
            p50_us: pct(0.50),
            p99_us: pct(0.99),
            max_us: samples[n - 1],
        }
    }
}

impl LatencyStats {
    /// Merges another distribution in, weighting the means by committed
    /// counts. Percentiles cannot be merged exactly without the raw
    /// samples, so `p50`/`p99`/`max` take the worse (larger) of the two —
    /// a conservative cumulative view.
    fn absorb(&mut self, other: &Self, self_weight: usize, other_weight: usize) {
        let total = self_weight + other_weight;
        if total == 0 {
            return;
        }
        self.mean_us = (self.mean_us * self_weight as f64 + other.mean_us * other_weight as f64)
            / total as f64;
        self.p50_us = self.p50_us.max(other.p50_us);
        self.p99_us = self.p99_us.max(other.p99_us);
        self.max_us = self.max_us.max(other.max_us);
    }
}

/// Per-template outcome of one run: the certified multiprogramming level
/// next to what the run actually achieved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateReport {
    /// The template's name in the registered system.
    pub name: String,
    /// Certified concurrent slots from the admission plan.
    pub certified_slots: Slots,
    /// High-water mark of concurrent in-flight instances this run — the
    /// achieved multiprogramming level.
    pub peak_inflight: usize,
    /// Instances of this template that committed.
    pub committed: usize,
    /// Aborted attempts charged to this template's instances.
    pub aborted_attempts: usize,
}

/// Counters and outcomes of one engine run.
#[derive(Debug, Clone)]
pub struct Report {
    /// The admission verdict the run executed under.
    pub verdict: AdmissionVerdict,
    /// Whether a requested inflation failed to certify and the admission
    /// plan fell back to the `k = 1` floor.
    pub plan_floored: bool,
    /// Whether the run was forced onto the wait-die path despite a
    /// certificate (for apples-to-apples comparisons).
    pub forced_fallback: bool,
    /// Total transaction instances submitted.
    pub instances: usize,
    /// Instances that ran to commit.
    pub committed: usize,
    /// Aborted attempts — every abort is a wait-die victim that retried;
    /// the certified path cannot abort, so this is always 0 there.
    pub aborted_attempts: usize,
    /// Aborts that exposed a write the shard undo logs could **not**
    /// take back (a clobbered absolute write). Exposed writes are
    /// normally rolled back (see [`Report::rolled_back`]); only this
    /// residue voids the serializability audit (`serializable` becomes
    /// `None`).
    pub dirty_aborts: usize,
    /// Exposed writes of dying attempts that were rolled back through
    /// the per-shard undo logs (exact before-image or inverse-delta
    /// compensation) — what used to be unconditionally dirty.
    pub rolled_back: u64,
    /// Instance ids that exhausted their attempt budget.
    pub failed: Vec<u32>,
    /// Data reads performed under locks (lock-only ticket entities are
    /// not reads; see [`crate::Program::reads_entity`]).
    pub reads: u64,
    /// Writes committed to the store.
    pub writes: u64,
    /// Writes skipped with a typed error because the operation did not
    /// type against the entity's payload
    /// ([`crate::store::WriteError`]); the old behavior silently
    /// clobbered the payload instead.
    pub writes_skipped: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Post-hoc `D(S)` audit of the committed schedule; `None` when not
    /// every instance committed.
    pub serializable: Option<bool>,
    /// Lock/unlock events recorded.
    pub history_len: usize,
    /// Commit-latency distribution.
    pub latency: LatencyStats,
    /// Phase-latency histograms for this run (gate wait, lock wait,
    /// execute, undo, WAL append, fsync, commit), recorded when the
    /// run's [`EngineConfig`](crate::EngineConfig) carried an enabled
    /// telemetry handle; all-zero otherwise. Unlike [`LatencyStats`],
    /// these merge *exactly* under [`Report::absorb`].
    pub phases: PhaseSnapshot,
    /// Decision-log flush groups written by the WAL's group committer
    /// this run (one data-log flush + at most one fsync each); 0 when
    /// group commit is off or no WAL is attached.
    pub group_flushes: u64,
    /// Commit decisions that went through the group committer this run;
    /// `group_commits / group_flushes` is the mean achieved group size.
    pub group_commits: u64,
    /// Per-template certified-vs-achieved multiprogramming and outcome
    /// counts, template order.
    pub per_template: Vec<TemplateReport>,
}

impl Report {
    /// Whether every submitted instance committed.
    pub fn all_committed(&self) -> bool {
        self.committed == self.instances && self.failed.is_empty()
    }

    /// Committed instances per wall-clock second.
    pub fn throughput_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.committed as f64 / secs
    }

    /// The highest multiprogramming level any template achieved this run.
    pub fn peak_inflight(&self) -> usize {
        self.per_template
            .iter()
            .map(|t| t.peak_inflight)
            .max()
            .unwrap_or(0)
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} | committed {}/{} aborts {} | {:.0} txn/s | p50 {}µs p99 {}µs | peak k {} | serializable {:?}",
            if self.verdict.is_certified() && !self.forced_fallback {
                "no-detector"
            } else {
                "wait-die"
            },
            self.committed,
            self.instances,
            self.aborted_attempts,
            self.throughput_per_sec(),
            self.latency.p50_us,
            self.latency.p99_us,
            self.peak_inflight(),
            self.serializable,
        )
    }

    /// Folds the outcome of one more run into this (cumulative) report:
    /// counters add, `wall` accumulates, `serializable` is the
    /// three-valued conjunction of run verdicts — a confirmed violation
    /// (`Some(false)`) is absorbing and is never masked by a later
    /// unauditable run; `Some(true)` degrades to `None` once any audited
    /// run could not produce a verdict — per-template peaks take the
    /// high-water mark, and latency percentiles merge conservatively
    /// (worse-of). The engine uses this to maintain the snapshot behind
    /// [`Engine::report_snapshot`](crate::Engine::report_snapshot);
    /// empty runs (`run.instances == 0`) are identity.
    pub fn absorb(&mut self, run: &Report) {
        if run.instances == 0 {
            return;
        }
        self.serializable = if self.instances == 0 {
            run.serializable
        } else {
            match (self.serializable, run.serializable) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            }
        };
        self.latency
            .absorb(&run.latency, self.committed, run.committed);
        self.phases.merge(&run.phases);
        self.instances += run.instances;
        self.committed += run.committed;
        self.aborted_attempts += run.aborted_attempts;
        self.dirty_aborts += run.dirty_aborts;
        self.rolled_back += run.rolled_back;
        self.failed.extend_from_slice(&run.failed);
        self.reads += run.reads;
        self.writes += run.writes;
        self.writes_skipped += run.writes_skipped;
        self.wall += run.wall;
        self.history_len += run.history_len;
        self.group_flushes += run.group_flushes;
        self.group_commits += run.group_commits;
        debug_assert_eq!(self.per_template.len(), run.per_template.len());
        for (acc, t) in self.per_template.iter_mut().zip(&run.per_template) {
            acc.peak_inflight = acc.peak_inflight.max(t.peak_inflight);
            acc.committed += t.committed;
            acc.aborted_attempts += t.aborted_attempts;
        }
    }

    /// A per-template table: certified k, achieved peak, commits, aborts.
    pub fn template_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for t in &self.per_template {
            let _ = writeln!(
                out,
                "  {:<24} certified k = {:<4} peak {} | committed {} aborts {}",
                t.name, t.certified_slots, t.peak_inflight, t.committed, t.aborted_attempts
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_percentiles() {
        let s = LatencyStats::from_samples((1..=100).collect());
        assert_eq!(s.p50_us, 50);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
        assert!((s.mean_us - 50.5).abs() < 1e-9);
        assert_eq!(LatencyStats::from_samples(vec![]), LatencyStats::default());
    }

    fn run_report(serializable: Option<bool>) -> Report {
        Report {
            verdict: AdmissionVerdict::Certified,
            plan_floored: false,
            forced_fallback: false,
            instances: 4,
            committed: 4,
            aborted_attempts: 0,
            dirty_aborts: 0,
            rolled_back: 0,
            failed: vec![],
            reads: 0,
            writes: 0,
            writes_skipped: 0,
            wall: Duration::from_millis(1),
            serializable,
            history_len: 0,
            latency: LatencyStats::default(),
            phases: PhaseSnapshot::default(),
            group_flushes: 3,
            group_commits: 4,
            per_template: vec![],
        }
    }

    #[test]
    fn absorb_serializable_is_a_three_valued_conjunction() {
        // A confirmed violation is absorbing — a later unauditable run
        // must not mask it back to None.
        let mut acc = run_report(Some(false));
        acc.absorb(&run_report(None));
        assert_eq!(acc.serializable, Some(false));
        acc.absorb(&run_report(Some(true)));
        assert_eq!(acc.serializable, Some(false));

        // Some(true) degrades to None under an unauditable run…
        let mut acc = run_report(Some(true));
        acc.absorb(&run_report(None));
        assert_eq!(acc.serializable, None);
        // …and None picks a violation back up.
        acc.absorb(&run_report(Some(false)));
        assert_eq!(acc.serializable, Some(false));

        // All-clear stays all-clear, and counters accumulate.
        let mut acc = run_report(Some(true));
        acc.absorb(&run_report(Some(true)));
        assert_eq!(acc.serializable, Some(true));
        assert_eq!(acc.instances, 8);
        assert_eq!((acc.group_flushes, acc.group_commits), (6, 8));
    }

    #[test]
    fn report_throughput() {
        let r = Report {
            verdict: AdmissionVerdict::Certified,
            plan_floored: false,
            forced_fallback: false,
            instances: 10,
            committed: 10,
            aborted_attempts: 0,
            dirty_aborts: 0,
            rolled_back: 0,
            failed: vec![],
            reads: 0,
            writes: 0,
            writes_skipped: 0,
            wall: Duration::from_secs(2),
            serializable: Some(true),
            history_len: 0,
            latency: LatencyStats::default(),
            phases: PhaseSnapshot::default(),
            group_flushes: 0,
            group_commits: 0,
            per_template: vec![TemplateReport {
                name: "T".into(),
                certified_slots: Slots::Bounded(4),
                peak_inflight: 3,
                committed: 10,
                aborted_attempts: 0,
            }],
        };
        assert!(r.all_committed());
        assert!((r.throughput_per_sec() - 5.0).abs() < 1e-9);
        assert!(r.summary().contains("no-detector"));
        assert_eq!(r.peak_inflight(), 3);
        let table = r.template_table();
        assert!(table.contains("certified k = 4"), "{table}");
        assert!(table.contains("peak 3"), "{table}");
    }
}
