//! Replay explored schedules through the engine's data path.
//!
//! `ddlf_model::explore` finds counterexample schedules in the abstract
//! lock model; this module re-executes such a schedule against the real
//! engine machinery — the sharded [`Store`] with its FIFO lock tables
//! and value/undo log, and the incremental
//! [`StreamingAuditor`] — so a recorded
//! JSONL trace is not just a claim about the model but a reproducible
//! run of the engine itself.
//!
//! Two phases:
//!
//! 1. **Trace replay** — the recorded steps execute verbatim, one
//!    virtual thread per transaction. A legal schedule never blocks (a
//!    `Lock` step only appears where the entity is free), so every lock
//!    request must be granted immediately; anything else means the
//!    trace is corrupt and is reported as [`ReplayError::IllegalStep`].
//! 2. **Wait-die completion** — a deadlock witness ends in a stuck
//!    state. The replay then continues under the engine's wait-die
//!    rule: each unfinished transaction advances in timestamp order;
//!    a requester younger than the holder dies — its queued request is
//!    withdrawn, its held locks released, its exposed writes rolled
//!    back through the undo log — and retries from scratch. Wait-die
//!    admits no waiting cycle, so the replay always drains: the
//!    deadlock the certified path would have hit is demonstrably
//!    unjammed by the fallback path, at the cost of real aborts.
//!
//! The sealed streaming-audit verdict is returned: replaying a `D(S)`
//! cycle counterexample yields `serializable == Some(false)` end to end
//! in the engine, while a deadlock witness completes with aborts and a
//! serializable history.

use crate::store::{LockOutcome, Store, WriteCtx};
use crate::template::Program;
use crossbeam::channel::{unbounded, Receiver, Sender};
use ddlf_model::{
    EntityId, GlobalNode, NodeId, Prefix, StreamingAuditor, TransactionSystem, TxnId,
};
use std::fmt;

/// The initial integer payload of every entity in a replay store
/// (mirrors the engine's default).
pub const REPLAY_INITIAL_VALUE: u64 = 1000;

/// How a replay went.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Transactions in the replayed system (one instance each).
    pub instances: usize,
    /// Recorded steps executed verbatim (phase 1).
    pub replayed_steps: usize,
    /// Steps executed by the wait-die completion (phase 2); zero when
    /// the trace was already complete.
    pub completion_steps: usize,
    /// Attempts killed by the wait-die rule during completion.
    pub aborts: u32,
    /// Exposed writes rolled back through the undo log.
    pub rolled_back: u32,
    /// Transactions that committed (always `instances` on success).
    pub committed: usize,
    /// The sealed streaming `D(S)` verdict over the committed history.
    pub serializable: Option<bool>,
}

/// Why a replay failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// A recorded step was not executable at its position — the trace
    /// does not come from a legal schedule of this system.
    IllegalStep {
        /// Index into the recorded steps.
        index: usize,
        /// The offending step.
        step: GlobalNode,
        /// What went wrong.
        reason: String,
    },
    /// The wait-die completion stopped making progress (cannot happen
    /// for traces produced by the explorer; guards corrupt input).
    Stalled {
        /// Transactions committed before the stall.
        committed: usize,
        /// Transactions in the system.
        instances: usize,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::IllegalStep {
                index,
                step,
                reason,
            } => {
                write!(f, "step {index} ({step:?}) is illegal: {reason}")
            }
            ReplayError::Stalled {
                committed,
                instances,
            } => {
                write!(
                    f,
                    "completion stalled with {committed}/{instances} committed"
                )
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// One transaction's execution state: its executed prefix, attempt
/// counter, grant channel, and this attempt's exposed writes.
struct Slot {
    prefix: Prefix,
    attempt: u32,
    committed: bool,
    written: Vec<EntityId>,
    blocked: Option<(EntityId, NodeId)>,
    tx: Sender<EntityId>,
    rx: Receiver<EntityId>,
}

impl Slot {
    fn ctx(&self, t: TxnId) -> WriteCtx {
        WriteCtx {
            instance: t,
            gid: t.0,
            attempt: self.attempt,
            track_undo: true,
        }
    }
}

/// Replays `steps` — a (possibly partial) schedule of `sys`, one
/// transaction per instance — through the engine's store, undo log, and
/// streaming auditor, then completes any unfinished transactions under
/// the wait-die rule. See the module docs.
pub fn replay_schedule(
    sys: &TransactionSystem,
    steps: &[GlobalNode],
) -> Result<ReplayReport, ReplayError> {
    let store = Store::new(sys.db(), REPLAY_INITIAL_VALUE);
    let mut auditor = StreamingAuditor::new(sys);
    let programs: Vec<Program> = sys
        .txns()
        .iter()
        .map(|t| Program::counter(t.entities()))
        .collect();
    let mut slots: Vec<Slot> = sys
        .txns()
        .iter()
        .map(|t| {
            let (tx, rx) = unbounded();
            Slot {
                prefix: Prefix::empty(t),
                attempt: 0,
                committed: false,
                written: Vec::new(),
                blocked: None,
                tx,
                rx,
            }
        })
        .collect();
    for (t, _) in sys.iter() {
        auditor.admit(t.0, t);
    }
    let mut report = ReplayReport {
        instances: sys.len(),
        replayed_steps: 0,
        completion_steps: 0,
        aborts: 0,
        rolled_back: 0,
        committed: 0,
        serializable: None,
    };

    // Phase 1: the recorded steps, verbatim. Every lock must grant.
    for (i, g) in steps.iter().enumerate() {
        let bad = |reason: String| ReplayError::IllegalStep {
            index: i,
            step: *g,
            reason,
        };
        if g.txn.index() >= slots.len() {
            return Err(bad(format!("no transaction {}", g.txn)));
        }
        let txn = sys.txn(g.txn);
        if !slots[g.txn.index()]
            .prefix
            .ready_nodes(txn)
            .contains(&g.node)
        {
            return Err(bad("node is not ready in its transaction".to_string()));
        }
        let op = txn.op(g.node);
        if op.is_lock() {
            let outcome =
                store
                    .shard_of(op.entity)
                    .request(g.txn, op.entity, &slots[g.txn.index()].tx);
            if let LockOutcome::Queued { holder } = outcome {
                return Err(bad(format!(
                    "lock on {} blocked by {holder} — not a legal schedule",
                    op.entity
                )));
            }
        }
        let slot = &mut slots[g.txn.index()];
        auditor.event(g.txn.0, slot.attempt, g.node);
        if op.is_unlock() {
            let ctx = slot.ctx(g.txn);
            let applied = store
                .shard_of(op.entity)
                .write_and_release(
                    &ctx,
                    op.entity,
                    programs[g.txn.index()].write_for(op.entity),
                )
                .unwrap_or(false);
            if applied {
                slot.written.push(op.entity);
            }
        }
        slot.prefix.push(g.node);
        report.replayed_steps += 1;
        if slot.prefix.is_complete(txn) {
            commit(&store, &mut auditor, sys, &mut slots[g.txn.index()], g.txn);
            report.committed += 1;
        }
    }

    // Phase 2: finish whatever the trace left unfinished (a deadlock
    // witness leaves everything in the cycle stuck) under wait-die.
    let mut idle_rounds = 0usize;
    while slots.iter().any(|s| !s.committed) {
        let mut progressed = false;
        for idx in 0..slots.len() {
            let t = TxnId(idx as u32);
            let txn = sys.txn(t);
            if slots[idx].committed {
                continue;
            }
            // A parked requester first checks whether the FIFO hand-over
            // promoted it.
            if let Some((e, n)) = slots[idx].blocked {
                match slots[idx].rx.try_recv() {
                    Ok(granted) if granted == e => {
                        slots[idx].blocked = None;
                        auditor.event(t.0, slots[idx].attempt, n);
                        slots[idx].prefix.push(n);
                        report.completion_steps += 1;
                        progressed = true;
                    }
                    _ => continue,
                }
            }
            // Run ahead until the transaction commits, parks, or dies.
            loop {
                let ready = slots[idx].prefix.ready_nodes(txn);
                let Some(&n) = ready.first() else {
                    if slots[idx].prefix.is_complete(txn) {
                        commit(&store, &mut auditor, sys, &mut slots[idx], t);
                        report.committed += 1;
                        progressed = true;
                    }
                    break;
                };
                let op = txn.op(n);
                if op.is_lock() {
                    match store
                        .shard_of(op.entity)
                        .request(t, op.entity, &slots[idx].tx)
                    {
                        LockOutcome::Granted => {}
                        LockOutcome::Queued { holder } => {
                            if t.0 >= holder.0 {
                                // Younger than the holder: die, roll
                                // back, retry from scratch.
                                store.shard_of(op.entity).withdraw(t, op.entity);
                                abort(&store, &mut auditor, sys, &mut slots[idx], t, &mut report);
                                progressed = true;
                            } else {
                                // Older: park until the hand-over.
                                slots[idx].blocked = Some((op.entity, n));
                            }
                            break;
                        }
                    }
                    auditor.event(t.0, slots[idx].attempt, n);
                    slots[idx].prefix.push(n);
                } else {
                    let ctx = slots[idx].ctx(t);
                    auditor.event(t.0, slots[idx].attempt, n);
                    let applied = store
                        .shard_of(op.entity)
                        .write_and_release(&ctx, op.entity, programs[idx].write_for(op.entity))
                        .unwrap_or(false);
                    if applied {
                        slots[idx].written.push(op.entity);
                    }
                    slots[idx].prefix.push(n);
                }
                report.completion_steps += 1;
                progressed = true;
            }
        }
        if progressed {
            idle_rounds = 0;
        } else {
            idle_rounds += 1;
            // Wait-die admits no waiting cycle, so a full idle sweep
            // (plus slack) proves the input was not a schedule of `sys`.
            if idle_rounds > slots.len() + 2 {
                return Err(ReplayError::Stalled {
                    committed: report.committed,
                    instances: report.instances,
                });
            }
        }
    }

    report.serializable = auditor.seal();
    Ok(report)
}

/// Commit: writes become permanent, the auditor folds the attempt into
/// the committed history.
fn commit(
    store: &Store,
    auditor: &mut StreamingAuditor,
    sys: &TransactionSystem,
    slot: &mut Slot,
    t: TxnId,
) {
    for &e in sys.txn(t).entities() {
        store.shard_of(e).commit_clear(t);
    }
    auditor.commit(t.0, slot.attempt);
    slot.committed = true;
    slot.written.clear();
}

/// Wait-die death: release everything, undo exposed writes (reverse
/// order), drop the attempt's buffered events, and reset for a retry.
fn abort(
    store: &Store,
    auditor: &mut StreamingAuditor,
    sys: &TransactionSystem,
    slot: &mut Slot,
    t: TxnId,
    report: &mut ReplayReport,
) {
    let txn = sys.txn(t);
    let ctx = slot.ctx(t);
    for e in slot.prefix.held_entities(txn) {
        store.shard_of(e).release(t, e);
    }
    for &e in slot.written.iter().rev().collect::<Vec<_>>() {
        if store.shard_of(e).undo_write(&ctx, e).rolled_back() {
            report.rolled_back += 1;
        }
    }
    // A grant delivered between queueing and withdrawal is stale now.
    while slot.rx.try_recv().is_ok() {}
    auditor.abort(t.0, slot.attempt);
    slot.attempt += 1;
    slot.prefix = Prefix::empty(txn);
    slot.written.clear();
    slot.blocked = None;
    report.aborts += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddlf_model::explore::{explore, AnomalyKind, ExploreConfig};
    use ddlf_model::{Database, Op, Transaction};

    fn pair(ops1: &[Op], ops2: &[Op]) -> TransactionSystem {
        let db = Database::one_entity_per_site(2);
        let t1 = Transaction::from_total_order("T1", ops1, &db).unwrap();
        let t2 = Transaction::from_total_order("T2", ops2, &db).unwrap();
        TransactionSystem::new(db, vec![t1, t2]).unwrap()
    }

    fn first_counterexample(sys: &TransactionSystem) -> ddlf_model::Counterexample {
        let out = explore(
            sys,
            &ExploreConfig {
                max_counterexamples: 1,
                ..ExploreConfig::default()
            },
        );
        out.counterexamples.into_iter().next().expect("found one")
    }

    #[test]
    fn empty_trace_completes_serially() {
        let (x, y) = (ddlf_model::EntityId(0), ddlf_model::EntityId(1));
        let ops = [Op::lock(x), Op::lock(y), Op::unlock(x), Op::unlock(y)];
        let sys = pair(&ops, &ops);
        let rep = replay_schedule(&sys, &[]).unwrap();
        assert_eq!(rep.committed, 2);
        assert_eq!(rep.aborts, 0);
        assert_eq!(rep.serializable, Some(true));
        assert_eq!(rep.completion_steps, 8);
    }

    #[test]
    fn cycle_witness_reproduces_the_non_serializable_verdict() {
        let (x, y) = (ddlf_model::EntityId(0), ddlf_model::EntityId(1));
        // The lost-update shape: both read x (snapshot), then write y.
        let ops = [Op::lock(x), Op::unlock(x), Op::lock(y), Op::unlock(y)];
        let sys = pair(&ops, &ops);
        let ce = first_counterexample(&sys);
        assert_eq!(ce.kind, AnomalyKind::LostUpdate);
        let rep = replay_schedule(&sys, &ce.steps).unwrap();
        assert_eq!(rep.committed, 2);
        assert_eq!(rep.aborts, 0, "a complete legal trace never conflicts");
        assert_eq!(rep.serializable, Some(false), "the engine audit agrees");
    }

    #[test]
    fn deadlock_witness_is_unjammed_by_wait_die() {
        let (x, y) = (ddlf_model::EntityId(0), ddlf_model::EntityId(1));
        let sys = pair(
            &[Op::lock(x), Op::lock(y), Op::unlock(x), Op::unlock(y)],
            &[Op::lock(y), Op::lock(x), Op::unlock(y), Op::unlock(x)],
        );
        let ce = first_counterexample(&sys);
        assert_eq!(ce.kind, AnomalyKind::Deadlock);
        let rep = replay_schedule(&sys, &ce.steps).unwrap();
        assert_eq!(rep.committed, 2, "wait-die drains the stuck state");
        assert!(rep.aborts >= 1, "someone had to die");
        assert_eq!(rep.serializable, Some(true), "and the history audits");
    }

    #[test]
    fn corrupt_trace_is_rejected() {
        let (x, y) = (ddlf_model::EntityId(0), ddlf_model::EntityId(1));
        let ops = [Op::lock(x), Op::lock(y), Op::unlock(x), Op::unlock(y)];
        let sys = pair(&ops, &ops);
        // Both transactions "lock x" back to back: the second is blocked,
        // so this is not a legal schedule.
        let steps = [
            GlobalNode::new(TxnId(0), NodeId(0)),
            GlobalNode::new(TxnId(1), NodeId(0)),
        ];
        let err = replay_schedule(&sys, &steps).unwrap_err();
        assert!(
            matches!(err, ReplayError::IllegalStep { index: 1, .. }),
            "{err}"
        );
    }
}
