//! Transaction templates and certify-then-run admission control.
//!
//! A *template* is one transaction shape of a [`TransactionSystem`]
//! together with the data effects its instances apply. Registering a
//! system runs the paper's certifier
//! ([`ddlf_core::certify_safe_and_deadlock_free`]) **once** and caches
//! the verdict:
//!
//! * **Certified** — instances execute under the `Nothing` policy: no
//!   deadlock detector, no lock-wait timeouts, no aborts. Theorems 3/4
//!   guarantee every interleaving commits and serializes.
//! * **Fallback** — instances execute under wait-die with bounded
//!   retries, the pragmatic scheme uncertified systems need.

use ddlf_core::{certify_safe_and_deadlock_free, CertifyOptions};
use ddlf_model::{EntityId, TransactionSystem, TxnId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A committed write against one entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    /// Add a signed delta to the integer payload (wrapping).
    Add(i64),
    /// Overwrite with an integer.
    Put(u64),
    /// Overwrite with bytes.
    PutBytes(Vec<u8>),
}

/// The data program of one template: every locked entity is read at
/// lock-grant time; entities listed here are also written (the write
/// becomes effective at unlock time, while the lock is still held).
#[derive(Debug, Clone, Default)]
pub struct Program {
    writes: HashMap<EntityId, WriteOp>,
}

impl Program {
    /// A read-only program.
    pub fn read_only() -> Self {
        Self::default()
    }

    /// A counter program: every entity the transaction accesses gets
    /// `Add(1)` — the default when no program is registered.
    pub fn counter(entities: &[EntityId]) -> Self {
        let mut p = Self::default();
        for &e in entities {
            p.writes.insert(e, WriteOp::Add(1));
        }
        p
    }

    /// Adds/overwrites a write for `entity`.
    pub fn write(mut self, entity: EntityId, op: WriteOp) -> Self {
        self.writes.insert(entity, op);
        self
    }

    /// A money-transfer program: `-amount` on `from`, `+amount` on `to`.
    pub fn transfer(from: EntityId, to: EntityId, amount: i64) -> Self {
        Self::default()
            .write(from, WriteOp::Add(-amount))
            .write(to, WriteOp::Add(amount))
    }

    /// The write for `entity`, if the program has one.
    pub fn write_for(&self, entity: EntityId) -> Option<&WriteOp> {
        self.writes.get(&entity)
    }

    /// Number of writes.
    pub fn write_count(&self) -> usize {
        self.writes.len()
    }
}

/// The cached admission verdict for a registered system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// The certifier proved the system safe and deadlock-free: run with
    /// no detector and no timeouts.
    Certified,
    /// Certification failed; run under wait-die. Carries the certifier's
    /// rejection, verbatim.
    Fallback {
        /// Why certification rejected the system.
        reason: String,
    },
}

impl AdmissionVerdict {
    /// Whether the no-detector path is admitted.
    pub fn is_certified(&self) -> bool {
        matches!(self, AdmissionVerdict::Certified)
    }
}

impl fmt::Display for AdmissionVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionVerdict::Certified => write!(f, "certified (no detector, no timeouts)"),
            AdmissionVerdict::Fallback { reason } => write!(f, "fallback to wait-die: {reason}"),
        }
    }
}

/// One registered template.
pub struct Template {
    /// The transaction shape within the registered system.
    pub txn: TxnId,
    /// Its data program.
    pub program: Program,
    /// Admission gate: at most one live instance of a template at a
    /// time, so the in-flight mix always embeds into the certified
    /// system (the paper's guarantees quantify over the *fixed* set of
    /// transactions).
    pub(crate) gate: Mutex<()>,
}

/// The template registry: a certified-or-not transaction system plus
/// per-template programs.
pub struct TemplateRegistry {
    sys: Arc<TransactionSystem>,
    verdict: AdmissionVerdict,
    templates: Vec<Template>,
}

impl TemplateRegistry {
    /// Registers `sys`: runs the certifier once, caches the verdict, and
    /// installs the default counter program for every template.
    pub fn register(sys: TransactionSystem) -> Self {
        Self::register_with(sys, CertifyOptions::default())
    }

    /// [`register`](Self::register) with explicit certifier options.
    pub fn register_with(sys: TransactionSystem, opts: CertifyOptions) -> Self {
        let verdict = match certify_safe_and_deadlock_free(&sys, opts) {
            Ok(_cert) => AdmissionVerdict::Certified,
            Err(v) => AdmissionVerdict::Fallback {
                reason: v.to_string(),
            },
        };
        let templates = sys
            .iter()
            .map(|(t, txn)| Template {
                txn: t,
                program: Program::counter(txn.entities()),
                gate: Mutex::new(()),
            })
            .collect();
        Self {
            sys: Arc::new(sys),
            verdict,
            templates,
        }
    }

    /// Replaces the program of template `t`.
    pub fn set_program(&mut self, t: TxnId, program: Program) {
        self.templates[t.index()].program = program;
    }

    /// The cached admission verdict.
    pub fn verdict(&self) -> &AdmissionVerdict {
        &self.verdict
    }

    /// The registered system.
    pub fn system(&self) -> &Arc<TransactionSystem> {
        &self.sys
    }

    /// The template for transaction `t`.
    pub fn template(&self, t: TxnId) -> &Template {
        &self.templates[t.index()]
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether no templates are registered.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddlf_model::{Database, Op, Transaction};

    fn two_phase_pair(same_order: bool) -> TransactionSystem {
        let db = Database::one_entity_per_site(2);
        let (x, y) = (EntityId(0), EntityId(1));
        let fwd = [Op::lock(x), Op::lock(y), Op::unlock(x), Op::unlock(y)];
        let rev = [Op::lock(y), Op::lock(x), Op::unlock(y), Op::unlock(x)];
        let t1 = Transaction::from_total_order("T1", &fwd, &db).unwrap();
        let t2 = Transaction::from_total_order("T2", if same_order { &fwd } else { &rev }, &db)
            .unwrap();
        TransactionSystem::new(db, vec![t1, t2]).unwrap()
    }

    #[test]
    fn ordered_pair_certifies() {
        let reg = TemplateRegistry::register(two_phase_pair(true));
        assert!(reg.verdict().is_certified());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn opposed_pair_falls_back_with_reason() {
        let reg = TemplateRegistry::register(two_phase_pair(false));
        let AdmissionVerdict::Fallback { reason } = reg.verdict() else {
            panic!("opposed lock orders must not certify");
        };
        assert!(!reason.is_empty());
    }

    #[test]
    fn default_program_counts_every_entity() {
        let reg = TemplateRegistry::register(two_phase_pair(true));
        let p = &reg.template(TxnId(0)).program;
        assert_eq!(p.write_count(), 2);
        assert_eq!(p.write_for(EntityId(0)), Some(&WriteOp::Add(1)));
    }

    #[test]
    fn transfer_program_shape() {
        let p = Program::transfer(EntityId(0), EntityId(1), 25);
        assert_eq!(p.write_for(EntityId(0)), Some(&WriteOp::Add(-25)));
        assert_eq!(p.write_for(EntityId(1)), Some(&WriteOp::Add(25)));
        assert_eq!(Program::read_only().write_count(), 0);
    }
}
