//! Transaction templates and certify-then-run admission control.
//!
//! A *template* is one transaction shape of a [`TransactionSystem`]
//! together with the data effects its instances apply. Registering a
//! system runs the paper's certifier **once** and caches the verdict,
//! together with an [`AdmissionPlan`]: how many concurrent instances of
//! each template — its certified *k-inflation* — may be in flight on the
//! no-detector path.
//!
//! * **Certified** — the admitted inflation of the system is safe and
//!   deadlock-free ([`ddlf_core::certify_inflated`]); instances execute
//!   under the `Nothing` policy: no deadlock detector, no lock-wait
//!   timeouts, no aborts. Theorems 3/4 (or Theorem 5 for a single
//!   template, which certifies *unbounded* copies) guarantee every
//!   interleaving commits and serializes.
//! * **CertifiedDeadlockFree** — the admitted inflation was exhaustively
//!   verified deadlock-free without being certified safe (the Fig. 6
//!   regime): same no-detector execution and zero aborts, but
//!   serializability is only established by the post-hoc `D(S)` audit.
//! * **Fallback** — certification failed even at `k = 1`; instances
//!   execute under wait-die with bounded retries, the pragmatic scheme
//!   uncertified systems need.
//!
//! When a *requested* inflation fails to certify, admission does not give
//! up: it floors the plan back to the certified base system (`k_t = 1`),
//! so the engine degrades to the old one-instance-per-template gate
//! instead of deadlocking or rejecting the workload.

use ddlf_core::{
    certify_inflated, certify_safe_and_deadlock_free, max_certified_inflation, InflateOptions,
    InflationCertificate, InflationViolation,
};
use ddlf_model::{EntityId, ModelError, TransactionSystem, TxnId};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// A committed write against one entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    /// Add a signed delta to the integer payload (wrapping).
    Add(i64),
    /// Overwrite with an integer.
    Put(u64),
    /// Overwrite with bytes.
    PutBytes(Vec<u8>),
}

/// The data program of one template: which locked entities are *read*
/// at lock-grant time and which are *written* (the write becomes
/// effective at unlock time, while the lock is still held).
///
/// An entity is read when it is listed via [`Program::read`] or when its
/// write is a [`WriteOp::Add`] (a delta reads the current value). An
/// entity that is locked but neither read nor written — a ticket/ledger
/// lock held purely for ordering — counts as **neither**, so the
/// [`crate::Report`] read/write totals reflect data movement, not lock
/// traffic. (Both executor paths share this accounting; the wait-die
/// path used to charge a read for every grant.)
#[derive(Debug, Clone, Default)]
pub struct Program {
    writes: HashMap<EntityId, WriteOp>,
    reads: HashSet<EntityId>,
}

impl Program {
    /// A read-only program.
    pub fn read_only() -> Self {
        Self::default()
    }

    /// A counter program: every entity the transaction accesses gets
    /// `Add(1)` — the default when no program is registered.
    pub fn counter(entities: &[EntityId]) -> Self {
        let mut p = Self::default();
        for &e in entities {
            p.writes.insert(e, WriteOp::Add(1));
        }
        p
    }

    /// Adds/overwrites a write for `entity`.
    pub fn write(mut self, entity: EntityId, op: WriteOp) -> Self {
        self.writes.insert(entity, op);
        self
    }

    /// Declares that the program reads `entity` at lock-grant time
    /// (entities with an [`WriteOp::Add`] write are read implicitly).
    pub fn read(mut self, entity: EntityId) -> Self {
        self.reads.insert(entity);
        self
    }

    /// Whether the program reads `entity` when its lock is granted.
    pub fn reads_entity(&self, entity: EntityId) -> bool {
        self.reads.contains(&entity) || matches!(self.writes.get(&entity), Some(WriteOp::Add(_)))
    }

    /// A money-transfer program: `-amount` on `from`, `+amount` on `to`.
    pub fn transfer(from: EntityId, to: EntityId, amount: i64) -> Self {
        Self::default()
            .write(from, WriteOp::Add(-amount))
            .write(to, WriteOp::Add(amount))
    }

    /// The write for `entity`, if the program has one.
    pub fn write_for(&self, entity: EntityId) -> Option<&WriteOp> {
        self.writes.get(&entity)
    }

    /// Number of writes.
    pub fn write_count(&self) -> usize {
        self.writes.len()
    }

    /// Whether every write is a delta ([`WriteOp::Add`]). Deltas
    /// commute, so delta-only workloads are the class for which the
    /// multiversion chain state provably matches the live shard state
    /// at quiescence even when commit-timestamp order inverts the
    /// per-entity lock order — see the [`crate::mvcc`] module docs.
    pub fn is_delta_only(&self) -> bool {
        self.writes.values().all(|w| matches!(w, WriteOp::Add(_)))
    }
}

/// How many concurrent instances of a template an [`AdmissionPlan`]
/// allows in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slots {
    /// No limit — the Theorem 5 certificate covers any number of copies.
    Unbounded,
    /// At most this many live instances (≥ 1).
    Bounded(usize),
}

impl Slots {
    /// The bound as an `Option` (`None` = unbounded).
    pub fn limit(self) -> Option<usize> {
        match self {
            Slots::Unbounded => None,
            Slots::Bounded(k) => Some(k),
        }
    }
}

impl fmt::Display for Slots {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Slots::Unbounded => write!(f, "∞"),
            Slots::Bounded(k) => write!(f, "{k}"),
        }
    }
}

/// The requested inflation at registration time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Inflation {
    /// One instance per template — the conservative pre-inflation gate.
    #[default]
    None,
    /// The same `k` for every template.
    Uniform(usize),
    /// Search for the largest certified uniform `k ≤ cap`
    /// ([`ddlf_core::max_certified_inflation`]).
    Auto {
        /// Upper bound for the search (also the reported `k` when the
        /// Theorem 5 unbounded certificate applies).
        cap: usize,
    },
    /// An explicit per-template vector (one entry per template).
    PerTemplate(Vec<usize>),
}

/// Options for [`TemplateRegistry::register_with`]: the certifier knobs
/// plus the requested inflation.
#[derive(Debug, Clone, Default)]
pub struct AdmissionOptions {
    /// Requested concurrency per template.
    pub inflate: Inflation,
    /// Certifier options (Theorem 3/4 budget, DF-only search budget).
    pub opts: InflateOptions,
}

/// The certified admission plan: how many slots each template's
/// [`SlotGate`] holds, and why.
#[derive(Debug, Clone)]
pub struct AdmissionPlan {
    /// Per-template slot counts, template order.
    pub slots: Vec<Slots>,
    /// `true` when a requested inflation failed to certify and the plan
    /// fell back to the `k = 1` floor.
    pub floored: bool,
    /// Human-readable justification (the certificate, or the rejection
    /// that forced the floor).
    pub rationale: String,
}

impl AdmissionPlan {
    fn uniform(n: usize, slots: Slots, floored: bool, rationale: impl Into<String>) -> Self {
        Self {
            slots: vec![slots; n],
            floored,
            rationale: rationale.into(),
        }
    }

    /// The slot count for template `t`.
    ///
    /// # Panics
    /// Panics with a descriptive message when `t` is out of range.
    pub fn slots_of(&self, t: TxnId) -> Slots {
        match self.slots.get(t.index()) {
            Some(&s) => s,
            None => panic!(
                "admission plan covers {} templates, no entry for {t}",
                self.slots.len()
            ),
        }
    }

    /// A multi-line human rendering, one line per template.
    pub fn render(&self, sys: &TransactionSystem) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "admission plan{}: {}",
            if self.floored {
                " (floored to k=1)"
            } else {
                ""
            },
            self.rationale
        );
        for (t, txn) in sys.iter() {
            let _ = writeln!(out, "  {:<24} k = {}", txn.name(), self.slots_of(t));
        }
        out
    }
}

/// The cached admission verdict for a registered system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// The certifier proved the admitted inflation safe and
    /// deadlock-free: run with no detector and no timeouts.
    Certified,
    /// The admitted inflation is exhaustively deadlock-free but not
    /// certified safe (Fig. 6 regime): no-detector execution, with the
    /// `D(S)` audit as the serializability arbiter.
    CertifiedDeadlockFree,
    /// Certification failed even at `k = 1`; run under wait-die. Carries
    /// the certifier's rejection, verbatim.
    Fallback {
        /// Why certification rejected the system.
        reason: String,
    },
}

impl AdmissionVerdict {
    /// Whether the no-detector path is admitted.
    pub fn is_certified(&self) -> bool {
        !matches!(self, AdmissionVerdict::Fallback { .. })
    }

    /// Whether the verdict also guarantees every schedule serializes
    /// (not just deadlock-freedom).
    pub fn guarantees_safety(&self) -> bool {
        matches!(self, AdmissionVerdict::Certified)
    }
}

impl fmt::Display for AdmissionVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionVerdict::Certified => write!(f, "certified (no detector, no timeouts)"),
            AdmissionVerdict::CertifiedDeadlockFree => write!(
                f,
                "certified deadlock-free (no detector; serializability by audit)"
            ),
            AdmissionVerdict::Fallback { reason } => write!(f, "fallback to wait-die: {reason}"),
        }
    }
}

/// A counting admission gate: a semaphore over a template's certified
/// slots. Acquiring blocks (holding **no** data locks) until one of the
/// `k_t` slots frees; an [`Slots::Unbounded`] gate never blocks. The
/// gate also tracks the high-water mark of concurrent holders — the
/// achieved multiprogramming level the [`crate::Report`] publishes.
pub struct SlotGate {
    slots: Slots,
    state: Mutex<GateState>,
    freed: Condvar,
}

#[derive(Debug, Default)]
struct GateState {
    in_use: usize,
    peak: usize,
}

impl SlotGate {
    pub(crate) fn new(slots: Slots) -> Self {
        if let Slots::Bounded(k) = slots {
            assert!(k >= 1, "a bounded gate needs at least one slot");
        }
        Self {
            slots,
            state: Mutex::new_named("template.slot_gate", GateState::default()),
            freed: Condvar::new(),
        }
    }

    /// The certified slot count.
    pub fn slots(&self) -> Slots {
        self.slots
    }

    /// Blocks until a slot is free, then occupies it for the lifetime of
    /// the returned guard.
    pub fn acquire(&self) -> SlotGuard<'_> {
        self.grab(1)
    }

    /// The multi-slot acquisition backing batched admission: admits a
    /// chunk of `n` instances of this template under **one** gate
    /// operation. On an [`Slots::Unbounded`] gate all `n` slots are
    /// claimed (pure bookkeeping — the gate never blocks, and `in_use`/
    /// `peak` keep meaning "admitted instances"). On a [`Slots::Bounded`]
    /// gate exactly **one** slot is claimed, because a batched chunk
    /// executes its instances sequentially on one worker: at most one of
    /// the `n` is ever inside the template at a time, so one slot bounds
    /// the chunk's concurrent footprint exactly — claiming `n` would
    /// deadlock whenever `n > k`, and would starve other workers for no
    /// added safety. Dropping the guard frees everything it claimed.
    pub fn acquire_many(&self, n: usize) -> SlotGuard<'_> {
        let want = match self.slots {
            Slots::Unbounded => n.max(1),
            Slots::Bounded(_) => 1,
        };
        self.grab(want)
    }

    fn grab(&self, want: usize) -> SlotGuard<'_> {
        let mut st = self.state.lock();
        if let Slots::Bounded(k) = self.slots {
            while st.in_use + want > k {
                self.freed.wait(&mut st);
            }
        }
        st.in_use += want;
        st.peak = st.peak.max(st.in_use);
        SlotGuard {
            gate: self,
            count: want,
        }
    }

    /// Live holders right now.
    pub fn in_use(&self) -> usize {
        self.state.lock().in_use
    }

    /// High-water mark of concurrent holders since the last
    /// [`SlotGate::reset_peak`].
    pub fn peak(&self) -> usize {
        self.state.lock().peak
    }

    /// Resets the high-water mark (the executor does this per run).
    pub fn reset_peak(&self) {
        let mut st = self.state.lock();
        st.peak = st.in_use;
    }
}

/// Occupation of one or more admission slots (see
/// [`SlotGate::acquire_many`]); dropping it frees everything it claimed.
pub struct SlotGuard<'a> {
    gate: &'a SlotGate,
    count: usize,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.gate.state.lock();
        st.in_use -= self.count;
        drop(st);
        self.gate.freed.notify_one();
    }
}

/// One registered template.
pub struct Template {
    /// The transaction shape within the registered system.
    pub txn: TxnId,
    /// Its data program.
    pub program: Program,
    /// Admission gate: at most `k_t` live instances of the template at a
    /// time (its certified slot count), so the in-flight mix always
    /// embeds into the certified inflated system — the paper's
    /// guarantees quantify over that *fixed* set of transactions.
    pub(crate) gate: SlotGate,
}

impl Template {
    /// The template's admission gate (slots, live count, peak).
    pub fn gate(&self) -> &SlotGate {
        &self.gate
    }
}

/// The template registry: a certified-or-not transaction system, its
/// admission plan, and per-template programs.
pub struct TemplateRegistry {
    sys: Arc<TransactionSystem>,
    verdict: AdmissionVerdict,
    plan: AdmissionPlan,
    templates: Vec<Template>,
}

impl TemplateRegistry {
    /// Registers `sys` with the default options (no inflation): runs the
    /// certifier once, caches the verdict, and installs the default
    /// counter program for every template.
    pub fn register(sys: TransactionSystem) -> Self {
        Self::register_with(sys, AdmissionOptions::default())
    }

    /// [`register`](Self::register) with explicit certifier options and a
    /// requested inflation. The computed [`AdmissionPlan`] sizes every
    /// template's [`SlotGate`]; a requested inflation that fails to
    /// certify floors back to `k = 1` rather than rejecting the system.
    ///
    /// # Panics
    /// Panics with a descriptive message when the request itself is
    /// malformed — [`Inflation::Uniform`]`(0)`, or an
    /// [`Inflation::PerTemplate`] vector with a zero entry or the wrong
    /// arity. (Certification *failures* floor; caller bugs do not.)
    pub fn register_with(sys: TransactionSystem, admission: AdmissionOptions) -> Self {
        let (verdict, plan) = Self::certify(&sys, &admission);
        let templates = sys
            .iter()
            .map(|(t, txn)| Template {
                txn: t,
                program: Program::counter(txn.entities()),
                gate: SlotGate::new(plan.slots_of(t)),
            })
            .collect();
        Self {
            sys: Arc::new(sys),
            verdict,
            plan,
            templates,
        }
    }

    fn certify(
        sys: &TransactionSystem,
        admission: &AdmissionOptions,
    ) -> (AdmissionVerdict, AdmissionPlan) {
        let n = sys.len();
        let one = Slots::Bounded(1);
        // Resolve the request to a concrete vector (or run the search).
        let requested: Option<Vec<usize>> = match &admission.inflate {
            Inflation::None => None,
            Inflation::Uniform(k) => Some(vec![*k; n]),
            Inflation::PerTemplate(v) => Some(v.clone()),
            Inflation::Auto { cap } => {
                return match max_certified_inflation(sys, admission.opts, *cap) {
                    Ok(max) => {
                        let slots = if max.unbounded {
                            Slots::Unbounded
                        } else {
                            Slots::Bounded(max.k)
                        };
                        (
                            Self::verdict_of(&max.certificate),
                            AdmissionPlan::uniform(
                                n,
                                slots,
                                false,
                                format!("auto search: {}", max.certificate),
                            ),
                        )
                    }
                    // Even the base system failed to certify: like the
                    // explicit-k path, the granted plan (k = 1,
                    // wait-die) is a floor of what was asked for.
                    Err(v) => (
                        AdmissionVerdict::Fallback {
                            reason: v.to_string(),
                        },
                        AdmissionPlan::uniform(n, one, true, v.to_string()),
                    ),
                };
            }
        };
        let Some(k) = requested else {
            // No inflation requested: certify the base system as-is.
            return match certify_safe_and_deadlock_free(sys, admission.opts.certify) {
                Ok(_) => (
                    AdmissionVerdict::Certified,
                    AdmissionPlan::uniform(n, one, false, "base system certified (k = 1)"),
                ),
                Err(v) => (
                    AdmissionVerdict::Fallback {
                        reason: v.to_string(),
                    },
                    AdmissionPlan::uniform(n, one, false, v.to_string()),
                ),
            };
        };
        match certify_inflated(sys, &k, admission.opts) {
            Ok(cert) => {
                // An explicit request is a *ceiling*, even when the
                // Theorem 5 certificate would allow more: ∞ slots are
                // only granted when the caller asked us to search
                // (`Inflation::Auto`).
                let slots: Vec<Slots> = k.iter().map(|&kt| Slots::Bounded(kt)).collect();
                let rationale = if cert.is_unbounded() {
                    format!("{cert}; granting the requested ceiling")
                } else {
                    cert.to_string()
                };
                (
                    Self::verdict_of(&cert),
                    AdmissionPlan {
                        slots,
                        floored: false,
                        rationale,
                    },
                )
            }
            // A malformed request (zero copies, wrong arity) is a caller
            // bug, not a certification failure — surface it instead of
            // silently degrading concurrency.
            Err(InflationViolation::Model(e)) => {
                panic!("malformed inflation request {:?}: {e}", admission.inflate)
            }
            // The requested inflation is inadmissible: floor to k = 1,
            // re-certified exactly as an explicit k = 1 request would be
            // (DF-only fallback included), so the engine degrades
            // instead of deadlocking — and degrades to the same path a
            // smaller request would get.
            Err(rejection) => match certify_inflated(sys, &vec![1; n], admission.opts) {
                Ok(cert) => (
                    Self::verdict_of(&cert),
                    AdmissionPlan::uniform(
                        n,
                        one,
                        true,
                        format!("{rejection}; floored to k = 1 ({cert})"),
                    ),
                ),
                Err(v) => (
                    AdmissionVerdict::Fallback {
                        reason: v.to_string(),
                    },
                    AdmissionPlan::uniform(n, one, true, format!("{rejection}; base: {v}")),
                ),
            },
        }
    }

    fn verdict_of(cert: &InflationCertificate) -> AdmissionVerdict {
        if cert.guarantees_safety() {
            AdmissionVerdict::Certified
        } else {
            AdmissionVerdict::CertifiedDeadlockFree
        }
    }

    /// Replaces the program of template `t`.
    ///
    /// Errors with [`ModelError::UnknownTxn`] when `t` does not name a
    /// registered template.
    pub fn set_program(&mut self, t: TxnId, program: Program) -> Result<(), ModelError> {
        match self.templates.get_mut(t.index()) {
            Some(tmpl) => {
                tmpl.program = program;
                Ok(())
            }
            None => Err(ModelError::UnknownTxn(t)),
        }
    }

    /// The cached admission verdict.
    pub fn verdict(&self) -> &AdmissionVerdict {
        &self.verdict
    }

    /// The certified admission plan (slot counts per template).
    pub fn plan(&self) -> &AdmissionPlan {
        &self.plan
    }

    /// The registered system.
    pub fn system(&self) -> &Arc<TransactionSystem> {
        &self.sys
    }

    /// The template for transaction `t`.
    ///
    /// # Panics
    /// Panics with a descriptive message when `t` does not name a
    /// registered template (use [`TemplateRegistry::get`] for a fallible
    /// lookup).
    pub fn template(&self, t: TxnId) -> &Template {
        match self.templates.get(t.index()) {
            Some(tmpl) => tmpl,
            None => panic!(
                "no template registered for {t}: the registry holds {} templates",
                self.templates.len()
            ),
        }
    }

    /// The template for transaction `t`, or `None` when out of range.
    pub fn get(&self, t: TxnId) -> Option<&Template> {
        self.templates.get(t.index())
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether no templates are registered.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddlf_model::{Database, Op, Transaction};

    fn two_phase_pair(same_order: bool) -> TransactionSystem {
        let db = Database::one_entity_per_site(2);
        let (x, y) = (EntityId(0), EntityId(1));
        let fwd = [Op::lock(x), Op::lock(y), Op::unlock(x), Op::unlock(y)];
        let rev = [Op::lock(y), Op::lock(x), Op::unlock(y), Op::unlock(x)];
        let t1 = Transaction::from_total_order("T1", &fwd, &db).unwrap();
        let t2 =
            Transaction::from_total_order("T2", if same_order { &fwd } else { &rev }, &db).unwrap();
        TransactionSystem::new(db, vec![t1, t2]).unwrap()
    }

    fn strict_pair() -> TransactionSystem {
        let db = Database::one_entity_per_site(2);
        let ops = [
            Op::lock(EntityId(0)),
            Op::lock(EntityId(1)),
            Op::unlock(EntityId(1)),
            Op::unlock(EntityId(0)),
        ];
        let t1 = Transaction::from_total_order("T1", &ops, &db).unwrap();
        let t2 = Transaction::from_total_order("T2", &ops, &db).unwrap();
        TransactionSystem::new(db, vec![t1, t2]).unwrap()
    }

    #[test]
    fn ordered_pair_certifies() {
        let reg = TemplateRegistry::register(two_phase_pair(true));
        assert!(reg.verdict().is_certified());
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.plan().slots_of(TxnId(0)), Slots::Bounded(1));
    }

    #[test]
    fn opposed_pair_falls_back_with_reason() {
        let reg = TemplateRegistry::register(two_phase_pair(false));
        let AdmissionVerdict::Fallback { reason } = reg.verdict() else {
            panic!("opposed lock orders must not certify");
        };
        assert!(!reason.is_empty());
    }

    #[test]
    fn uniform_inflation_certifies_strict_pair() {
        let reg = TemplateRegistry::register_with(
            strict_pair(),
            AdmissionOptions {
                inflate: Inflation::Uniform(4),
                ..Default::default()
            },
        );
        assert!(reg.verdict().guarantees_safety(), "{}", reg.verdict());
        assert_eq!(reg.plan().slots_of(TxnId(0)), Slots::Bounded(4));
        assert_eq!(reg.plan().slots_of(TxnId(1)), Slots::Bounded(4));
        assert!(!reg.plan().floored);
        let rendered = reg.plan().render(reg.system());
        assert!(rendered.contains("k = 4"), "{rendered}");
    }

    #[test]
    fn failed_inflation_floors_to_one() {
        // The opposed pair cannot certify at any k, but the request must
        // degrade to the wait-die fallback at k = 1, not reject.
        let reg = TemplateRegistry::register_with(
            two_phase_pair(false),
            AdmissionOptions {
                inflate: Inflation::Uniform(4),
                opts: InflateOptions {
                    explore_states: 50_000,
                    ..Default::default()
                },
            },
        );
        assert!(!reg.verdict().is_certified());
        assert!(reg.plan().floored);
        assert_eq!(reg.plan().slots_of(TxnId(1)), Slots::Bounded(1));
    }

    #[test]
    fn auto_inflation_is_unbounded_for_single_rooted_template() {
        let db = Database::one_entity_per_site(2);
        let ops = [
            Op::lock(EntityId(0)),
            Op::lock(EntityId(1)),
            Op::unlock(EntityId(1)),
            Op::unlock(EntityId(0)),
        ];
        let t = Transaction::from_total_order("T", &ops, &db).unwrap();
        let sys = TransactionSystem::new(db, vec![t]).unwrap();
        let reg = TemplateRegistry::register_with(
            sys,
            AdmissionOptions {
                inflate: Inflation::Auto { cap: 64 },
                ..Default::default()
            },
        );
        assert!(reg.verdict().guarantees_safety());
        assert_eq!(reg.plan().slots_of(TxnId(0)), Slots::Unbounded);
    }

    #[test]
    fn auto_on_uncertifiable_system_is_a_floored_fallback() {
        let reg = TemplateRegistry::register_with(
            two_phase_pair(false),
            AdmissionOptions {
                inflate: Inflation::Auto { cap: 4 },
                opts: InflateOptions {
                    explore_states: 50_000,
                    ..Default::default()
                },
            },
        );
        assert!(!reg.verdict().is_certified());
        // Same flag as the equivalent explicit-k request.
        assert!(reg.plan().floored);
        assert_eq!(reg.plan().slots_of(TxnId(0)), Slots::Bounded(1));
    }

    #[test]
    #[should_panic(expected = "malformed inflation request")]
    fn zero_uniform_inflation_panics() {
        let _ = TemplateRegistry::register_with(
            two_phase_pair(true),
            AdmissionOptions {
                inflate: Inflation::Uniform(0),
                ..Default::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "malformed inflation request")]
    fn wrong_arity_per_template_vector_panics() {
        let _ = TemplateRegistry::register_with(
            two_phase_pair(true),
            AdmissionOptions {
                inflate: Inflation::PerTemplate(vec![4]),
                ..Default::default()
            },
        );
    }

    #[test]
    fn slot_gate_counts_and_peaks() {
        let gate = SlotGate::new(Slots::Bounded(2));
        let a = gate.acquire();
        let b = gate.acquire();
        assert_eq!(gate.in_use(), 2);
        assert_eq!(gate.peak(), 2);
        drop(a);
        assert_eq!(gate.in_use(), 1);
        drop(b);
        assert_eq!(gate.in_use(), 0);
        assert_eq!(gate.peak(), 2, "peak survives releases");
        gate.reset_peak();
        assert_eq!(gate.peak(), 0);
    }

    #[test]
    fn slot_gate_blocks_at_capacity() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let gate = SlotGate::new(Slots::Bounded(1));
        let running = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _slot = gate.acquire();
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    running.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(peak.load(Ordering::SeqCst), 1, "gate must serialize");
        assert_eq!(gate.peak(), 1);
    }

    #[test]
    fn acquire_many_claims_n_unbounded_but_one_bounded_slot() {
        let unbounded = SlotGate::new(Slots::Unbounded);
        let g = unbounded.acquire_many(5);
        assert_eq!(unbounded.in_use(), 5);
        assert_eq!(unbounded.peak(), 5);
        drop(g);
        assert_eq!(unbounded.in_use(), 0, "the guard frees all its slots");

        // A bounded gate admits a sequential chunk under one slot: a
        // chunk of 5 must not deadlock on (or monopolize) a k=2 gate.
        let bounded = SlotGate::new(Slots::Bounded(2));
        let a = bounded.acquire_many(5);
        let b = bounded.acquire_many(3);
        assert_eq!(bounded.in_use(), 2);
        drop(a);
        drop(b);
        assert_eq!(bounded.in_use(), 0);
        // Degenerate chunk sizes still claim one slot.
        let g = bounded.acquire_many(0);
        assert_eq!(bounded.in_use(), 1);
        drop(g);
    }

    #[test]
    fn unbounded_gate_never_blocks() {
        let gate = SlotGate::new(Slots::Unbounded);
        let guards: Vec<_> = (0..16).map(|_| gate.acquire()).collect();
        assert_eq!(gate.in_use(), 16);
        assert_eq!(gate.peak(), 16);
        drop(guards);
        assert_eq!(gate.in_use(), 0);
    }

    #[test]
    fn set_program_rejects_unknown_template() {
        let mut reg = TemplateRegistry::register(two_phase_pair(true));
        assert!(reg.set_program(TxnId(0), Program::read_only()).is_ok());
        assert_eq!(
            reg.set_program(TxnId(9), Program::read_only()),
            Err(ModelError::UnknownTxn(TxnId(9)))
        );
        assert!(reg.get(TxnId(9)).is_none());
    }

    #[test]
    #[should_panic(expected = "no template registered for T9")]
    fn template_lookup_panics_descriptively() {
        let reg = TemplateRegistry::register(two_phase_pair(true));
        let _ = reg.template(TxnId(9));
    }

    #[test]
    fn default_program_counts_every_entity() {
        let reg = TemplateRegistry::register(two_phase_pair(true));
        let p = &reg.template(TxnId(0)).program;
        assert_eq!(p.write_count(), 2);
        assert_eq!(p.write_for(EntityId(0)), Some(&WriteOp::Add(1)));
    }

    #[test]
    fn transfer_program_shape() {
        let p = Program::transfer(EntityId(0), EntityId(1), 25);
        assert_eq!(p.write_for(EntityId(0)), Some(&WriteOp::Add(-25)));
        assert_eq!(p.write_for(EntityId(1)), Some(&WriteOp::Add(25)));
        assert_eq!(Program::read_only().write_count(), 0);
    }

    #[test]
    fn reads_are_declared_or_implied_by_deltas_never_by_locks_alone() {
        let (acct, ledger, blind) = (EntityId(0), EntityId(1), EntityId(2));
        let p = Program::default()
            .write(acct, WriteOp::Add(-5)) // delta ⇒ implicit read
            .write(blind, WriteOp::Put(9)) // blind overwrite ⇒ no read
            .read(ledger); // explicit read, no write
        assert!(p.reads_entity(acct));
        assert!(p.reads_entity(ledger));
        assert!(!p.reads_entity(blind));
        // A lock-only ticket entity is neither read nor written.
        assert!(!p.reads_entity(EntityId(3)));
        assert!(p.write_for(EntityId(3)).is_none());
    }
}
