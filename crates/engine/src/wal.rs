//! Per-shard value/undo logging with write-ahead durability and
//! crash-recovery replay through the `D(S)` audit.
//!
//! Two jobs share one record stream:
//!
//! 1. **Undo** — the wait-die fallback can kill an attempt *after* its
//!    first unlock has exposed a write (the paper's non-two-phase
//!    regime). Each shard keeps the before-image of every write an
//!    in-flight attempt applies, so [`crate::Engine`]'s abort path can
//!    roll the attempt back instead of leaving a dirty write behind —
//!    which is what used to void the serializability audit.
//! 2. **Redo** — with a file sink attached, every record is appended to
//!    disk *before* the in-memory store mutates, so a crashed process
//!    can be replayed: committed operations are re-applied to a fresh
//!    store and the recovered lock/unlock history is re-audited with the
//!    model's `D(S)` test — streamed through the incremental
//!    [`StreamingAuditor`], so recovery stays linear in log size.
//!    Commit is a **durable decision** (Gray & Lamport, *Consensus on
//!    Transaction Commit*): an instance is recovered if and only if its
//!    `Commit` record reached the decision log, never because its data
//!    writes happen to be present.
//!
//! ## On-disk layout
//!
//! (The canonical copy of this grammar — alongside the shared
//! [`ddlf_sim::msg::frame`] framing and [`ddlf_sim::msg::codec`]
//! conventions it builds on — lives in `ARCHITECTURE.md` at the
//! repository root; this rustdoc mirrors it for in-code readers.)
//!
//! A WAL directory holds one log file per shard plus two shared logs and
//! a metadata file:
//!
//! ```text
//!   wal/
//!     meta.json      the registered SystemSpec + initial entity value
//!     commit.wal     Begin / Commit / Abort — the durable decision log
//!     history.wal    Event — the lock/unlock stream the D(S) audit replays
//!     shard-<k>.wal  Write / Undo — the value log of shard k, apply order
//! ```
//!
//! Every `.wal` file is a sequence of length-prefixed frames in the
//! [`ddlf_sim::msg::frame`] codec (u32 LE length + payload); each payload
//! is one binary [`WalRecord`]:
//!
//! ```text
//!   Begin       := 0x01 gid:u32 template:u32 attempt:u32
//!   Write       := 0x02 gid:u32 attempt:u32 entity:u32 op:WriteOp before:VV after:VV
//!   Undo        := 0x03 gid:u32 entity:u32 restored:VV
//!   Commit      := 0x04 gid:u32 template:u32 attempt:u32 commit_ts:u64
//!   Abort       := 0x05 gid:u32 attempt:u32
//!   Event       := 0x06 time:u64 gid:u32 attempt:u32 node:u32
//!   CommitGroup := 0x07 count:u32 (gid:u32 template:u32 attempt:u32 commit_ts:u64)*count
//!
//!   WriteOp := 0x00 delta:i64(LE)  |  0x01 value:u64  |  0x02 len:u32 bytes
//!   Datum   := 0x00 value:u64      |  0x01 len:u32 bytes
//!   VV      := version:u64 Datum                      (all integers LE)
//! ```
//!
//! A `CommitGroup` is the group committer's decision record: the durable
//! commit of every entry in one frame. Because it is *one* frame, a torn
//! tail can only drop the group whole — recovery never replays a partial
//! group.
//!
//! `gid` is a **globally unique instance id** within the WAL directory:
//! each engine run reserves `base..base + instances` above every id seen
//! so far, so histories of successive runs concatenate without instance
//! collisions and one audit covers them all.
//!
//! ## Durability model
//!
//! Records are framed into per-log user-space buffers (`LogWriter`,
//! one buffered write replacing one `write(2)` per record) under an
//! explicit **flush-before-decision contract**: before a `Commit` or
//! `CommitGroup` frame reaches the kernel, every shard value buffer and
//! the history buffer are flushed first. A commit record visible in the
//! page cache therefore still implies its `Write`/`Event` records are
//! visible too, so replay stays correct against process death
//! (`SIGKILL` — the page cache survives), which is what the CI
//! crash-recovery smoke exercises. Surviving *power loss* additionally
//! needs [`WalOptions::sync`], which fsyncs the shard value logs and the
//! history log **before** appending and fsyncing the commit record — so
//! a durable `Commit` implies its `Write`/`Event` records are durable
//! too, never the reverse.
//!
//! Under [`WalOptions::group_commit`] the per-commit fsync is amortized
//! by a leader/follower **group committer**: a committing worker
//! enqueues its decision and parks; the first enqueuer becomes leader,
//! drains the queue, performs one data-log flush (+fsync under `sync`),
//! appends the whole batch as one `CommitGroup` frame, issues **one**
//! decision fsync for the group, then wakes every follower. The
//! fsync-ordering invariant above is preserved per *group* instead of
//! per commit.

use crate::store::{Store, WriteError};
use crate::template::WriteOp;
use crate::{Datum, VersionedValue};
use bytes::{BufMut, Bytes, BytesMut};
use ddlf_lockdep::{blocking_region, BlockingKind};
use ddlf_model::incremental::StreamingAuditor;
use ddlf_model::{EntityId, NodeId, SystemSpec, TransactionSystem, TxnId};
use ddlf_sim::msg::{codec, frame};
use ddlf_sim::HistoryEvent;
use ddlf_telemetry::{Phase, Telemetry};
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// One log record. See the module docs for the binary layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// An attempt of instance `gid` started executing.
    Begin {
        /// Global instance id.
        gid: u32,
        /// Template index within the registered system.
        template: u32,
        /// Attempt number (wait-die retries bump it).
        attempt: u32,
    },
    /// A write was applied to `entity` (logged *before* the in-memory
    /// apply).
    Write {
        /// Global instance id.
        gid: u32,
        /// Attempt that performed the write.
        attempt: u32,
        /// Written entity.
        entity: EntityId,
        /// The operation — recovery replays the *operation*, not the
        /// after-image, so interleaved rolled-back writes of other
        /// instances cannot corrupt the replay.
        op: WriteOp,
        /// Value before the write (the undo image).
        before: VersionedValue,
        /// Value after the write.
        after: VersionedValue,
    },
    /// An exposed write of a dying attempt was rolled back.
    Undo {
        /// Global instance id.
        gid: u32,
        /// Entity restored.
        entity: EntityId,
        /// The value the rollback installed.
        restored: VersionedValue,
    },
    /// The durable commit decision for instance `gid`.
    Commit {
        /// Global instance id.
        gid: u32,
        /// Template index within the registered system.
        template: u32,
        /// The committing attempt.
        attempt: u32,
        /// The commit timestamp allocated before durability: recovery
        /// rebuilds the multiversion chains in `commit_ts` order, so
        /// file order need not equal commit order.
        commit_ts: u64,
    },
    /// The attempt died (wait-die victim); its writes were undone.
    Abort {
        /// Global instance id.
        gid: u32,
        /// The dying attempt.
        attempt: u32,
    },
    /// One lock/unlock history event (the `D(S)` audit's input).
    Event {
        /// Logical timestamp within the run.
        time: u64,
        /// Global instance id.
        gid: u32,
        /// Attempt the event belongs to.
        attempt: u32,
        /// Operation node within the template.
        node: NodeId,
    },
    /// The durable commit decision for a whole commit group, written as
    /// one frame by the group-commit leader. Equivalent to one
    /// [`WalRecord::Commit`] per entry; being a single frame, a torn
    /// tail drops the group whole — never a partial group.
    CommitGroup {
        /// The committed instances, queue order.
        entries: Vec<GroupEntry>,
    },
}

/// One committed instance inside a [`WalRecord::CommitGroup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupEntry {
    /// Global instance id.
    pub gid: u32,
    /// Template index within the registered system.
    pub template: u32,
    /// The committing attempt.
    pub attempt: u32,
    /// The commit timestamp allocated before durability (see
    /// [`WalRecord::Commit::commit_ts`]).
    pub commit_ts: u64,
}

const TAG_BEGIN: u8 = 1;
const TAG_WRITE: u8 = 2;
const TAG_UNDO: u8 = 3;
const TAG_COMMIT: u8 = 4;
const TAG_ABORT: u8 = 5;
const TAG_EVENT: u8 = 6;
const TAG_COMMIT_GROUP: u8 = 7;

const OP_ADD: u8 = 0;
const OP_PUT: u8 = 1;
const OP_PUT_BYTES: u8 = 2;

const DATUM_INT: u8 = 0;
const DATUM_BYTES: u8 = 1;

fn put_datum(b: &mut BytesMut, d: &Datum) {
    match d {
        Datum::Int(v) => {
            b.put_u8(DATUM_INT);
            b.put_u64_le(*v);
        }
        Datum::Bytes(bytes) => {
            b.put_u8(DATUM_BYTES);
            codec::put_bytes(b, bytes);
        }
    }
}

fn get_datum(buf: &mut Bytes) -> Option<Datum> {
    match codec::get_u8(buf)? {
        DATUM_INT => Some(Datum::Int(codec::get_u64(buf)?)),
        DATUM_BYTES => Some(Datum::Bytes(codec::get_bytes(buf)?)),
        _ => None,
    }
}

fn put_versioned(b: &mut BytesMut, v: &VersionedValue) {
    b.put_u64_le(v.version);
    put_datum(b, &v.datum);
}

fn get_versioned(buf: &mut Bytes) -> Option<VersionedValue> {
    Some(VersionedValue {
        version: codec::get_u64(buf)?,
        datum: get_datum(buf)?,
    })
}

fn put_op(b: &mut BytesMut, op: &WriteOp) {
    match op {
        WriteOp::Add(delta) => {
            b.put_u8(OP_ADD);
            b.put_u64_le(*delta as u64);
        }
        WriteOp::Put(v) => {
            b.put_u8(OP_PUT);
            b.put_u64_le(*v);
        }
        WriteOp::PutBytes(bytes) => {
            b.put_u8(OP_PUT_BYTES);
            codec::put_bytes(b, bytes);
        }
    }
}

fn get_op(buf: &mut Bytes) -> Option<WriteOp> {
    match codec::get_u8(buf)? {
        OP_ADD => Some(WriteOp::Add(codec::get_u64(buf)? as i64)),
        OP_PUT => Some(WriteOp::Put(codec::get_u64(buf)?)),
        OP_PUT_BYTES => Some(WriteOp::PutBytes(codec::get_bytes(buf)?)),
        _ => None,
    }
}

impl WalRecord {
    /// Encodes to the binary record format (see module docs).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(32);
        match self {
            WalRecord::Begin {
                gid,
                template,
                attempt,
            } => {
                b.put_u8(TAG_BEGIN);
                b.put_u32_le(*gid);
                b.put_u32_le(*template);
                b.put_u32_le(*attempt);
            }
            WalRecord::Write {
                gid,
                attempt,
                entity,
                op,
                before,
                after,
            } => {
                b.put_u8(TAG_WRITE);
                b.put_u32_le(*gid);
                b.put_u32_le(*attempt);
                b.put_u32_le(entity.0);
                put_op(&mut b, op);
                put_versioned(&mut b, before);
                put_versioned(&mut b, after);
            }
            WalRecord::Undo {
                gid,
                entity,
                restored,
            } => {
                b.put_u8(TAG_UNDO);
                b.put_u32_le(*gid);
                b.put_u32_le(entity.0);
                put_versioned(&mut b, restored);
            }
            WalRecord::Commit {
                gid,
                template,
                attempt,
                commit_ts,
            } => {
                b.put_u8(TAG_COMMIT);
                b.put_u32_le(*gid);
                b.put_u32_le(*template);
                b.put_u32_le(*attempt);
                b.put_u64_le(*commit_ts);
            }
            WalRecord::Abort { gid, attempt } => {
                b.put_u8(TAG_ABORT);
                b.put_u32_le(*gid);
                b.put_u32_le(*attempt);
            }
            WalRecord::Event {
                time,
                gid,
                attempt,
                node,
            } => {
                b.put_u8(TAG_EVENT);
                b.put_u64_le(*time);
                b.put_u32_le(*gid);
                b.put_u32_le(*attempt);
                b.put_u32_le(node.0);
            }
            WalRecord::CommitGroup { entries } => {
                b.put_u8(TAG_COMMIT_GROUP);
                b.put_u32_le(u32::try_from(entries.len()).expect("group fits a frame"));
                for e in entries {
                    b.put_u32_le(e.gid);
                    b.put_u32_le(e.template);
                    b.put_u32_le(e.attempt);
                    b.put_u64_le(e.commit_ts);
                }
            }
        }
        b.freeze()
    }

    /// Decodes one record; `None` on malformed input.
    pub fn decode(mut buf: Bytes) -> Option<WalRecord> {
        let rec = match codec::get_u8(&mut buf)? {
            TAG_BEGIN => WalRecord::Begin {
                gid: codec::get_u32(&mut buf)?,
                template: codec::get_u32(&mut buf)?,
                attempt: codec::get_u32(&mut buf)?,
            },
            TAG_WRITE => WalRecord::Write {
                gid: codec::get_u32(&mut buf)?,
                attempt: codec::get_u32(&mut buf)?,
                entity: EntityId(codec::get_u32(&mut buf)?),
                op: get_op(&mut buf)?,
                before: get_versioned(&mut buf)?,
                after: get_versioned(&mut buf)?,
            },
            TAG_UNDO => WalRecord::Undo {
                gid: codec::get_u32(&mut buf)?,
                entity: EntityId(codec::get_u32(&mut buf)?),
                restored: get_versioned(&mut buf)?,
            },
            TAG_COMMIT => WalRecord::Commit {
                gid: codec::get_u32(&mut buf)?,
                template: codec::get_u32(&mut buf)?,
                attempt: codec::get_u32(&mut buf)?,
                commit_ts: codec::get_u64(&mut buf)?,
            },
            TAG_ABORT => WalRecord::Abort {
                gid: codec::get_u32(&mut buf)?,
                attempt: codec::get_u32(&mut buf)?,
            },
            TAG_EVENT => WalRecord::Event {
                time: codec::get_u64(&mut buf)?,
                gid: codec::get_u32(&mut buf)?,
                attempt: codec::get_u32(&mut buf)?,
                node: NodeId(codec::get_u32(&mut buf)?),
            },
            TAG_COMMIT_GROUP => {
                let n = codec::get_u32(&mut buf)? as usize;
                // Each entry is exactly 20 bytes; bounding up front keeps
                // a hostile count from pre-allocating unboundedly.
                if buf.len() < n.checked_mul(20)? {
                    return None;
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push(GroupEntry {
                        gid: codec::get_u32(&mut buf)?,
                        template: codec::get_u32(&mut buf)?,
                        attempt: codec::get_u32(&mut buf)?,
                        commit_ts: codec::get_u64(&mut buf)?,
                    });
                }
                WalRecord::CommitGroup { entries }
            }
            _ => return None,
        };
        codec::finished(&buf, rec)
    }
}

/// WAL tuning.
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Power-loss durability: on every commit, `fsync` the shard value
    /// logs and the history log, *then* append and `fsync` the commit
    /// record — the decision only becomes durable after the writes it
    /// decides over. Off by default: the flush-before-decision contract
    /// already survives process death, and the crash model the tests
    /// exercise is `SIGKILL`, not power loss.
    pub sync: bool,
    /// Group commit: `Some(max_group)` parks committing workers on a
    /// shared queue and lets a leader append up to `max_group` decisions
    /// as one [`WalRecord::CommitGroup`] frame with a single data-log
    /// flush and a single decision fsync for the whole group. `None`
    /// (the default) keeps one decision record and fsync per commit.
    pub group_commit: Option<usize>,
    /// User-space buffer capacity per log file, in bytes. Frames
    /// accumulate in the buffer and reach the kernel in one `write(2)`
    /// when it fills, when a commit flushes (decisions always flush data
    /// buffers first), or at the end-of-run `Wal::flush_all`. `0` =
    /// write-through,
    /// one `write(2)` per record (the pre-buffering behavior).
    pub buffer: usize,
    /// Observability handle: appends record into the `wal_append`
    /// histogram and the WAL byte gauge, fsyncs into `fsync`, group
    /// flushes into the group-size histogram. The default disabled
    /// handle costs one branch per append.
    pub telemetry: Telemetry,
}

/// Default buffer capacity per log file (64 KiB).
pub const DEFAULT_WAL_BUFFER: usize = 64 << 10;

/// Default `max_group` when group commit is requested without a size.
pub const DEFAULT_MAX_GROUP: usize = 64;

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            sync: false,
            group_commit: None,
            buffer: DEFAULT_WAL_BUFFER,
            telemetry: Telemetry::default(),
        }
    }
}

/// The metadata file a WAL directory starts with: enough to rebuild the
/// registered system and the store's initial state at recovery.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct WalMeta {
    spec: SystemSpec,
    initial_value: u64,
}

const META_FILE: &str = "meta.json";
const COMMIT_FILE: &str = "commit.wal";
const HISTORY_FILE: &str = "history.wal";

fn shard_file(k: usize) -> String {
    format!("shard-{k}.wal")
}

/// A buffered framed appender over one log file: frames accumulate in a
/// user-space `Vec` and reach the kernel in one `write(2)` when the
/// buffer crosses `cap` or on an explicit [`LogWriter::flush`]. With
/// `cap == 0` every frame is written through immediately (the
/// pre-buffering behavior, kept as the equivalence baseline).
///
/// The flush contract callers must uphold: a decision record (`Commit` /
/// `CommitGroup`) may only be *flushed* after every data buffer (shard
/// value logs, history log) it decides over has been flushed — the
/// page-cache ordering replay correctness depends on.
pub(crate) struct LogWriter {
    file: File,
    buf: Vec<u8>,
    cap: usize,
}

impl LogWriter {
    fn new(file: File, cap: usize) -> Self {
        LogWriter {
            file,
            buf: Vec::with_capacity(cap.min(1 << 20)),
            cap,
        }
    }

    /// Appends one frame (buffered, or straight through when `cap == 0`).
    fn append_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        if self.cap == 0 {
            let _io = blocking_region(BlockingKind::Write);
            return frame::write_frame(&mut self.file, payload);
        }
        // Framing into a Vec cannot fail and its `flush` is a no-op; the
        // kernel write happens below, at most once per cap's worth.
        frame::write_frame(&mut self.buf, payload)?;
        if self.buf.len() >= self.cap {
            self.flush()?;
        }
        Ok(())
    }

    /// Writes any buffered frames to the kernel.
    fn flush(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            // Only Write-allowlisted lock classes may be held here
            // (lockdep blocking-section verifier).
            let _io = blocking_region(BlockingKind::Write);
            self.file.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Flushes, then fsyncs the file.
    fn sync_data(&mut self) -> io::Result<()> {
        self.flush()?;
        // Durability wait: only the wal.* writer classes (and the
        // serialized server.engine slot) may be held across this.
        let _io = blocking_region(BlockingKind::Fsync);
        self.file.sync_data()
    }
}

/// The group committer: a shared commit queue plus the leader/follower
/// handoff state. Protocol (see module docs): an enqueuer takes a
/// ticket; the first unserved enqueuer becomes leader, drains up to
/// `max_group` tickets FIFO, writes the group durable, then advances
/// `flushed_seq` past the drained tickets, steps down, and wakes
/// **every** waiter — unconditionally, so neither a full queue left
/// behind nor a failed fsync can strand a parked follower.
struct GroupCommitter {
    max_group: usize,
    state: Mutex<GroupState>,
    wakeup: Condvar,
}

#[derive(Default)]
struct GroupState {
    /// Pending decisions, ticket order; entry `i` holds ticket
    /// `flushed_seq + i`.
    queue: Vec<GroupEntry>,
    /// The next ticket to hand out.
    next_seq: u64,
    /// Tickets `< flushed_seq` have been written (or abandoned to a
    /// poisoned WAL — either way their committer must not wait).
    flushed_seq: u64,
    /// Whether a leader is currently writing a group.
    leader_active: bool,
}

/// A registered per-shard value-log writer plus its dirty flag (set on
/// append, cleared by a commit-time sync that covered it) — the `Wal`'s
/// view of a [`ShardSink`].
type ShardSinkEntry = (Arc<Mutex<LogWriter>>, Arc<AtomicBool>);

/// The file-backed sink of one engine: the shared decision and history
/// logs, plus the per-shard value logs the [`Store`] opens through
/// `Wal::open_shard_log`. Append failures poison the WAL (reported
/// once on stderr, then dropped) rather than panicking the hot path.
pub struct Wal {
    dir: PathBuf,
    commit: Mutex<LogWriter>,
    history: Mutex<LogWriter>,
    /// The per-shard value-log writers with their dirty flags,
    /// registered by [`Wal::open_shard_log`]. Every commit flushes these
    /// buffers before its decision record reaches the kernel; under
    /// [`WalOptions::sync`] the dirty flags additionally let the
    /// commit-time fsync skip shard logs with nothing new since the
    /// last sync.
    shard_sinks: Mutex<Vec<ShardSinkEntry>>,
    next_base: AtomicU32,
    sync: bool,
    buffer: usize,
    group: Option<GroupCommitter>,
    /// Group flushes performed (decision frames written by a leader).
    group_flushes: AtomicU64,
    /// Commit decisions written through the group path.
    group_records: AtomicU64,
    /// Test hook: fails the next decision fsync (see
    /// [`Wal::inject_fsync_failure`]).
    inject_fsync_fail: AtomicBool,
    failed: AtomicBool,
    telemetry: Telemetry,
}

/// A shard's handle on its value log: the shared buffered writer plus
/// the dirty flag [`Wal::sync_data_logs`] consults. The flag is set
/// *after* each append, so whichever committer clears it first is
/// guaranteed to have started its flush+fsync after the append.
pub(crate) struct ShardSink {
    writer: Arc<Mutex<LogWriter>>,
    dirty: Arc<AtomicBool>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("next_base", &self.next_base.load(Ordering::Relaxed))
            .field("failed", &self.failed.load(Ordering::Relaxed))
            .finish()
    }
}

fn append_mode(path: &Path) -> io::Result<File> {
    OpenOptions::new().create(true).append(true).open(path)
}

/// Builds the shared `Wal` state over an existing directory.
fn build_wal(dir: PathBuf, next_base: u32, opts: WalOptions) -> io::Result<Arc<Wal>> {
    // Without a group committer the decision log writes through: a
    // cap-triggered flush of a buffered Commit could otherwise beat its
    // (still-buffered) data records to the kernel, breaking the
    // flush-before-decision contract. The group leader flushes data
    // explicitly before every decision frame, so group mode may buffer.
    let commit_cap = if opts.group_commit.is_some() {
        opts.buffer
    } else {
        0
    };
    Ok(Arc::new(Wal {
        commit: Mutex::new_named(
            "wal.commit",
            LogWriter::new(append_mode(&dir.join(COMMIT_FILE))?, commit_cap),
        ),
        history: Mutex::new_named(
            "wal.history",
            LogWriter::new(append_mode(&dir.join(HISTORY_FILE))?, opts.buffer),
        ),
        shard_sinks: Mutex::new_named("wal.shard_sinks", Vec::new()),
        next_base: AtomicU32::new(next_base),
        sync: opts.sync,
        buffer: opts.buffer,
        group: opts.group_commit.map(|max_group| GroupCommitter {
            max_group: max_group.max(1),
            state: Mutex::new_named("wal.group_state", GroupState::default()),
            wakeup: Condvar::new(),
        }),
        group_flushes: AtomicU64::new(0),
        group_records: AtomicU64::new(0),
        inject_fsync_fail: AtomicBool::new(false),
        failed: AtomicBool::new(false),
        telemetry: opts.telemetry,
        dir,
    }))
}

impl Wal {
    /// Creates (or **rotates**) a WAL directory for a fresh engine over
    /// `sys`: wipes any previous generation's log files, then writes
    /// `meta.json`. Refuses to touch a non-empty directory that does not
    /// look like a WAL directory (no `meta.json`), so a mistyped path
    /// cannot destroy unrelated data.
    pub fn create(
        dir: impl Into<PathBuf>,
        sys: &TransactionSystem,
        initial_value: u64,
        opts: WalOptions,
    ) -> io::Result<Arc<Wal>> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let occupied = std::fs::read_dir(&dir)?.next().is_some();
        if occupied && !dir.join(META_FILE).exists() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "{} is non-empty and has no {META_FILE}: refusing to rotate a non-WAL directory",
                    dir.display()
                ),
            ));
        }
        // Rotate: a new registration means a new system and a new store,
        // so the previous generation's records are dead.
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name == META_FILE
                || name == COMMIT_FILE
                || name == HISTORY_FILE
                || (name.starts_with("shard-") && name.ends_with(".wal"))
            {
                std::fs::remove_file(entry.path())?;
            }
        }
        let meta = WalMeta {
            spec: SystemSpec::from_system(sys),
            initial_value,
        };
        let json = serde_json::to_string_pretty(&meta)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("meta: {e}")))?;
        std::fs::write(dir.join(META_FILE), json)?;
        build_wal(dir, 0, opts)
    }

    /// Re-opens an existing WAL directory in append mode after a
    /// [`recover`], continuing global instance ids above `next_base`.
    pub fn resume(
        dir: impl Into<PathBuf>,
        next_base: u32,
        opts: WalOptions,
    ) -> io::Result<Arc<Wal>> {
        let dir = dir.into();
        if !dir.join(META_FILE).exists() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} has no {META_FILE}", dir.display()),
            ));
        }
        build_wal(dir, next_base, opts)
    }

    /// The directory this WAL writes to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether an append has failed (the WAL stopped recording).
    pub fn poisoned(&self) -> bool {
        self.failed.load(Ordering::Relaxed)
    }

    /// Opens the value log of shard `k` in append mode. The buffered
    /// writer (with the sink's dirty flag) is also registered so
    /// [`Wal::log_commit`] can flush — and under [`WalOptions::sync`]
    /// fsync — the data logs before the decision record.
    pub(crate) fn open_shard_log(&self, k: usize) -> io::Result<ShardSink> {
        let writer = Arc::new(Mutex::new_named(
            "wal.shard_sink",
            LogWriter::new(append_mode(&self.dir.join(shard_file(k)))?, self.buffer),
        ));
        let dirty = Arc::new(AtomicBool::new(false));
        self.shard_sinks
            .lock()
            .push((Arc::clone(&writer), Arc::clone(&dirty)));
        Ok(ShardSink { writer, dirty })
    }

    /// Appends one record to a shard's value log, marking the sink dirty
    /// (append first, flag second — see [`ShardSink`]).
    pub(crate) fn append_shard(&self, sink: &mut ShardSink, rec: &WalRecord) {
        self.append_record(&mut sink.writer.lock(), rec);
        if self.sync {
            sink.dirty.store(true, Ordering::SeqCst);
        }
    }

    /// Reserves `count` globally unique instance ids for one run,
    /// returning the base (ids are `base..base + count`). The range is
    /// claimed with a compare-exchange on `checked_add`, so exhaustion
    /// panics *before* a wrapped base is ever published — a concurrent
    /// `begin_run` can never observe colliding ids.
    pub(crate) fn begin_run(&self, count: u32) -> u32 {
        let mut base = self.next_base.load(Ordering::SeqCst);
        loop {
            let next = base
                .checked_add(count)
                .expect("WAL instance-id space exhausted (u32)");
            match self
                .next_base
                .compare_exchange(base, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return base,
                Err(observed) => base = observed,
            }
        }
    }

    /// Poisons the WAL (reported once on stderr, then silent).
    fn fail(&self, what: &str, e: &io::Error) {
        if !self.failed.swap(true, Ordering::Relaxed) {
            eprintln!(
                "ddlf-engine: WAL {what} in {} failed, log disabled: {e}",
                self.dir.display()
            );
        }
    }

    /// Appends one frame to `w` (buffered), poisoning the WAL on I/O
    /// failure.
    pub(crate) fn append_record(&self, w: &mut LogWriter, rec: &WalRecord) {
        if self.failed.load(Ordering::Relaxed) {
            return;
        }
        let body = rec.encode();
        let t0 = self.telemetry.timer();
        if let Err(e) = w.append_frame(body.as_ref()) {
            self.fail("append", &e);
        }
        self.telemetry.record_since(Phase::WalAppend, t0);
        // Payload plus the u32 length prefix of the frame.
        self.telemetry.add_wal_bytes(body.as_ref().len() as u64 + 4);
    }

    /// Fsyncs `w` (flushing its buffer first), honoring the injected-
    /// failure test hook.
    fn sync_writer(&self, w: &mut LogWriter) -> io::Result<()> {
        if self.inject_fsync_fail.swap(false, Ordering::SeqCst) {
            return Err(io::Error::other("injected fsync failure"));
        }
        w.sync_data()
    }

    /// Test hook: the next decision-record fsync fails with an injected
    /// error, poisoning the WAL — used to exercise the group committer's
    /// failure branch (every parked follower must still wake).
    #[doc(hidden)]
    pub fn inject_fsync_failure(&self) {
        self.inject_fsync_fail.store(true, Ordering::SeqCst);
    }

    fn append_shared(&self, file: &Mutex<LogWriter>, rec: &WalRecord, sync: bool) {
        let mut f = file.lock();
        self.append_record(&mut f, rec);
        if sync && !self.poisoned() {
            // A failed decision-record fsync must poison too: otherwise
            // the engine reports a durable commit that power loss can
            // still take back.
            let t0 = self.telemetry.timer();
            if let Err(e) = self.sync_writer(&mut f) {
                self.fail("fsync", &e);
            }
            self.telemetry.record_since(Phase::Fsync, t0);
        }
    }

    pub(crate) fn log_begin(&self, gid: u32, template: TxnId, attempt: u32) {
        self.append_shared(
            &self.commit,
            &WalRecord::Begin {
                gid,
                template: template.0,
                attempt,
            },
            false,
        );
    }

    /// Appends the attempt-0 `Begin` records of one admission batch
    /// under a single decision-log lock acquisition (batched admission's
    /// amortized counterpart of per-instance [`Wal::log_begin`]).
    pub(crate) fn log_begin_batch(&self, begins: &[(u32, TxnId)]) {
        let mut f = self.commit.lock();
        for &(gid, template) in begins {
            self.append_record(
                &mut f,
                &WalRecord::Begin {
                    gid,
                    template: template.0,
                    attempt: 0,
                },
            );
        }
    }

    pub(crate) fn log_commit(&self, gid: u32, template: TxnId, attempt: u32, commit_ts: u64) {
        let entry = GroupEntry {
            gid,
            template: template.0,
            attempt,
            commit_ts,
        };
        if let Some(g) = &self.group {
            return self.group_commit(g, entry);
        }
        // Durability order: data logs first, the decision record last —
        // a Commit visible in the page cache (or, under `sync`, durable
        // after power loss) must imply that every Write/Event record it
        // decides over is visible (durable) too.
        if self.sync {
            self.sync_data_logs();
        } else {
            self.flush_data_logs();
        }
        self.append_shared(
            &self.commit,
            &WalRecord::Commit {
                gid,
                template: template.0,
                attempt,
                commit_ts,
            },
            self.sync,
        );
    }

    /// The group-commit enqueue/park path of [`Wal::log_commit`]: push
    /// the decision, take a ticket, and either become the leader (first
    /// unserved enqueuer) or wait for a leader to write it. Returns once
    /// the decision is durable — or once the WAL is poisoned, in which
    /// case *every* parked follower is woken with the failure (the
    /// leader advances `flushed_seq` past its batch and `notify_all`s
    /// unconditionally, so no wakeup is lost on the error branch).
    fn group_commit(&self, g: &GroupCommitter, entry: GroupEntry) {
        let mut st = g.state.lock();
        let my_seq = st.next_seq;
        st.next_seq += 1;
        st.queue.push(entry);
        loop {
            if st.flushed_seq > my_seq || self.poisoned() {
                return;
            }
            if st.leader_active {
                g.wakeup.wait(&mut st);
                continue;
            }
            // Leader handoff: drain up to max_group tickets FIFO and
            // write them outside the queue lock, so followers can keep
            // enqueueing into the next group meanwhile.
            st.leader_active = true;
            let take = st.queue.len().min(g.max_group);
            let batch: Vec<GroupEntry> = st.queue.drain(..take).collect();
            let first = st.flushed_seq;
            drop(st);
            self.flush_group(&batch);
            st = g.state.lock();
            st.flushed_seq = first + batch.len() as u64;
            st.leader_active = false;
            // notify_all, never notify_one: the batch served many
            // followers at once, and on a poisoned WAL every waiter —
            // served or not — must wake to observe the failure.
            g.wakeup.notify_all();
        }
    }

    /// Writes one drained group durable: one data-log flush (+fsync
    /// under `sync`), one decision frame, one decision fsync. A
    /// singleton group degenerates to a plain `Commit` record, so
    /// unbatched and trivially-batched logs stay byte-identical.
    fn flush_group(&self, batch: &[GroupEntry]) {
        if batch.is_empty() || self.poisoned() {
            return;
        }
        if self.sync {
            self.sync_data_logs();
        } else {
            self.flush_data_logs();
        }
        let rec = match batch {
            [e] => WalRecord::Commit {
                gid: e.gid,
                template: e.template,
                attempt: e.attempt,
                commit_ts: e.commit_ts,
            },
            _ => WalRecord::CommitGroup {
                entries: batch.to_vec(),
            },
        };
        {
            let mut f = self.commit.lock();
            self.append_record(&mut f, &rec);
            if !self.poisoned() {
                if let Err(e) = f.flush() {
                    self.fail("append", &e);
                }
            }
            if self.sync && !self.poisoned() {
                let t0 = self.telemetry.timer();
                if let Err(e) = self.sync_writer(&mut f) {
                    self.fail("fsync", &e);
                }
                self.telemetry.record_since(Phase::Fsync, t0);
            }
        }
        self.group_flushes.fetch_add(1, Ordering::Relaxed);
        self.group_records
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.telemetry.record_group_size(batch.len() as u64);
    }

    /// `(group flushes, decisions written through the group path)` so
    /// far — mean group size is `records / flushes`. Counted on the
    /// `Wal` itself (not the telemetry handle) so reports can measure
    /// amortization with telemetry disabled.
    pub(crate) fn group_counters(&self) -> (u64, u64) {
        (
            self.group_flushes.load(Ordering::Relaxed),
            self.group_records.load(Ordering::Relaxed),
        )
    }

    /// Flushes every data-log buffer (shard value logs, history log) to
    /// the kernel — the first half of the flush-before-decision
    /// contract. No fsync.
    fn flush_data_logs(&self) {
        if self.poisoned() {
            return;
        }
        for (writer, _) in self.shard_sinks.lock().iter() {
            if let Err(e) = writer.lock().flush() {
                self.fail("append", &e);
            }
        }
        if let Err(e) = self.history.lock().flush() {
            self.fail("append", &e);
        }
    }

    /// Flushes **and fsyncs** the *dirty* shard value logs and the
    /// history log. The committing thread appended its own Write/Event
    /// records (and set their dirty flags) before calling this, so
    /// either this call flushes them or a concurrent committer that
    /// cleared the flag after the append did. Shard logs with nothing
    /// new since the last sync are skipped — a commit pays per written
    /// shard, not per shard in the store. Fsync failure poisons the WAL
    /// like an append failure.
    fn sync_data_logs(&self) {
        if self.poisoned() {
            return;
        }
        // One fsync sample per commit-time data flush (dirty shard logs
        // plus the history log) — the stall a committer actually feels.
        let t0 = self.telemetry.timer();
        for (writer, dirty) in self.shard_sinks.lock().iter() {
            if dirty.swap(false, Ordering::SeqCst) {
                if let Err(e) = writer.lock().sync_data() {
                    self.fail("fsync", &e);
                }
            }
        }
        if let Err(e) = self.history.lock().sync_data() {
            self.fail("fsync", &e);
        }
        self.telemetry.record_since(Phase::Fsync, t0);
    }

    /// Flushes every buffer to the kernel, data logs first, the decision
    /// log last — so the on-disk state an immediate crash would leave
    /// still satisfies the flush-before-decision contract. Called at the
    /// end of every engine run (and on drop), so a clean shutdown leaves
    /// nothing in user space.
    pub(crate) fn flush_all(&self) {
        self.flush_data_logs();
        if self.poisoned() {
            return;
        }
        if let Err(e) = self.commit.lock().flush() {
            self.fail("append", &e);
        }
    }

    pub(crate) fn log_abort(&self, gid: u32, attempt: u32) {
        self.append_shared(&self.commit, &WalRecord::Abort { gid, attempt }, false);
    }

    /// Appends one history event, translated to the run's global id
    /// space. Called from inside the history's timestamp critical
    /// section, so file order equals timestamp order.
    pub(crate) fn log_event(&self, ev: &HistoryEvent, base: u32) {
        self.append_shared(
            &self.history,
            &WalRecord::Event {
                time: ev.time.micros(),
                gid: base + ev.txn.0,
                attempt: ev.attempt,
                node: ev.node,
            },
            false,
        );
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Best-effort: a cleanly dropped engine leaves no frame stranded
        // in user space (runs also flush explicitly at their end).
        self.flush_all();
    }
}

/// Recovery failures.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem-level failure.
    Io(io::Error),
    /// `meta.json` missing or unusable.
    Meta(String),
    /// A fully framed record failed to decode or referenced an unknown
    /// template/entity — corruption beyond a torn tail.
    Record(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Meta(m) => write!(f, "wal meta error: {m}"),
            WalError::Record(m) => write!(f, "wal record error: {m}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// The outcome of replaying a WAL directory.
pub struct Recovered {
    /// The system spec the WAL was recorded under.
    pub spec: SystemSpec,
    /// The rebuilt system.
    pub system: TransactionSystem,
    /// Initial entity value the store was seeded with.
    pub initial_value: u64,
    /// A fresh store holding exactly the committed writes.
    pub store: Store,
    /// Committed instances replayed.
    pub committed: usize,
    /// Attempts that began (committed or not).
    pub begun: usize,
    /// Aborted attempts recorded.
    pub aborted_attempts: usize,
    /// Committed write operations re-applied.
    pub replayed_writes: u64,
    /// Committed writes skipped because the operation no longer typed
    /// (see [`WriteError`]); nonzero indicates store corruption.
    pub skipped_writes: u64,
    /// `D(S)` verdict over the recovered committed history; `None` when
    /// the recovered schedule failed validation (`audit_error` says why).
    pub serializable: Option<bool>,
    /// Why the audit could not run, if it could not.
    pub audit_error: Option<String>,
    /// Committed history events replayed into the audit.
    pub history_len: usize,
    /// Log files that ended in a torn frame (the crash point).
    pub torn_tails: usize,
    /// First unused global instance id (resume runs from here).
    pub next_base: u32,
}

impl Recovered {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "recovered {} committed / {} begun instances | {} writes replayed | history {} events | torn tails {} | serializable {:?}",
            self.committed,
            self.begun,
            self.replayed_writes,
            self.history_len,
            self.torn_tails,
            self.serializable,
        )
    }
}

/// Reads every complete frame of `path` (missing file = empty log).
/// A torn final frame (`UnexpectedEof` — the crash point) ends the log;
/// a corrupt length prefix (`InvalidData`) or a fully framed record that
/// does not decode is real corruption and errors — a torn append is a
/// *prefix* of a valid frame, so its length bytes are either missing or
/// intact, never garbage. (Caveat: a filesystem that persists a file's
/// extended length before its data can leave a garbage tail after power
/// loss; recovering such a log demands explicit truncation rather than
/// this code guessing where it really ends — guessing is how committed
/// mid-file records get silently dropped.)
fn read_log(path: &Path, torn: &mut usize) -> Result<Vec<WalRecord>, WalError> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let mut r = io::BufReader::new(file);
    let mut out = Vec::new();
    loop {
        match frame::read_frame(&mut r) {
            Ok(None) => break,
            Ok(Some(payload)) => match WalRecord::decode(Bytes::from(payload)) {
                Some(rec) => out.push(rec),
                None => {
                    return Err(WalError::Record(format!(
                        "{}: record {} framed but did not decode",
                        path.display(),
                        out.len()
                    )))
                }
            },
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                *torn += 1;
                break;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Corrupt length prefix: stopping silently here would
                // discard every later record — including committed
                // writes — while reporting a clean crash point.
                return Err(WalError::Record(format!(
                    "{}: corrupt frame length after record {}: {e}",
                    path.display(),
                    out.len()
                )));
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(out)
}

/// Replays a WAL directory: rebuilds the registered system from
/// `meta.json`, re-applies every **committed** write operation to a
/// fresh [`Store`], and streams the committed lock/unlock history
/// through the incremental `D(S)` auditor — commit decisions are known
/// up front, so every event merges on arrival and recovery is linear in
/// log size (the old path rebuilt the quadratic batch conflict graph; a
/// 20k-instance recovery took minutes, see `BENCH_audit.json`).
/// Uncommitted instances — in-flight at the crash, or wait-die victims —
/// contribute nothing: commit is decided solely by the decision log.
pub fn recover(dir: impl AsRef<Path>) -> Result<Recovered, WalError> {
    let dir = dir.as_ref();
    let meta_json = std::fs::read_to_string(dir.join(META_FILE))
        .map_err(|e| WalError::Meta(format!("{}: {e}", dir.join(META_FILE).display())))?;
    let meta: WalMeta =
        serde_json::from_str(&meta_json).map_err(|e| WalError::Meta(format!("parse: {e}")))?;
    let system = meta
        .spec
        .build()
        .map_err(|e| WalError::Meta(format!("spec does not build: {e}")))?;
    let db = system.db().clone();

    let mut torn = 0usize;

    // 1. The decision log: which instances committed, with what
    //    template, attempt, and commit timestamp.
    let mut committed: HashMap<u32, (TxnId, u32, u64)> = HashMap::new();
    let mut begun = 0usize;
    let mut aborted = 0usize;
    let mut next_base = 0u32;
    for rec in read_log(&dir.join(COMMIT_FILE), &mut torn)? {
        match rec {
            WalRecord::Begin { gid, .. } => {
                begun += 1;
                next_base = next_base.max(gid.saturating_add(1));
            }
            WalRecord::Commit {
                gid,
                template,
                attempt,
                commit_ts,
            } => {
                if template as usize >= system.len() {
                    return Err(WalError::Record(format!(
                        "commit of instance {gid} names template {template}, system has {}",
                        system.len()
                    )));
                }
                committed.insert(gid, (TxnId(template), attempt, commit_ts));
                next_base = next_base.max(gid.saturating_add(1));
            }
            WalRecord::Abort { gid, .. } => {
                aborted += 1;
                next_base = next_base.max(gid.saturating_add(1));
            }
            // A group is one frame, so it is either replayed whole here
            // or was dropped whole as a torn tail — `read_log` can never
            // surface a partial group.
            WalRecord::CommitGroup { entries } => {
                for e in entries {
                    if e.template as usize >= system.len() {
                        return Err(WalError::Record(format!(
                            "group commit of instance {} names template {}, system has {}",
                            e.gid,
                            e.template,
                            system.len()
                        )));
                    }
                    committed.insert(e.gid, (TxnId(e.template), e.attempt, e.commit_ts));
                    next_base = next_base.max(e.gid.saturating_add(1));
                }
            }
            other => {
                return Err(WalError::Record(format!(
                    "unexpected record in decision log: {other:?}"
                )))
            }
        }
    }

    // 2. The value logs: replay committed operations, in apply order,
    //    onto a fresh store.
    let mut store = Store::new(&db, meta.initial_value);
    let mut replayed = 0u64;
    let mut skipped = 0u64;
    let mut ops_by_gid: HashMap<u32, Vec<(EntityId, WriteOp)>> = HashMap::new();
    for k in 0..db.site_count() {
        for rec in read_log(&dir.join(shard_file(k)), &mut torn)? {
            match rec {
                WalRecord::Write {
                    gid,
                    attempt,
                    entity,
                    op,
                    ..
                } => {
                    // Every logged gid keeps `next_base` honest even if
                    // its Begin record was lost (e.g. an unsynced
                    // decision log after power loss): a resumed run must
                    // never re-mint an id that survives in a data log.
                    next_base = next_base.max(gid.saturating_add(1));
                    // Replay only the *committing* attempt's writes: an
                    // instance that died dirty on an earlier attempt and
                    // committed on a retry must not replay the rolled-
                    // back write too.
                    if committed.get(&gid).map(|&(_, a, _)| a) != Some(attempt) {
                        continue;
                    }
                    if entity.index() >= db.entity_count() {
                        return Err(WalError::Record(format!(
                            "write to unknown entity {entity} in shard {k}"
                        )));
                    }
                    // Collected per instance for the multiversion chain
                    // rebuild below (a program writes each entity at
                    // most once, so intra-instance order is immaterial).
                    ops_by_gid
                        .entry(gid)
                        .or_default()
                        .push((entity, op.clone()));
                    match store.replay_write(entity, &op) {
                        Ok(()) => replayed += 1,
                        Err(WriteError::AddToBytes { .. }) => skipped += 1,
                    }
                }
                WalRecord::Undo { gid, .. } => {
                    // Uncommitted by construction; still claims its id.
                    next_base = next_base.max(gid.saturating_add(1));
                }
                other => {
                    return Err(WalError::Record(format!(
                        "unexpected record in shard log {k}: {other:?}"
                    )))
                }
            }
        }
    }

    // 2b. Rebuild the multiversion chains: publish every committed
    //     instance's write-set in commit-timestamp order. Gaps are
    //     expected (a ts allocated by the crashed process whose commit
    //     record never became durable); `publish_recovered` tolerates
    //     them, and the recovered clock resumes past the highest
    //     durable ts.
    let mut by_ts: Vec<(u64, u32)> = committed.iter().map(|(g, &(_, _, ts))| (ts, *g)).collect();
    by_ts.sort_unstable();
    for (ts, gid) in by_ts {
        let ops = ops_by_gid.remove(&gid).unwrap_or_default();
        store.publish_recovered(ts, &ops);
    }

    // 3. The history log: stream the committed attempts' events through
    //    the incremental auditor. Commit decisions are fed *first* (they
    //    are all known from step 1), so every event of a committing
    //    attempt merges immediately — file order is global time order —
    //    and recovery stays linear in the log instead of rebuilding the
    //    quadratic batch conflict graph. No per-instance audit system is
    //    materialized at all; `seal` adds the Lemma 1 arcs for any
    //    committed instance whose events a torn history tail swallowed.
    let mut gids: Vec<u32> = committed.keys().copied().collect();
    gids.sort_unstable();
    let mut auditor = StreamingAuditor::new(&system);
    for g in &gids {
        let (template, attempt, _) = committed[g];
        auditor.admit(*g, template);
        auditor.commit(*g, attempt);
    }
    for rec in read_log(&dir.join(HISTORY_FILE), &mut torn)? {
        match rec {
            WalRecord::Event {
                gid, attempt, node, ..
            } => {
                next_base = next_base.max(gid.saturating_add(1));
                if committed.get(&gid).map(|&(_, a, _)| a) != Some(attempt) {
                    continue; // uncommitted instance, or a losing attempt
                }
                auditor.event(gid, attempt, node);
            }
            other => {
                return Err(WalError::Record(format!(
                    "unexpected record in history log: {other:?}"
                )))
            }
        }
    }
    let serializable = auditor.seal();
    let audit_error = auditor
        .error()
        .map(|e| format!("recovered schedule invalid: {e}"));
    let history_len = usize::try_from(auditor.merged_events()).unwrap_or(usize::MAX);

    Ok(Recovered {
        spec: meta.spec,
        system,
        initial_value: meta.initial_value,
        store,
        committed: gids.len(),
        begun,
        aborted_attempts: aborted,
        replayed_writes: replayed,
        skipped_writes: skipped,
        serializable,
        audit_error,
        history_len,
        torn_tails: torn,
        next_base,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Buf as _;

    fn roundtrip(rec: WalRecord) {
        let enc = rec.encode();
        assert_eq!(WalRecord::decode(enc), Some(rec));
    }

    #[test]
    fn records_roundtrip() {
        roundtrip(WalRecord::Begin {
            gid: 7,
            template: 1,
            attempt: 3,
        });
        roundtrip(WalRecord::Write {
            gid: u32::MAX,
            attempt: 0,
            entity: EntityId(5),
            op: WriteOp::Add(-42),
            before: VersionedValue {
                version: 9,
                datum: Datum::Int(100),
            },
            after: VersionedValue {
                version: 10,
                datum: Datum::Int(58),
            },
        });
        roundtrip(WalRecord::Write {
            gid: 0,
            attempt: 2,
            entity: EntityId(0),
            op: WriteOp::PutBytes(vec![1, 2, 3]),
            before: VersionedValue {
                version: 0,
                datum: Datum::Bytes(vec![]),
            },
            after: VersionedValue {
                version: 1,
                datum: Datum::Bytes(vec![1, 2, 3]),
            },
        });
        roundtrip(WalRecord::Undo {
            gid: 3,
            entity: EntityId(2),
            restored: VersionedValue {
                version: 4,
                datum: Datum::Int(1),
            },
        });
        roundtrip(WalRecord::Commit {
            gid: 1,
            template: 0,
            attempt: 1,
            commit_ts: u64::MAX - 1,
        });
        roundtrip(WalRecord::Abort { gid: 2, attempt: 0 });
        roundtrip(WalRecord::Event {
            time: u64::MAX,
            gid: 1,
            attempt: 0,
            node: NodeId(6),
        });
    }

    #[test]
    fn malformed_records_rejected() {
        assert_eq!(WalRecord::decode(Bytes::new()), None);
        assert_eq!(WalRecord::decode(Bytes::from_static(&[99])), None);
        // Truncated Write.
        assert_eq!(WalRecord::decode(Bytes::from_static(&[TAG_WRITE, 1])), None);
        // Trailing garbage after a valid Abort.
        let mut enc: Vec<u8> = WalRecord::Abort { gid: 2, attempt: 0 }
            .encode()
            .chunk()
            .to_vec();
        enc.push(0xFF);
        assert_eq!(WalRecord::decode(Bytes::from(enc)), None);
    }

    fn unit_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ddlf-wal-unit-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn bare_wal_with(tag: &str, base: u32, opts: WalOptions) -> Arc<Wal> {
        build_wal(unit_dir(tag), base, opts).unwrap()
    }

    fn bare_wal(tag: &str, base: u32) -> Arc<Wal> {
        bare_wal_with(
            tag,
            base,
            WalOptions {
                buffer: 0,
                ..WalOptions::default()
            },
        )
    }

    #[test]
    fn begin_run_reserves_disjoint_ranges() {
        let w = bare_wal("ranges", 0);
        assert_eq!(w.begin_run(10), 0);
        assert_eq!(w.begin_run(5), 10);
        assert_eq!(w.begin_run(1), 15);
    }

    #[test]
    fn begin_run_never_publishes_a_wrapped_base() {
        let w = bare_wal("wrap", u32::MAX - 1);
        let attempt = Arc::clone(&w);
        let wrapped =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || attempt.begin_run(5)));
        assert!(wrapped.is_err(), "a wrapping reservation must panic");
        // The failed reservation must not have wrapped the counter: the
        // remaining id space is intact and collision-free.
        assert_eq!(w.begin_run(1), u32::MAX - 1);
    }

    #[test]
    fn read_log_reports_corrupt_length_prefix_as_record_error() {
        use std::io::Write as _;
        let path = unit_dir("corrupt").join("log.wal");
        let mut f = File::create(&path).unwrap();
        frame::write_frame(
            &mut f,
            WalRecord::Abort { gid: 0, attempt: 0 }.encode().as_ref(),
        )
        .unwrap();
        // A length prefix above MAX_FRAME is never a torn append (a torn
        // append is a prefix of a valid frame): this is corruption.
        f.write_all(&u32::MAX.to_le_bytes()).unwrap();
        drop(f);
        let mut torn = 0;
        match read_log(&path, &mut torn) {
            Err(WalError::Record(m)) => assert!(m.contains("corrupt frame length"), "{m}"),
            other => panic!("expected Record error, got {other:?}"),
        }
        assert_eq!(torn, 0);
    }

    #[test]
    fn read_log_still_treats_a_partial_final_frame_as_the_crash_point() {
        use std::io::Write as _;
        let path = unit_dir("torn").join("log.wal");
        let mut f = File::create(&path).unwrap();
        frame::write_frame(
            &mut f,
            WalRecord::Abort { gid: 0, attempt: 0 }.encode().as_ref(),
        )
        .unwrap();
        f.write_all(&100u32.to_le_bytes()).unwrap();
        f.write_all(&[1, 2, 3]).unwrap(); // payload cut short mid-append
        drop(f);
        let mut torn = 0;
        let recs = read_log(&path, &mut torn).unwrap();
        assert_eq!(recs.len(), 1, "the complete record survives");
        assert_eq!(torn, 1);
    }

    #[test]
    fn commit_group_roundtrips() {
        roundtrip(WalRecord::CommitGroup {
            entries: vec![
                GroupEntry {
                    gid: 0,
                    template: 1,
                    attempt: 0,
                    commit_ts: 1,
                },
                GroupEntry {
                    gid: u32::MAX,
                    template: 0,
                    attempt: 7,
                    commit_ts: u64::MAX,
                },
            ],
        });
        roundtrip(WalRecord::CommitGroup { entries: vec![] });
        // A hostile entry count on a short buffer must reject, not
        // pre-allocate.
        let mut b = BytesMut::new();
        b.put_u8(TAG_COMMIT_GROUP);
        b.put_u32_le(u32::MAX);
        assert_eq!(WalRecord::decode(b.freeze()), None);
    }

    fn decisions_of(wal_dir: &Path) -> Vec<WalRecord> {
        let mut torn = 0;
        let recs = read_log(&wal_dir.join(COMMIT_FILE), &mut torn).unwrap();
        assert_eq!(torn, 0);
        recs
    }

    #[test]
    fn group_commit_writes_every_decision_and_amortizes_flushes() {
        let w = bare_wal_with(
            "group-basic",
            0,
            WalOptions {
                group_commit: Some(8),
                ..WalOptions::default()
            },
        );
        let n = 32u32;
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let w = Arc::clone(&w);
                s.spawn(move || {
                    for i in 0..n / 4 {
                        let gid = t * (n / 4) + i;
                        w.log_commit(gid, TxnId(0), 0, u64::from(gid) + 1);
                    }
                });
            }
        });
        assert!(!w.poisoned());
        w.flush_all();
        let mut committed = std::collections::HashSet::new();
        for rec in decisions_of(w.dir()) {
            match rec {
                WalRecord::Commit { gid, .. } => {
                    committed.insert(gid);
                }
                WalRecord::CommitGroup { entries } => {
                    assert!(entries.len() >= 2, "multi-entry frames only");
                    assert!(entries.len() <= 8, "max_group respected");
                    committed.extend(entries.iter().map(|e| e.gid));
                }
                other => panic!("unexpected decision record {other:?}"),
            }
        }
        assert_eq!(committed.len(), n as usize, "every decision durable");
        let (flushes, records) = w.group_counters();
        assert_eq!(records, n as u64);
        assert!(flushes <= records, "flushes never exceed decisions");
    }

    #[test]
    fn singleton_group_degenerates_to_a_plain_commit_record() {
        let w = bare_wal_with(
            "group-single",
            0,
            WalOptions {
                group_commit: Some(DEFAULT_MAX_GROUP),
                ..WalOptions::default()
            },
        );
        w.log_commit(3, TxnId(1), 2, 9);
        w.flush_all();
        assert_eq!(
            decisions_of(w.dir()),
            vec![WalRecord::Commit {
                gid: 3,
                template: 1,
                attempt: 2,
                commit_ts: 9,
            }]
        );
        assert_eq!(w.group_counters(), (1, 1));
    }

    #[test]
    fn injected_fsync_failure_wakes_every_parked_follower() {
        let w = bare_wal_with(
            "group-poison",
            0,
            WalOptions {
                sync: true,
                group_commit: Some(64),
                ..WalOptions::default()
            },
        );
        w.inject_fsync_failure();
        // Every committer must return — the failure branch advances the
        // queue and wakes all followers; a lost wakeup here hangs the
        // test (caught by the harness timeout).
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let w = Arc::clone(&w);
                s.spawn(move || {
                    for i in 0..4 {
                        let gid = t * 4 + i;
                        w.log_commit(gid, TxnId(0), 0, u64::from(gid) + 1);
                    }
                });
            }
        });
        assert!(w.poisoned(), "a failed group fsync must poison the WAL");
    }

    #[test]
    fn buffered_writer_flushes_on_cap_and_on_demand() {
        let dir = unit_dir("bufcap");
        let path = dir.join("log.wal");
        let mut w = LogWriter::new(append_mode(&path).unwrap(), 32);
        let rec = WalRecord::Abort { gid: 9, attempt: 1 }.encode();
        w.append_frame(rec.as_ref()).unwrap();
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            0,
            "small frame stays buffered"
        );
        for _ in 0..4 {
            w.append_frame(rec.as_ref()).unwrap();
        }
        assert!(
            std::fs::metadata(&path).unwrap().len() > 0,
            "crossing cap flushes"
        );
        w.flush().unwrap();
        let mut torn = 0;
        assert_eq!(read_log(&path, &mut torn).unwrap().len(), 5);
        assert_eq!(torn, 0);
    }

    #[test]
    fn datum_and_op_exhaustive_roundtrip() {
        for op in [
            WriteOp::Add(i64::MIN),
            WriteOp::Add(i64::MAX),
            WriteOp::Put(u64::MAX),
            WriteOp::PutBytes(vec![0xAB; 300]),
        ] {
            let mut b = BytesMut::new();
            put_op(&mut b, &op);
            assert_eq!(get_op(&mut b.freeze()), Some(op));
        }
        for d in [Datum::Int(0), Datum::Bytes(vec![9; 70000])] {
            let mut b = BytesMut::new();
            put_datum(&mut b, &d);
            assert_eq!(get_datum(&mut b.freeze()), Some(d));
        }
    }
}
