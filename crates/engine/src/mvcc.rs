//! Multiversion concurrency state: bounded per-entity version chains,
//! the commit clock, and the **zero-lock** read-only snapshot path.
//!
//! Writers keep competing in the per-shard lock tables exactly as
//! before — this module only changes what happens at *commit*: each
//! committed transaction is assigned a commit timestamp from a global
//! clock and its write-set is re-applied, in timestamp order, to a
//! per-entity chain of committed `(commit_ts, VersionedValue)`
//! versions. Read-only transactions never touch a lock table, a shard
//! mutex, or the WAL: they sample the *closed* prefix of the commit
//! clock and read the newest version `≤` their snapshot ts from a
//! lock-free atomic mirror of each chain, so a full-bank scan observes
//! one committed cut even while writers churn. See the "Multiversion
//! snapshot reads" section of `ARCHITECTURE.md` for the protocol
//! walk-through and its correctness argument.
//!
//! Two representations per entity, deliberately redundant:
//!
//! * the **master chain** (full [`VersionedValue`] fidelity, byte
//!   payloads included) lives under the `store.mvcc` mutex and serves
//!   the locked helpers [`crate::Store::snapshot`] /
//!   [`crate::Store::snapshot_at`] plus GC truncation;
//! * the **ring** — a fixed array of atomic slots packing
//!   `(commit_ts, version, kind, u64 payload)` — is what the zero-lock
//!   reader scans. Byte payloads cannot ride in a `u64`, so the ring
//!   carries their `(ts, version)` identity and the byte length; a
//!   read-only scan reports such entries with `value: None`.
//!
//! Publication order: the committer allocates `ts`, makes the commit
//! durable (WAL), then publishes under the `store.mvcc` mutex; the
//! `closed` clock only advances to `ts` after every write of commit
//! `ts` (and of every earlier commit) is visible in both
//! representations. A reader's snapshot ts is a `closed` load, so
//! `s = closed` implies every commit `≤ s` is fully readable — the
//! single-cut guarantee needs no reader-side locks at all.
//!
//! **Commit-ts order vs live write order — the delta-only caveat.**
//! Chains apply whole write-sets in commit-timestamp order, but the
//! live shards apply each write at `write_and_release` time, and the
//! engine releases entity locks *before* the transaction commits — so
//! two conflicting transactions can obtain commit timestamps in the
//! opposite order of their writes to a shared entity. For **delta**
//! writes ([`WriteOp::Add`]) this is harmless: wrapping adds commute,
//! so the chain tip equals the live committed value at quiescence no
//! matter how the orders interleave, and the conservation identity
//! (Σint constant under transfers) holds at *every* cut.
//! [`crate::Store::chain_divergence`] cross-checks the two
//! representations and the engine debug-asserts it empty at the end of
//! every delta-only run. For **absolute** writes (`Put`/`PutBytes`) an
//! inversion makes the chain tip — and therefore
//! [`crate::Store::snapshot`], [`crate::Store::total_int`], and
//! read-only cuts — legitimately differ from the live shard value:
//! early lock release means no clean transaction-aligned cut exists in
//! that case. Assertions about mixed/absolute workloads should compare
//! against [`crate::Store::live_snapshot`] at quiescence instead.
//!
//! Reclamation is the scheme's only subtlety, solved twice over:
//!
//! * **GC (master chains + rings)** truncates each chain to
//!   "watermark + latest": the newest entry `≤` the low-watermark of
//!   live read-only snapshots survives, everything older goes. The
//!   watermark is a lock-free min over a fixed pool of reader slots;
//!   the announce-then-validate handshake (`Mvcc::register` vs
//!   `Mvcc::gc`'s `gc_floor` publication and re-scan) closes the
//!   race between a registering reader and a concurrent truncation.
//! * **Ring capacity eviction** (the ring is fixed-size; a 17th
//!   version overwrites the oldest slot) can outrun even a registered
//!   reader. Each slot is a seqlock keyed on its `ts` word (cleared
//!   before a rewrite, republished after, never reused), so a reader
//!   re-checks `ts` around its field loads and discards torn tuples;
//!   every slot rewrite also bumps the ring's eviction counter, so a
//!   reader that scanned across a rewrite detects it and rescans; and
//!   a reader whose needed version was evicted outright finds *no*
//!   entry `≤ s` (eviction is strictly oldest-first, so retained
//!   timestamps are a suffix) and restarts the whole scan at a fresh
//!   `closed` — the snapshot stays a single cut, just a newer one.

use crate::store::{apply_op, Datum, VersionedValue};
use crate::template::WriteOp;
use ddlf_model::{Database, EntityId};
use ddlf_telemetry::Telemetry;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};

/// Hard per-entity bound on retained committed versions, GC watermark
/// notwithstanding: the chain is *bounded* even when a reader pins the
/// watermark forever.
pub const CHAIN_CAP: usize = 64;

/// Atomic mirror slots per entity (the zero-lock reader's view).
const RING_CAP: usize = 16;

/// Fixed pool of concurrent registered read-only snapshots.
const RO_SLOTS: usize = 64;

/// Auto-GC cadence: one watermark truncation pass per this many
/// published commits (plus any explicit [`Mvcc::gc`] call). Keeping the
/// cadence coarse means short test runs retain their full history for
/// snapshot-at-ts assertions.
const GC_EVERY: u64 = 256;

/// Ring slot `ts` encoding: stored value is `commit_ts + 1`; `0` means
/// the slot is empty. Commit timestamps start at 1 (0 is the seeded
/// initial version), so the encoding never overflows in practice.
const RING_EMPTY: u64 = 0;

/// Reader-slot sentinel: no snapshot registered in this slot.
const SLOT_FREE: u64 = u64::MAX;

/// Ring payload kinds.
const KIND_INT: u64 = 0;
const KIND_BYTES: u64 = 1;

/// One committed version in a master chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ChainEntry {
    /// Commit timestamp that published this version.
    pub ts: u64,
    /// The full-fidelity committed value.
    pub value: VersionedValue,
}

/// One entity in a read-only snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoEntry {
    /// The entity read.
    pub entity: EntityId,
    /// Commit timestamp of the version observed (0 = the seeded
    /// initial value, never written).
    pub commit_ts: u64,
    /// The version counter of the observed value.
    pub version: u64,
    /// Integer payload, or `None` when the committed payload at this
    /// version is a byte string (bytes don't fit the lock-free ring;
    /// use the locked [`crate::Store::snapshot_at`] for full fidelity).
    pub value: Option<u64>,
}

/// A consistent read-only snapshot: every entry reflects the same
/// committed cut `ts` of the commit clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoSnapshot {
    /// The snapshot timestamp: all commits `≤ ts`, none after.
    pub ts: u64,
    /// One entry per requested entity, in request order.
    pub entries: Vec<RoEntry>,
}

impl RoSnapshot {
    /// Sum of the integer payloads observed (conservation checks).
    pub fn sum_int(&self) -> u128 {
        self.entries
            .iter()
            .filter_map(|e| e.value)
            .map(u128::from)
            .sum()
    }

    /// Sum of the version counters observed — committed writes `≤ ts`
    /// over the scanned entities.
    pub fn sum_versions(&self) -> u64 {
        self.entries.iter().map(|e| e.version).sum()
    }

    /// The entry for `entity`, if it was scanned.
    pub fn get(&self, entity: EntityId) -> Option<&RoEntry> {
        self.entries.iter().find(|e| e.entity == entity)
    }
}

/// One lock-free mirror slot: `(ts+1 | 0=empty, version, kind,
/// payload)`. The slot is a seqlock keyed on `ts`: every rewrite
/// clears `ts` to [`RING_EMPTY`] *before* touching the fields and
/// publishes the new `ts` *after* them, and commit timestamps are
/// never reused — so a reader that observes the same non-empty `ts`
/// on both sides of its field loads has read a consistent tuple.
struct RingSlot {
    ts: AtomicU64,
    version: AtomicU64,
    kind: AtomicU64,
    payload: AtomicU64,
}

impl RingSlot {
    fn empty() -> Self {
        RingSlot {
            ts: AtomicU64::new(RING_EMPTY),
            version: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            payload: AtomicU64::new(0),
        }
    }
}

/// The lock-free mirror of one entity's version chain.
struct Ring {
    slots: Vec<RingSlot>,
    /// Bumped *before* any occupied slot is rewritten (capacity
    /// eviction or GC truncation). Readers diff it around a scan.
    evictions: AtomicU64,
}

impl Ring {
    fn new() -> Self {
        Ring {
            slots: (0..RING_CAP).map(|_| RingSlot::empty()).collect(),
            evictions: AtomicU64::new(0),
        }
    }

    /// Appends `(ts, v)`, evicting the oldest slot when full. Callers
    /// are serialized by the `store.mvcc` mutex; readers are not.
    fn append(&self, ts: u64, v: &VersionedValue) {
        let slot = match self.slots.iter().find(|s| s.ts.load(SeqCst) == RING_EMPTY) {
            Some(s) => s,
            None => {
                // Evict the minimum-ts slot, so retained timestamps
                // always form a suffix (the reader's aging detection
                // depends on exactly this).
                let victim = self
                    .slots
                    .iter()
                    .min_by_key(|s| s.ts.load(SeqCst))
                    .expect("ring has slots");
                self.evictions.fetch_add(1, SeqCst);
                victim.ts.store(RING_EMPTY, SeqCst);
                victim
            }
        };
        let (kind, payload) = match &v.datum {
            Datum::Int(n) => (KIND_INT, *n),
            Datum::Bytes(b) => (KIND_BYTES, b.len() as u64),
        };
        slot.version.store(v.version, SeqCst);
        slot.kind.store(kind, SeqCst);
        slot.payload.store(payload, SeqCst);
        slot.ts.store(ts + 1, SeqCst);
    }

    /// Clears every slot holding a ts strictly below `keep_ts`
    /// (GC truncation of the mirror). Serialized with `append` by the
    /// `store.mvcc` mutex.
    fn truncate_below(&self, keep_ts: u64) {
        for s in &self.slots {
            let enc = s.ts.load(SeqCst);
            if enc != RING_EMPTY && enc - 1 < keep_ts {
                self.evictions.fetch_add(1, SeqCst);
                s.ts.store(RING_EMPTY, SeqCst);
            }
        }
    }

    /// The newest `(ts, version, kind, payload)` with `ts ≤ s`, or
    /// `None` when every such version has been evicted (the caller
    /// refreshes its snapshot ts and rescans). Lock-free; loops only
    /// while a concurrent eviction rewrites the ring mid-scan.
    ///
    /// Two validations, each necessary:
    ///
    /// * **Per-slot seqlock recheck** — `ts` is re-loaded after the
    ///   field loads; a change (to empty or to a new ts) means the
    ///   slot was rewritten mid-read and the tuple may be torn
    ///   (mixing an old `ts` with the overwriting entry's fields).
    ///   Timestamps are never reused, and a rewrite clears `ts`
    ///   before the fields and republishes it after them, so an
    ///   unchanged non-empty `ts` proves consistency. The ring-level
    ///   `evictions` diff alone cannot catch this: a reader whose
    ///   `before` load lands after the evictor's counter bump but
    ///   before the victim's `ts` clear would pass the post-scan
    ///   recheck while holding a torn tuple.
    /// * **Ring-level `evictions` diff** — a slot whose *individual*
    ///   reads were consistent can still be stale as a *set*: if a
    ///   newer candidate's slot was evicted after an older slot
    ///   passed its recheck, returning the older tuple would miss
    ///   the true newest-`≤ s` version. Any eviction during the scan
    ///   forces a rescan.
    fn read_at(&self, s: u64) -> Option<(u64, u64, u64, u64)> {
        'scan: loop {
            let before = self.evictions.load(SeqCst);
            let mut best: Option<(u64, u64, u64, u64)> = None;
            for slot in &self.slots {
                let enc = slot.ts.load(SeqCst);
                if enc == RING_EMPTY {
                    continue;
                }
                let ts = enc - 1;
                if ts > s {
                    continue;
                }
                let tuple = (
                    ts,
                    slot.version.load(SeqCst),
                    slot.kind.load(SeqCst),
                    slot.payload.load(SeqCst),
                );
                if slot.ts.load(SeqCst) != enc {
                    // Rewritten under us: the tuple may be torn.
                    std::hint::spin_loop();
                    continue 'scan;
                }
                if best.is_none_or(|b| ts > b.0) {
                    best = Some(tuple);
                }
            }
            if self.evictions.load(SeqCst) == before {
                return best;
            }
            std::hint::spin_loop();
        }
    }
}

/// Master-chain state guarded by the `store.mvcc` mutex.
struct Inner {
    /// Per-entity committed version chains, oldest-first. Every chain
    /// starts with the seeded `(ts 0, version 0)` initial value.
    chains: HashMap<EntityId, Vec<ChainEntry>>,
    /// Commits whose `ts` arrived ahead of a predecessor still in its
    /// durability wait: buffered until the clock is contiguous.
    pending: Vec<(u64, Vec<(EntityId, WriteOp)>)>,
    /// Retained chain entries across all entities (gauge).
    total_entries: u64,
    /// Publications since the last auto-GC pass.
    since_gc: u64,
    /// Gauge sink (set with the store's telemetry handle).
    telemetry: Telemetry,
}

/// The multiversion state of a [`crate::Store`]: commit clock, master
/// chains, lock-free rings, and the read-only snapshot registry.
pub(crate) struct Mvcc {
    /// Last allocated commit timestamp (monotone, never reused).
    alloc: AtomicU64,
    /// Highest timestamp whose commit — and every earlier commit — is
    /// fully published. Readers snapshot at `closed`.
    closed: AtomicU64,
    /// The low-watermark the last GC pass truncated against. A
    /// registering reader whose announced ts is below this must
    /// refresh before reading (announce-then-validate).
    gc_floor: AtomicU64,
    /// Registered read-only snapshot timestamps (`SLOT_FREE` = vacant).
    readers: Vec<AtomicU64>,
    /// Lock-free chain mirrors, one per entity. The map itself is
    /// immutable after construction — only slot contents change.
    rings: HashMap<EntityId, Ring>,
    inner: Mutex<Inner>,
}

impl Mvcc {
    /// Seeds every entity's chain and ring with the initial value at
    /// `(ts 0, version 0)`.
    pub(crate) fn new(db: &Database, initial: u64) -> Self {
        let seed = VersionedValue {
            version: 0,
            datum: Datum::Int(initial),
        };
        let mut chains = HashMap::new();
        let mut rings = HashMap::new();
        for e in db.entities() {
            chains.insert(
                e,
                vec![ChainEntry {
                    ts: 0,
                    value: seed.clone(),
                }],
            );
            let ring = Ring::new();
            ring.append(0, &seed);
            rings.insert(e, ring);
        }
        let total = chains.len() as u64;
        Mvcc {
            alloc: AtomicU64::new(0),
            closed: AtomicU64::new(0),
            gc_floor: AtomicU64::new(0),
            readers: (0..RO_SLOTS).map(|_| AtomicU64::new(SLOT_FREE)).collect(),
            rings,
            inner: Mutex::new_named(
                "store.mvcc",
                Inner {
                    chains,
                    pending: Vec::new(),
                    total_entries: total,
                    since_gc: 0,
                    telemetry: Telemetry::disabled(),
                },
            ),
        }
    }

    pub(crate) fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.inner.get_mut().telemetry = telemetry.clone();
    }

    /// Allocates the next commit timestamp. Called once per committing
    /// instance, *before* the commit record is made durable, so the
    /// durable record carries the ts that publication will use.
    /// Production callers go through [`Mvcc::reserve_ts`] — a raw
    /// allocation that is never published stalls the closed clock.
    pub(crate) fn alloc_ts(&self) -> u64 {
        self.alloc.fetch_add(1, SeqCst) + 1
    }

    /// [`Mvcc::alloc_ts`] behind an unwind-safe reservation: the commit
    /// path holds the reservation across the durability wait and
    /// publishes through it, so a panic in between (WAL I/O) publishes
    /// an empty write-set instead of leaving a hole the closed clock
    /// can never cross.
    pub(crate) fn reserve_ts(&self) -> TsReservation<'_> {
        TsReservation {
            mvcc: self,
            ts: self.alloc_ts(),
            published: false,
        }
    }

    /// The closed prefix of the commit clock — the ts a fresh read-only
    /// snapshot would observe.
    pub(crate) fn closed_ts(&self) -> u64 {
        self.closed.load(SeqCst)
    }

    /// Publishes commit `ts`: buffers until the clock is contiguous,
    /// then applies each buffered commit's write-set to the chain tips
    /// (and rings) in timestamp order and advances `closed`. The
    /// chain value of a version is the committing transaction's write
    /// op applied to the previous chain tip, so the chain state at any
    /// cut is "initial + every committed transaction ≤ cut, whole
    /// transactions only, in commit order" — the conservation identity
    /// holds at every cut for delta (transfer) workloads.
    pub(crate) fn publish(&self, ts: u64, writes: Vec<(EntityId, WriteOp)>) {
        let mut inner = self.inner.lock();
        inner.pending.push((ts, writes));
        loop {
            let next = self.closed.load(SeqCst) + 1;
            let Some(at) = inner.pending.iter().position(|(t, _)| *t == next) else {
                break;
            };
            let (_, ws) = inner.pending.swap_remove(at);
            self.apply_commit(&mut inner, next, &ws);
            self.closed.store(next, SeqCst);
        }
        inner.since_gc += 1;
        if inner.since_gc >= GC_EVERY {
            self.gc_locked(&mut inner);
        } else {
            self.publish_gauges(&inner);
        }
    }

    /// Recovery-path publication: applies commit `ts` directly and
    /// advances `closed` to it, tolerating gaps (timestamps allocated
    /// by the crashed process but never made durable). Callers feed
    /// commits in ascending ts order.
    pub(crate) fn publish_recovered(&self, ts: u64, writes: &[(EntityId, WriteOp)]) {
        let mut inner = self.inner.lock();
        self.apply_commit(&mut inner, ts, writes);
        self.closed.store(ts, SeqCst);
        let prev = self.alloc.load(SeqCst);
        self.alloc.store(prev.max(ts), SeqCst);
        self.publish_gauges(&inner);
    }

    fn apply_commit(&self, inner: &mut Inner, ts: u64, writes: &[(EntityId, WriteOp)]) {
        for (entity, op) in writes {
            let chain = inner
                .chains
                .get_mut(entity)
                .expect("publish references a schema entity");
            let tip = chain.last().expect("chains are never empty");
            // A write that does not type against the chain tip (Add on
            // a byte payload) is skipped, mirroring the live apply
            // path's typed skip.
            let Ok(next) = apply_op(*entity, &tip.value, op) else {
                continue;
            };
            self.rings[entity].append(ts, &next);
            chain.push(ChainEntry { ts, value: next });
            inner.total_entries += 1;
            if chain.len() > CHAIN_CAP {
                chain.remove(0);
                inner.total_entries -= 1;
                self.rings[entity].truncate_below(chain[0].ts);
            }
        }
    }

    fn publish_gauges(&self, inner: &Inner) {
        let max_len = inner.chains.values().map(|c| c.len()).max().unwrap_or(0) as u64;
        inner
            .telemetry
            .set_chains(inner.total_entries, max_len, self.gc_floor.load(SeqCst));
    }

    /// Garbage-collects version chains against the low-watermark of
    /// live read-only snapshots: every chain truncates to
    /// "watermark + latest" — the newest entry `≤` watermark plus
    /// everything after it. Returns `(retained entries, longest chain,
    /// watermark)`.
    pub(crate) fn gc(&self) -> (u64, u64, u64) {
        let mut inner = self.inner.lock();
        self.gc_locked(&mut inner)
    }

    fn reader_min(&self) -> Option<u64> {
        self.readers
            .iter()
            .map(|s| s.load(SeqCst))
            .filter(|&s| s != SLOT_FREE)
            .min()
    }

    fn gc_locked(&self, inner: &mut Inner) -> (u64, u64, u64) {
        inner.since_gc = 0;
        let closed = self.closed.load(SeqCst);
        // Lock-free atomic min over the registered snapshot slots; no
        // reader defaults the watermark to the closed clock.
        let mut w = self.reader_min().unwrap_or(closed).min(closed);
        self.gc_floor.store(w, SeqCst);
        // Close the announce/validate race: a reader that registered an
        // older ts after the scan above but before the floor store is
        // caught by re-scanning; its ts lowers the watermark back.
        if let Some(late) = self.reader_min() {
            if late < w {
                w = late;
                self.gc_floor.store(w, SeqCst);
            }
        }
        let mut max_len = 0u64;
        for (entity, chain) in inner.chains.iter_mut() {
            // Index of the newest entry ≤ w. The `CHAIN_CAP` hard
            // bound may already have truncated past the watermark (a
            // long-lived reader cannot pin unbounded history); such a
            // chain keeps everything it still has.
            let keep = chain.iter().rposition(|e| e.ts <= w).unwrap_or(0);
            if keep > 0 {
                inner.total_entries -= keep as u64;
                chain.drain(..keep);
                self.rings[entity].truncate_below(chain[0].ts);
            }
            max_len = max_len.max(chain.len() as u64);
        }
        inner.telemetry.set_chains(inner.total_entries, max_len, w);
        (inner.total_entries, max_len, w)
    }

    /// The chain state at cut `ts`, full fidelity, sorted by entity.
    /// `None` when `ts` is above the closed clock or below what GC /
    /// the chain bound still retains for some entity.
    pub(crate) fn snapshot_at(&self, ts: u64) -> Option<Vec<(EntityId, VersionedValue)>> {
        if ts > self.closed.load(SeqCst) {
            return None;
        }
        let inner = self.inner.lock();
        Self::snapshot_locked(&inner, ts)
    }

    /// The chain state at the *current closed cut*, full fidelity,
    /// sorted by entity. Always succeeds: the closed clock is sampled
    /// **while holding** the inner mutex — GC and the [`CHAIN_CAP`]
    /// trim both run under it, so the sampled cut cannot be truncated
    /// out from under the read. (Sampling `closed_ts()` first and then
    /// calling [`Mvcc::snapshot_at`] is racy: concurrent publishes can
    /// advance the clock and a GC pass can then drop every entry `≤`
    /// the stale sample for some entity.)
    pub(crate) fn snapshot_closed(&self) -> Vec<(EntityId, VersionedValue)> {
        let inner = self.inner.lock();
        let ts = self.closed.load(SeqCst);
        Self::snapshot_locked(&inner, ts)
            .expect("GC retains the newest entry <= closed for every chain")
    }

    fn snapshot_locked(inner: &Inner, ts: u64) -> Option<Vec<(EntityId, VersionedValue)>> {
        let mut out = Vec::with_capacity(inner.chains.len());
        for (entity, chain) in inner.chains.iter() {
            let at = chain.iter().rev().find(|e| e.ts <= ts)?;
            out.push((*entity, at.value.clone()));
        }
        out.sort_by_key(|(e, _)| *e);
        Some(out)
    }

    /// Registers a read-only snapshot: claims a reader slot with a
    /// freshly sampled `closed` ts, then validates the announcement
    /// against `gc_floor` (refreshing until the floor no longer
    /// undercuts it). Lock-free: a CAS per vacant-slot probe plus
    /// bounded refresh loops; yields only while all `RO_SLOTS` slots
    /// are simultaneously occupied (slots are guard-scoped, so a slot
    /// frees as soon as any of the up-to-64 concurrent scans finishes
    /// — even by panic).
    ///
    /// The returned [`SlotGuard`] frees the slot on drop; a leaked
    /// slot would pin the GC watermark (and grow every chain to
    /// [`CHAIN_CAP`]) forever.
    fn register(&self) -> (SlotGuard<'_>, u64) {
        loop {
            let s = self.closed.load(SeqCst);
            for (i, slot) in self.readers.iter().enumerate() {
                if slot.compare_exchange(SLOT_FREE, s, SeqCst, SeqCst).is_ok() {
                    let guard = SlotGuard {
                        mvcc: self,
                        slot: i,
                    };
                    let s = self.validate(i, s);
                    return (guard, s);
                }
            }
            std::thread::yield_now();
        }
    }

    /// Announce-then-validate: GC computes its watermark from the slot
    /// array, so once this returns, every chain truncation keeps the
    /// newest entry `≤` the returned ts reachable.
    fn validate(&self, slot: usize, mut s: u64) -> u64 {
        loop {
            if s >= self.gc_floor.load(SeqCst) {
                return s;
            }
            s = self.closed.load(SeqCst);
            self.readers[slot].store(s, SeqCst);
        }
    }

    /// Refreshes a registered snapshot to the current `closed` ts
    /// (aging recovery: a needed version was capacity-evicted).
    fn refresh(&self, slot: usize) -> u64 {
        let s = self.closed.load(SeqCst);
        self.readers[slot].store(s, SeqCst);
        self.validate(slot, s)
    }

    /// The zero-lock read-only transaction: registers a snapshot ts,
    /// reads the newest version `≤ ts` of every requested entity from
    /// the rings, and unregisters. Acquires **no lock class** — only
    /// atomics.
    ///
    /// If ring-capacity eviction outruns the scan (≥ `RING_CAP`
    /// commits to one entity mid-scan), the whole scan restarts at a
    /// fresh `closed` ts — the result is always a single committed cut.
    ///
    /// # Panics
    /// Panics when an entity is not in the schema — *before* a reader
    /// slot is claimed, and the slot itself is guard-scoped, so neither
    /// this panic nor any later unwind can leak a slot and pin the GC
    /// watermark.
    pub(crate) fn read_only(&self, entities: &[EntityId]) -> RoSnapshot {
        // Resolve every ring up front: public callers
        // (`Engine::run_read_only`) pass unvalidated entity lists.
        let rings: Vec<&Ring> = entities
            .iter()
            .map(|e| {
                self.rings
                    .get(e)
                    .expect("read_only references a schema entity")
            })
            .collect();
        let (guard, mut s) = self.register();
        'scan: loop {
            let mut entries = Vec::with_capacity(entities.len());
            for (&entity, ring) in entities.iter().zip(&rings) {
                match ring.read_at(s) {
                    Some((ts, version, kind, payload)) => entries.push(RoEntry {
                        entity,
                        commit_ts: ts,
                        version,
                        value: (kind == KIND_INT).then_some(payload),
                    }),
                    None => {
                        s = self.refresh(guard.slot);
                        continue 'scan;
                    }
                }
            }
            drop(guard);
            return RoSnapshot { ts: s, entries };
        }
    }
}

/// A claimed read-only reader-pool slot. Freed on drop — panicking
/// scans and early returns cannot leak the slot (a leaked slot would
/// pin the GC watermark forever).
struct SlotGuard<'a> {
    mvcc: &'a Mvcc,
    slot: usize,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.mvcc.readers[self.slot].store(SLOT_FREE, SeqCst);
    }
}

/// An allocated commit timestamp awaiting publication. The closed
/// clock only advances over a *contiguous* timestamp prefix, so once a
/// ts is allocated, something must eventually publish at it — a hole
/// would buffer every later commit in `pending` forever and let
/// read-only snapshots silently go permanently stale. Dropping an
/// unpublished reservation (unwind between allocation and publication,
/// e.g. a WAL I/O panic) publishes an **empty write-set**: the clock
/// closes over the gap, exactly like the gaps recovery already
/// tolerates for timestamps that never became durable.
pub(crate) struct TsReservation<'a> {
    mvcc: &'a Mvcc,
    ts: u64,
    published: bool,
}

impl TsReservation<'_> {
    /// The reserved commit timestamp (log it in the durable record).
    pub(crate) fn ts(&self) -> u64 {
        self.ts
    }

    /// Publishes `writes` at the reserved timestamp (see
    /// [`Mvcc::publish`]).
    pub(crate) fn publish(mut self, writes: Vec<(EntityId, WriteOp)>) {
        // Mark before calling: should publish itself unwind, the Drop
        // impl must not publish the same ts a second time.
        self.published = true;
        self.mvcc.publish(self.ts, writes);
    }
}

impl Drop for TsReservation<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.mvcc.publish(self.ts, Vec::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddlf_model::Database;
    use std::sync::Arc;

    fn db(n: usize) -> Database {
        Database::one_entity_per_site(n)
    }

    fn add(e: u32, delta: i64) -> (EntityId, WriteOp) {
        (EntityId(e), WriteOp::Add(delta))
    }

    #[test]
    fn snapshot_at_zero_is_the_seed() {
        let m = Mvcc::new(&db(3), 7);
        let snap = m.snapshot_at(0).unwrap();
        assert_eq!(snap.len(), 3);
        for (_, v) in &snap {
            assert_eq!(v.version, 0);
            assert_eq!(v.datum, Datum::Int(7));
        }
        assert_eq!(m.closed_ts(), 0);
        assert!(m.snapshot_at(1).is_none(), "nothing committed yet");
    }

    #[test]
    fn publish_applies_whole_transactions_in_ts_order() {
        let m = Mvcc::new(&db(2), 100);
        let t1 = m.alloc_ts();
        let t2 = m.alloc_ts();
        // Out-of-order arrival: t2 buffers until t1 lands.
        m.publish(t2, vec![add(0, -10), add(1, 10)]);
        assert_eq!(m.closed_ts(), 0, "t2 must wait for t1");
        m.publish(t1, vec![add(0, -5), add(1, 5)]);
        assert_eq!(m.closed_ts(), 2);
        let at1 = m.snapshot_at(1).unwrap();
        assert_eq!(at1[0].1.datum, Datum::Int(95));
        assert_eq!(at1[1].1.datum, Datum::Int(105));
        let at2 = m.snapshot_at(2).unwrap();
        assert_eq!(at2[0].1.datum, Datum::Int(85));
        assert_eq!(at2[1].1.datum, Datum::Int(115));
        assert_eq!(at2[0].1.version, 2);
    }

    #[test]
    fn read_only_observes_a_committed_cut() {
        let m = Mvcc::new(&db(2), 50);
        let entities = [EntityId(0), EntityId(1)];
        let snap = m.read_only(&entities);
        assert_eq!(snap.ts, 0);
        assert_eq!(snap.sum_int(), 100);
        m.publish(m.alloc_ts(), vec![add(0, -20), add(1, 20)]);
        let snap = m.read_only(&entities);
        assert_eq!(snap.ts, 1);
        assert_eq!(snap.sum_int(), 100, "transfers conserve the sum");
        assert_eq!(snap.get(EntityId(0)).unwrap().value, Some(30));
        assert_eq!(snap.get(EntityId(0)).unwrap().commit_ts, 1);
        assert_eq!(snap.get(EntityId(0)).unwrap().version, 1);
    }

    #[test]
    fn bytes_payloads_surface_as_none_in_the_ring() {
        let m = Mvcc::new(&db(1), 9);
        m.publish(
            m.alloc_ts(),
            vec![(EntityId(0), WriteOp::PutBytes(vec![1, 2, 3]))],
        );
        let snap = m.read_only(&[EntityId(0)]);
        let e = snap.get(EntityId(0)).unwrap();
        assert_eq!(e.value, None);
        assert_eq!(e.version, 1);
        // The locked master chain keeps full fidelity.
        let full = m.snapshot_at(1).unwrap();
        assert_eq!(full[0].1.datum, Datum::Bytes(vec![1, 2, 3]));
    }

    #[test]
    fn gc_truncates_to_watermark_plus_latest() {
        let m = Mvcc::new(&db(1), 0);
        for _ in 0..10 {
            m.publish(m.alloc_ts(), vec![add(0, 1)]);
        }
        // No live reader: watermark = closed, chains truncate to latest.
        let (total, max_len, w) = m.gc();
        assert_eq!(w, 10);
        assert_eq!(total, 1);
        assert_eq!(max_len, 1);
        assert!(m.snapshot_at(10).is_some());
        assert!(m.snapshot_at(9).is_none(), "9 was truncated");
        // A registered reader pins the watermark.
        let (guard, s) = m.register();
        assert_eq!(s, 10);
        for _ in 0..5 {
            m.publish(m.alloc_ts(), vec![add(0, 1)]);
        }
        let (_, _, w) = m.gc();
        assert_eq!(w, 10, "live snapshot pins the watermark");
        assert!(m.snapshot_at(10).is_some(), "watermark entry retained");
        drop(guard);
        assert!(m.reader_min().is_none(), "guard drop frees the slot");
    }

    #[test]
    fn chains_stay_bounded_without_gc() {
        let m = Mvcc::new(&db(1), 0);
        for _ in 0..(CHAIN_CAP * 3) {
            m.publish(m.alloc_ts(), vec![add(0, 1)]);
        }
        let inner = m.inner.lock();
        assert!(inner.chains[&EntityId(0)].len() <= CHAIN_CAP);
    }

    #[test]
    fn aged_out_reader_restarts_at_a_fresh_cut() {
        let m = Arc::new(Mvcc::new(&db(1), 0));
        // Register at ts 0, then push enough commits to evict ts 0 from
        // the ring entirely: the next read must refresh, not corrupt.
        let (guard, s) = m.register();
        assert_eq!(s, 0);
        for _ in 0..(RING_CAP * 2) {
            m.publish(m.alloc_ts(), vec![add(0, 1)]);
        }
        // Simulate the mid-scan path: read_at at the stale ts fails...
        assert!(m.rings[&EntityId(0)].read_at(s).is_none());
        // ...and the refresh path lands on the new closed cut.
        let s2 = m.refresh(guard.slot);
        assert_eq!(s2, (RING_CAP * 2) as u64);
        assert!(m.rings[&EntityId(0)].read_at(s2).is_some());
    }

    #[test]
    fn dropped_reservation_closes_the_clock_over_the_gap() {
        let m = Mvcc::new(&db(1), 0);
        let r1 = m.reserve_ts();
        assert_eq!(r1.ts(), 1);
        // Simulated panic between allocation and publication: the drop
        // publishes an empty write-set instead of stalling the clock.
        drop(r1);
        assert_eq!(m.closed_ts(), 1, "the clock closes over the abandoned ts");
        m.publish(m.alloc_ts(), vec![add(0, 5)]);
        assert_eq!(m.closed_ts(), 2);
        let snap = m.read_only(&[EntityId(0)]);
        assert_eq!(snap.get(EntityId(0)).unwrap().value, Some(5));
    }

    #[test]
    fn dropped_reservation_releases_buffered_successors() {
        let m = Mvcc::new(&db(1), 0);
        let r1 = m.reserve_ts();
        let r2 = m.reserve_ts();
        r2.publish(vec![add(0, 3)]);
        assert_eq!(m.closed_ts(), 0, "t2 buffers behind the unpublished t1");
        drop(r1);
        assert_eq!(m.closed_ts(), 2, "dropping t1 unblocks the buffered t2");
        assert_eq!(m.read_only(&[EntityId(0)]).sum_int(), 3);
    }

    /// Regression: `Store::snapshot` used to sample `closed_ts()` and
    /// then lock for `snapshot_at`, so a GC pass in the window could
    /// truncate the sampled cut away and panic. `snapshot_closed`
    /// samples the clock under the chain mutex instead.
    #[test]
    fn snapshot_closed_survives_publish_and_gc_churn() {
        const ENTITIES: u32 = 4;
        const INITIAL: u64 = 100;
        let m = Arc::new(Mvcc::new(&db(ENTITIES as usize), INITIAL));
        let writer = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let from = (i % u64::from(ENTITIES)) as u32;
                    let to = ((i + 1) % u64::from(ENTITIES)) as u32;
                    m.publish(m.alloc_ts(), vec![add(from, -1), add(to, 1)]);
                    if i % 3 == 0 {
                        m.gc();
                    }
                }
            })
        };
        while !writer.is_finished() {
            let snap = m.snapshot_closed();
            let sum: u128 = snap
                .iter()
                .filter_map(|(_, v)| v.datum.as_int())
                .map(u128::from)
                .sum();
            assert_eq!(sum, u128::from(INITIAL) * u128::from(ENTITIES));
        }
        writer.join().unwrap();
    }

    #[test]
    fn unknown_entity_panics_without_leaking_a_reader_slot() {
        let m = Arc::new(Mvcc::new(&db(1), 0));
        let m2 = Arc::clone(&m);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            m2.read_only(&[EntityId(0), EntityId(7)])
        }));
        assert!(r.is_err(), "entity 7 is not in the schema");
        assert!(
            m.reader_min().is_none(),
            "a panicking read_only must not leave a registered slot behind"
        );
        // The watermark is unpinned: GC truncates freely.
        for _ in 0..4 {
            m.publish(m.alloc_ts(), vec![add(0, 1)]);
        }
        let (_, _, w) = m.gc();
        assert_eq!(w, 4, "no leaked slot pins the watermark");
    }

    /// The tentpole property in miniature: concurrent writers publish
    /// conserving transfers while readers scan lock-free; every scan
    /// must observe the exact initial sum and versions must be
    /// monotone between scans.
    #[test]
    fn concurrent_transfers_conserve_under_lock_free_scans() {
        const ENTITIES: u32 = 8;
        const INITIAL: u64 = 1_000;
        const WRITERS: usize = 4;
        const COMMITS_PER_WRITER: usize = 300;
        let m = Arc::new(Mvcc::new(&db(ENTITIES as usize), INITIAL));
        let entities: Vec<EntityId> = (0..ENTITIES).map(EntityId).collect();
        let stop = Arc::new(AtomicU64::new(0));

        let readers: Vec<_> = (0..3)
            .map(|_| {
                let m = Arc::clone(&m);
                let entities = entities.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut scans = 0u64;
                    let mut last: HashMap<EntityId, (u64, u64)> = HashMap::new();
                    while stop.load(SeqCst) == 0 {
                        let snap = m.read_only(&entities);
                        assert_eq!(
                            snap.sum_int(),
                            u128::from(INITIAL) * u128::from(ENTITIES),
                            "a lock-free scan observed a torn cut at ts {}",
                            snap.ts
                        );
                        for e in &snap.entries {
                            let (pts, pver) = last.get(&e.entity).copied().unwrap_or((0, 0));
                            assert!(
                                e.commit_ts >= pts && e.version >= pver,
                                "version went backwards on {:?}",
                                e.entity
                            );
                            last.insert(e.entity, (e.commit_ts, e.version));
                        }
                        scans += 1;
                    }
                    scans
                })
            })
            .collect();

        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..COMMITS_PER_WRITER {
                        let from = ((w + i) % ENTITIES as usize) as u32;
                        let to = ((w + i + 1) % ENTITIES as usize) as u32;
                        let ts = m.alloc_ts();
                        m.publish(ts, vec![add(from, -1), add(to, 1)]);
                    }
                })
            })
            .collect();

        for w in writers {
            w.join().unwrap();
        }
        stop.store(1, SeqCst);
        let total_scans: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total_scans > 0, "readers must have scanned at least once");
        assert_eq!(m.closed_ts(), (WRITERS * COMMITS_PER_WRITER) as u64);
        let final_snap = m.read_only(&entities);
        assert_eq!(
            final_snap.sum_int(),
            u128::from(INITIAL) * u128::from(ENTITIES)
        );
    }
}
