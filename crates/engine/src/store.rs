//! The sharded versioned key-value store.
//!
//! Entities live in one shard per database site, mirroring the paper's
//! partition of entities into sites. Each shard owns its values *and*
//! its exclusive lock table behind a single mutex, so a lock grant and
//! the read it authorizes are one critical section — exactly the
//! "scheduler of the site" from §2 of Wolfson & Yannakakis, with data
//! attached.

use crate::template::WriteOp;
use crossbeam::channel::Sender;
use ddlf_model::{Database, EntityId, SiteId, TxnId};
use ddlf_sim::{Acquire, LockTable};
use parking_lot::Mutex;
use std::collections::HashMap;

/// The payload an entity carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Datum {
    /// A 64-bit integer (balances, counters, stock levels).
    Int(u64),
    /// An opaque byte string.
    Bytes(Vec<u8>),
}

impl Datum {
    /// The integer payload, if this is an [`Datum::Int`].
    pub fn as_int(&self) -> Option<u64> {
        match self {
            Datum::Int(n) => Some(*n),
            Datum::Bytes(_) => None,
        }
    }
}

/// A versioned value: every committed write bumps `version`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedValue {
    /// Monotone write counter (0 = never written).
    pub version: u64,
    /// Current payload.
    pub datum: Datum,
}

/// What a lock request returned.
#[derive(Debug)]
pub(crate) enum LockOutcome {
    /// Granted immediately; the caller may now read/write the entity.
    Granted,
    /// Queued behind the current holder; a grant will arrive on the
    /// requester's channel.
    Queued {
        /// The instance currently holding the lock (wait-die examines it).
        holder: TxnId,
    },
}

/// Mutable state of one shard: values plus the site's lock table and the
/// grant-delivery channels of queued requesters.
pub(crate) struct ShardState {
    pub values: HashMap<EntityId, VersionedValue>,
    pub locks: LockTable,
    /// `(instance, entity)` → where to deliver the eventual grant.
    pub waiters: HashMap<(TxnId, EntityId), Sender<EntityId>>,
}

/// One shard: the entities of one [`SiteId`] behind a mutex.
pub struct Shard {
    pub(crate) state: Mutex<ShardState>,
    site: SiteId,
}

impl Shard {
    /// The site this shard serves.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Requests the exclusive lock on `entity` for `instance`. On a
    /// queue, registers `grant_tx` so the releasing thread can hand the
    /// lock (and wake the requester) later.
    pub(crate) fn request(
        &self,
        instance: TxnId,
        entity: EntityId,
        grant_tx: &Sender<EntityId>,
    ) -> LockOutcome {
        let mut st = self.state.lock();
        match st.locks.acquire(instance, entity) {
            Acquire::Granted => LockOutcome::Granted,
            Acquire::Queued { holder } => {
                st.waiters.insert((instance, entity), grant_tx.clone());
                LockOutcome::Queued { holder }
            }
        }
    }

    /// Withdraws a queued request (wait-die victim backing out). Returns
    /// `true` if the request had already been promoted to a hold, in
    /// which case the caller must release it instead.
    pub(crate) fn withdraw(&self, instance: TxnId, entity: EntityId) -> bool {
        let mut st = self.state.lock();
        st.waiters.remove(&(instance, entity));
        if st.locks.holder(entity) == Some(instance) {
            true
        } else {
            st.locks.release(instance, entity); // drops the queue entry
            false
        }
    }

    /// Applies `write` (if any) under the still-held lock, then releases
    /// `entity`, handing the lock to the next FIFO waiter.
    pub(crate) fn write_and_release(
        &self,
        instance: TxnId,
        entity: EntityId,
        write: Option<&WriteOp>,
    ) {
        let mut st = self.state.lock();
        if let Some(w) = write {
            st.apply(entity, w);
        }
        st.release_and_promote(instance, entity);
    }

    /// Reads `entity` without taking a lock (engine-internal snapshots).
    pub(crate) fn peek(&self, entity: EntityId) -> VersionedValue {
        self.state.lock().read(entity)
    }
}

impl ShardState {
    fn read(&mut self, entity: EntityId) -> VersionedValue {
        self.values.get(&entity).cloned().unwrap_or(VersionedValue {
            version: 0,
            datum: Datum::Int(0),
        })
    }

    fn apply(&mut self, entity: EntityId, write: &WriteOp) {
        let slot = self.values.entry(entity).or_insert(VersionedValue {
            version: 0,
            datum: Datum::Int(0),
        });
        match write {
            WriteOp::Add(delta) => {
                let cur = slot.datum.as_int().unwrap_or(0);
                slot.datum = Datum::Int(cur.wrapping_add_signed(*delta));
            }
            WriteOp::Put(v) => slot.datum = Datum::Int(*v),
            WriteOp::PutBytes(b) => slot.datum = Datum::Bytes(b.clone()),
        }
        slot.version += 1;
    }

    /// Releases and hands the lock to the next FIFO waiter, delivering
    /// the grant on the waiter's channel. A waiter whose channel is gone
    /// (its attempt aborted between queueing and promotion) is skipped
    /// and the lock freed onward.
    fn release_and_promote(&mut self, instance: TxnId, entity: EntityId) {
        let mut releasing = instance;
        while let Some(next) = self.locks.release(releasing, entity) {
            if let Some(tx) = self.waiters.remove(&(next, entity)) {
                if tx.send(entity).is_ok() {
                    return; // handed over
                }
            }
            // Waiter vanished: free the lock again on its behalf.
            releasing = next;
        }
    }
}

/// The sharded store: one [`Shard`] per database site.
pub struct Store {
    shards: Vec<Shard>,
    db: Database,
}

impl Store {
    /// Builds a store for `db`, initializing every entity to
    /// `Datum::Int(initial)` at version 0.
    pub fn new(db: &Database, initial: u64) -> Self {
        let mut shards: Vec<Shard> = (0..db.site_count())
            .map(|s| Shard {
                state: Mutex::new(ShardState {
                    values: HashMap::new(),
                    locks: LockTable::new(),
                    waiters: HashMap::new(),
                }),
                site: SiteId::from_index(s),
            })
            .collect();
        for e in db.entities() {
            let site = db.site_of(e);
            shards[site.index()].state.get_mut().values.insert(
                e,
                VersionedValue {
                    version: 0,
                    datum: Datum::Int(initial),
                },
            );
        }
        Self {
            shards,
            db: db.clone(),
        }
    }

    /// The shard owning `entity`.
    pub fn shard_of(&self, entity: EntityId) -> &Shard {
        &self.shards[self.db.site_of(entity).index()]
    }

    /// All shards, in site order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The schema the store was built for.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// A consistent-enough snapshot for post-run assertions (call when
    /// quiescent).
    pub fn snapshot(&self) -> Vec<(EntityId, VersionedValue)> {
        let mut out: Vec<(EntityId, VersionedValue)> = self
            .db
            .entities()
            .map(|e| (e, self.shard_of(e).peek(e)))
            .collect();
        out.sort_by_key(|(e, _)| *e);
        out
    }

    /// Sum of all integer payloads — conservation checks for transfer
    /// workloads.
    pub fn total_int(&self) -> u64 {
        self.snapshot()
            .iter()
            .filter_map(|(_, v)| v.datum.as_int())
            .fold(0u64, u64::wrapping_add)
    }

    /// Sum of all versions — total committed writes.
    pub fn total_versions(&self) -> u64 {
        self.snapshot().iter().map(|(_, v)| v.version).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn store2() -> Store {
        Store::new(&Database::one_entity_per_site(2), 100)
    }

    #[test]
    fn initial_values_seeded() {
        let s = store2();
        assert_eq!(s.total_int(), 200);
        assert_eq!(s.total_versions(), 0);
        assert_eq!(
            s.shard_of(EntityId(0)).peek(EntityId(0)).datum,
            Datum::Int(100)
        );
    }

    #[test]
    fn grant_read_write_release_cycle() {
        let s = store2();
        let e = EntityId(0);
        let (tx, _rx) = unbounded();
        let got = s.shard_of(e).request(TxnId(0), e, &tx);
        assert!(matches!(got, LockOutcome::Granted));
        assert_eq!(s.shard_of(e).peek(e).datum, Datum::Int(100));
        s.shard_of(e)
            .write_and_release(TxnId(0), e, Some(&WriteOp::Add(-30)));
        let after = s.shard_of(e).peek(e);
        assert_eq!(after.datum, Datum::Int(70));
        assert_eq!(after.version, 1);
    }

    #[test]
    fn queued_request_gets_grant_on_release() {
        let s = store2();
        let e = EntityId(0);
        let (tx0, _rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        assert!(matches!(
            s.shard_of(e).request(TxnId(0), e, &tx0),
            LockOutcome::Granted
        ));
        assert!(matches!(
            s.shard_of(e).request(TxnId(1), e, &tx1),
            LockOutcome::Queued { holder: TxnId(0) }
        ));
        s.shard_of(e).write_and_release(TxnId(0), e, None);
        assert_eq!(rx1.try_recv(), Ok(e));
        // T1 now holds it.
        assert_eq!(s.shard_of(e).state.lock().locks.holder(e), Some(TxnId(1)));
    }

    #[test]
    fn vanished_waiter_does_not_wedge_the_lock() {
        let s = store2();
        let e = EntityId(0);
        let (tx0, _rx0) = unbounded();
        assert!(matches!(
            s.shard_of(e).request(TxnId(0), e, &tx0),
            LockOutcome::Granted
        ));
        {
            let (tx1, rx1) = unbounded();
            assert!(matches!(
                s.shard_of(e).request(TxnId(1), e, &tx1),
                LockOutcome::Queued { .. }
            ));
            drop(rx1); // T1's attempt dies without withdrawing
            drop(tx1);
        }
        let (tx2, rx2) = unbounded();
        assert!(matches!(
            s.shard_of(e).request(TxnId(2), e, &tx2),
            LockOutcome::Queued { .. }
        ));
        s.shard_of(e).write_and_release(TxnId(0), e, None);
        // T1's grant bounced; T2 must receive it.
        assert_eq!(rx2.try_recv(), Ok(e));
    }

    #[test]
    fn withdraw_cleans_the_queue() {
        let s = store2();
        let e = EntityId(0);
        let (tx0, _rx0) = unbounded();
        let (tx1, _rx1) = unbounded();
        s.shard_of(e).request(TxnId(0), e, &tx0);
        s.shard_of(e).request(TxnId(1), e, &tx1);
        assert!(!s.shard_of(e).withdraw(TxnId(1), e));
        assert!(s.shard_of(e).state.lock().locks.waiters(e).is_empty());
        s.shard_of(e).write_and_release(TxnId(0), e, None);
        assert_eq!(s.shard_of(e).state.lock().locks.holder(e), None);
    }
}
