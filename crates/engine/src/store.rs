//! The sharded versioned key-value store.
//!
//! Entities live in one shard per database site, mirroring the paper's
//! partition of entities into sites. Each shard owns its values *and*
//! its exclusive lock table behind a single mutex, so a lock grant and
//! the read it authorizes are one critical section — exactly the
//! "scheduler of the site" from §2 of Wolfson & Yannakakis, with data
//! attached.
//!
//! Each shard also keeps a **value/undo log** for its in-flight writers
//! (see [`crate::wal`]): the before-image of every applied write, so a
//! wait-die victim that dies *after* an unlock exposed its write can be
//! rolled back instead of leaving a dirty abort; with a WAL file sink
//! attached, the same records are appended to `shard-<k>.wal` before the
//! in-memory apply, making every committed write replayable after a
//! crash.

use crate::mvcc::{Mvcc, RoSnapshot};
use crate::template::WriteOp;
use crate::wal::{ShardSink, Wal, WalRecord};
use crossbeam::channel::Sender;
use ddlf_model::{Database, EntityId, SiteId, TxnId};
use ddlf_sim::{Acquire, LockTable};
use ddlf_telemetry::{Phase, Telemetry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::sync::Arc;
use std::time::Instant;

/// The payload an entity carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Datum {
    /// A 64-bit integer (balances, counters, stock levels).
    Int(u64),
    /// An opaque byte string.
    Bytes(Vec<u8>),
}

impl Datum {
    /// The integer payload, if this is an [`Datum::Int`].
    pub fn as_int(&self) -> Option<u64> {
        match self {
            Datum::Int(n) => Some(*n),
            Datum::Bytes(_) => None,
        }
    }
}

/// A versioned value: every committed write bumps `version`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedValue {
    /// Monotone write counter (0 = never written).
    pub version: u64,
    /// Current payload.
    pub datum: Datum,
}

/// A write that does not type against the entity's current payload.
/// Previously `Add` on a [`Datum::Bytes`] silently treated the bytes as
/// 0 and clobbered them with an `Int`; now the write is skipped and the
/// skip is counted (see [`crate::Report::writes_skipped`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteError {
    /// `Add` against a byte-string payload — there is no integer to add
    /// to, and guessing 0 would destroy the bytes.
    AddToBytes {
        /// The entity whose payload is bytes.
        entity: EntityId,
    },
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteError::AddToBytes { entity } => {
                write!(f, "Add against byte payload of {entity}: write skipped")
            }
        }
    }
}

impl std::error::Error for WriteError {}

/// Applies `op` to `slot`, returning the new value (version bumped) or
/// the typed error that made it inapplicable. Shared by the live apply
/// path and crash-recovery replay, so a recovered store composes the
/// exact same way the live one did.
pub(crate) fn apply_op(
    entity: EntityId,
    slot: &VersionedValue,
    op: &WriteOp,
) -> Result<VersionedValue, WriteError> {
    let datum = match op {
        WriteOp::Add(delta) => match slot.datum {
            Datum::Int(cur) => Datum::Int(cur.wrapping_add_signed(*delta)),
            Datum::Bytes(_) => return Err(WriteError::AddToBytes { entity }),
        },
        WriteOp::Put(v) => Datum::Int(*v),
        WriteOp::PutBytes(b) => Datum::Bytes(b.clone()),
    };
    Ok(VersionedValue {
        version: slot.version + 1,
        datum,
    })
}

/// What a lock request returned.
#[derive(Debug)]
pub(crate) enum LockOutcome {
    /// Granted immediately; the caller may now read/write the entity.
    Granted,
    /// Queued behind the current holder; a grant will arrive on the
    /// requester's channel.
    Queued {
        /// The instance currently holding the lock (wait-die examines it).
        holder: TxnId,
    },
}

/// Identity of the attempt performing a write, threaded from the
/// executor down to the shard so the value/undo log can attribute every
/// record (and the WAL can key it by globally unique instance id).
#[derive(Debug, Clone, Copy)]
pub(crate) struct WriteCtx {
    /// Run-local instance id (doubles as the lock-table transaction id).
    pub instance: TxnId,
    /// Globally unique instance id within the WAL directory.
    pub gid: u32,
    /// Attempt number.
    pub attempt: u32,
    /// Keep in-memory before-images so the attempt can be rolled back.
    /// On (false on the certified path, which cannot abort).
    pub track_undo: bool,
}

/// How one exposed write was rolled back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UndoOutcome {
    /// No write of this attempt was recorded for the entity.
    None,
    /// Nobody wrote the entity since: the exact pre-attempt
    /// `(datum, version)` was restored.
    Exact,
    /// Later *delta* writers intervened after the dying attempt's
    /// unlock; their accumulated delta was re-based onto the before-
    /// image (and the dead version bump retracted) without disturbing
    /// them.
    Compensated,
    /// A later **absolute** write (`Put`/`PutBytes`) intervened and
    /// already erased every trace of the dead write: the value stands,
    /// only the dead version bump is retracted.
    Erased,
    /// The write cannot be undone soundly (an absolute write over a
    /// byte payload whose delta successors depended on it): the abort
    /// stays dirty and the run's audit is voided.
    Unrecoverable,
}

impl UndoOutcome {
    /// Whether the dead write's effect is fully gone from the store.
    pub(crate) fn rolled_back(self) -> bool {
        matches!(
            self,
            UndoOutcome::Exact | UndoOutcome::Compensated | UndoOutcome::Erased
        )
    }
}

/// One undo-log entry: the images around a single applied write.
#[derive(Debug, Clone)]
struct UndoEntry {
    entity: EntityId,
    before: VersionedValue,
    after: VersionedValue,
    /// The entity's absolute-write count the moment this write landed
    /// (counting this write if it was itself absolute). A different
    /// count at undo time proves an intervening `Put`/`PutBytes` erased
    /// the dead write.
    abs_count: u64,
    /// Shard-wide apply sequence: orders this entry against sibling
    /// in-flight writers of the same entity, so an undo knows which
    /// pending images to repair (see [`ShardState::repair_pending`]).
    seq: u64,
    /// Whether the write was absolute (`Put`/`PutBytes`): its undo must
    /// also retract its bump of the absolute-write witness.
    absolute: bool,
    /// A sibling's undo could not rewrite this entry's images into the
    /// post-rollback timeline; undoing it would be unsound.
    poisoned: bool,
}

/// Mutable state of one shard: values plus the site's lock table, the
/// grant-delivery channels of queued requesters, and the value/undo log
/// of in-flight writers.
pub(crate) struct ShardState {
    pub values: HashMap<EntityId, VersionedValue>,
    pub locks: LockTable,
    /// `(instance, entity)` → where to deliver the eventual grant, and
    /// when the requester queued (measures the true queue wait for the
    /// lock-wait histogram; stamping it is one clock read on the
    /// already-contended path).
    pub waiters: HashMap<(TxnId, EntityId), (Sender<EntityId>, Instant)>,
    /// Before-images of writes applied by in-flight attempts, cleared at
    /// commit, replayed (in reverse) at abort.
    undo: HashMap<TxnId, Vec<UndoEntry>>,
    /// Count of absolute writes (`Put`/`PutBytes`) per entity currently
    /// in the value's timeline — the witness [`Shard::undo_write`] uses
    /// to decide between delta compensation and erased-by-overwrite.
    /// Undoing an absolute write decrements it again, so the witness
    /// always describes the surviving timeline.
    absolute_writes: HashMap<EntityId, u64>,
    /// Monotone apply counter stamping undo entries with their order.
    write_seq: u64,
    /// Optional file sink: `shard-<k>.wal`, written under this mutex so
    /// file order is apply order.
    sink: Option<(ShardSink, Arc<Wal>)>,
    /// Observability handle: promotion records the measured queue wait
    /// into the lock-wait histogram (immediate grants are recorded
    /// executor-side, so each acquisition yields exactly one sample).
    telemetry: Telemetry,
}

/// One shard: the entities of one [`SiteId`] behind a mutex.
pub struct Shard {
    pub(crate) state: Mutex<ShardState>,
    site: SiteId,
}

impl Shard {
    /// The site this shard serves.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Requests the exclusive lock on `entity` for `instance`. On a
    /// queue, registers `grant_tx` so the releasing thread can hand the
    /// lock (and wake the requester) later.
    pub(crate) fn request(
        &self,
        instance: TxnId,
        entity: EntityId,
        grant_tx: &Sender<EntityId>,
    ) -> LockOutcome {
        let mut st = self.state.lock();
        match st.locks.acquire(instance, entity) {
            Acquire::Granted => LockOutcome::Granted,
            Acquire::Queued { holder } => {
                st.waiters
                    .insert((instance, entity), (grant_tx.clone(), Instant::now()));
                LockOutcome::Queued { holder }
            }
        }
    }

    /// Withdraws a queued request (wait-die victim backing out). Returns
    /// `true` if the request had already been promoted to a hold, in
    /// which case the caller must release it instead.
    pub(crate) fn withdraw(&self, instance: TxnId, entity: EntityId) -> bool {
        let mut st = self.state.lock();
        st.waiters.remove(&(instance, entity));
        if st.locks.holder(entity) == Some(instance) {
            true
        } else {
            st.locks.release(instance, entity); // drops the queue entry
            false
        }
    }

    /// Applies `write` (if any) under the still-held lock — logging it
    /// to the value/undo log first — then releases `entity`, handing the
    /// lock to the next FIFO waiter. Returns whether a write was applied
    /// (`Ok(false)` = no write requested), or the typed error of a write
    /// that did not type (the entity is still released).
    pub(crate) fn write_and_release(
        &self,
        ctx: &WriteCtx,
        entity: EntityId,
        write: Option<&WriteOp>,
    ) -> Result<bool, WriteError> {
        let mut st = self.state.lock();
        let applied = match write {
            Some(w) => st.apply_logged(ctx, entity, w),
            None => Ok(false),
        };
        st.release_and_promote(ctx.instance, entity);
        applied
    }

    /// Releases `entity` without writing (abort path, plain unlock of a
    /// dying attempt's held locks).
    pub(crate) fn release(&self, instance: TxnId, entity: EntityId) {
        self.state.lock().release_and_promote(instance, entity);
    }

    /// Drops the undo entries of a committing instance (its writes are
    /// now permanent).
    pub(crate) fn commit_clear(&self, instance: TxnId) {
        self.state.lock().undo.remove(&instance);
    }

    /// Rolls back the write `instance` applied to `entity`, if any.
    /// Three sound cases, decided under the shard mutex:
    ///
    /// * **Exact** — nothing intervened (`current == after`): restore
    ///   the before-image verbatim.
    /// * **Erased** — an intervening *absolute* write (`Put`/`PutBytes`,
    ///   witnessed by the entity's absolute-write counter) has already
    ///   destroyed every trace of the dead write; the current value
    ///   stands and only the dead version bump is retracted.
    /// * **Compensated** — only *delta* writers intervened: re-base
    ///   their accumulated delta (`current − after`) onto the
    ///   before-image, which removes exactly the dead write (works for
    ///   a dead `Add` *and* a dead `Put` over an integer).
    ///
    /// The one remaining unsound corner — delta successors that rode on
    /// a dead absolute write over a *byte* payload — stays
    /// [`UndoOutcome::Unrecoverable`] (a dirty abort).
    ///
    /// A successful rollback also rewrites the images of **still-pending
    /// sibling writers** of the entity into the post-rollback timeline
    /// ([`ShardState::repair_pending`]): without that, two overlapping
    /// doomed writers could resurrect the first victim's write out of
    /// the second victim's stale before-image. The restoration is logged
    /// to the shard's WAL sink.
    pub(crate) fn undo_write(&self, ctx: &WriteCtx, entity: EntityId) -> UndoOutcome {
        let mut st = self.state.lock();
        let Some(entries) = st.undo.get_mut(&ctx.instance) else {
            return UndoOutcome::None;
        };
        let Some(pos) = entries.iter().rposition(|e| e.entity == entity) else {
            return UndoOutcome::None;
        };
        let entry = entries.remove(pos);
        if entries.is_empty() {
            st.undo.remove(&ctx.instance);
        }
        if entry.poisoned {
            return UndoOutcome::Unrecoverable;
        }
        let current = st.read(entity);
        let (restored, outcome) = if current == entry.after {
            // Untouched since our write: exact restore.
            (entry.before.clone(), UndoOutcome::Exact)
        } else if st.absolute_writes.get(&entity).copied().unwrap_or(0) != entry.abs_count {
            // A later Put/PutBytes overwrote us: its value owes nothing
            // to the dead write (and later deltas rode on *it*), so the
            // dead write is already gone — keep the value, retract the
            // dead version bump.
            (
                VersionedValue {
                    version: current.version.saturating_sub(1),
                    datum: current.datum.clone(),
                },
                UndoOutcome::Erased,
            )
        } else if let (Datum::Int(before), Datum::Int(cur), Datum::Int(after)) =
            (&entry.before.datum, &current.datum, &entry.after.datum)
        {
            // Only deltas intervened: current = after + Σdeltas, so
            // before + (current − after) removes exactly our write while
            // keeping every later delta.
            (
                VersionedValue {
                    version: current.version.saturating_sub(1),
                    datum: Datum::Int(before.wrapping_add(cur.wrapping_sub(*after))),
                },
                UndoOutcome::Compensated,
            )
        } else {
            // No sound reconstruction (delta successors rode on a dead
            // absolute write over a byte payload).
            return UndoOutcome::Unrecoverable;
        };
        st.repair_pending(&entry);
        if let Some((sink, wal)) = st.sink.as_mut() {
            let rec = WalRecord::Undo {
                gid: ctx.gid,
                entity,
                restored: restored.clone(),
            };
            wal.append_shard(sink, &rec);
        }
        st.values.insert(entity, restored);
        outcome
    }

    /// Reads `entity` without taking a lock (engine-internal snapshots).
    pub(crate) fn peek(&self, entity: EntityId) -> VersionedValue {
        self.state.lock().read(entity)
    }
}

impl ShardState {
    fn read(&self, entity: EntityId) -> VersionedValue {
        self.values.get(&entity).cloned().unwrap_or(VersionedValue {
            version: 0,
            datum: Datum::Int(0),
        })
    }

    /// Applies one write: computes the new value, appends the record to
    /// the value/undo log (file first — write-ahead — then the in-memory
    /// before-image), and only then mutates the store.
    fn apply_logged(
        &mut self,
        ctx: &WriteCtx,
        entity: EntityId,
        write: &WriteOp,
    ) -> Result<bool, WriteError> {
        let before = self.read(entity);
        let after = apply_op(entity, &before, write)?;
        if let Some((sink, wal)) = self.sink.as_mut() {
            let rec = WalRecord::Write {
                gid: ctx.gid,
                attempt: ctx.attempt,
                entity,
                op: write.clone(),
                before: before.clone(),
                after: after.clone(),
            };
            wal.append_shard(sink, &rec);
        }
        let absolute = matches!(write, WriteOp::Put(_) | WriteOp::PutBytes(_));
        if absolute {
            *self.absolute_writes.entry(entity).or_insert(0) += 1;
        }
        if ctx.track_undo {
            self.write_seq += 1;
            self.undo.entry(ctx.instance).or_default().push(UndoEntry {
                entity,
                before,
                after: after.clone(),
                abs_count: self.absolute_writes.get(&entity).copied().unwrap_or(0),
                seq: self.write_seq,
                absolute,
                poisoned: false,
            });
        }
        self.values.insert(entity, after);
        Ok(true)
    }

    /// Rewrites the undo images of still-pending sibling writers after
    /// `undone`'s write left the timeline. Every later image loses the
    /// retracted version bump; an image that still *rode on* the dead
    /// write — no absolute write detached it, witnessed by the
    /// per-entity absolute counters — additionally has the dead effect
    /// removed from its datum (delta re-base, or the exact before-image
    /// when it equalled the dead after-image). An image that cannot be
    /// rewritten (byte payloads with no arithmetic) poisons its entry:
    /// that entry's own undo later reports [`UndoOutcome::Unrecoverable`]
    /// instead of restoring a corrupt image. If the undone write was
    /// absolute, its witness bump is retracted from the counter and from
    /// every later entry's recorded count.
    fn repair_pending(&mut self, undone: &UndoEntry) {
        let delta = match (&undone.before.datum, &undone.after.datum) {
            (Datum::Int(b), Datum::Int(a)) => Some(a.wrapping_sub(*b)),
            _ => None,
        };
        let fix = |img: &mut VersionedValue, img_abs: u64| -> bool {
            let ok = if img_abs != undone.abs_count {
                // A later absolute write already detached this image
                // from the dead write; only the version shifts.
                true
            } else if *img == undone.after {
                img.datum = undone.before.datum.clone();
                true
            } else if let (Some(d), Datum::Int(v)) = (delta, &img.datum) {
                img.datum = Datum::Int(v.wrapping_sub(d));
                true
            } else {
                false
            };
            img.version = img.version.saturating_sub(1);
            ok
        };
        for e in self
            .undo
            .values_mut()
            .flat_map(|v| v.iter_mut())
            .filter(|e| e.entity == undone.entity && e.seq > undone.seq)
        {
            let before_ok = fix(&mut e.before, e.abs_count - u64::from(e.absolute));
            let after_ok = fix(&mut e.after, e.abs_count);
            e.poisoned |= !(before_ok && after_ok);
            if undone.absolute {
                e.abs_count = e.abs_count.saturating_sub(1);
            }
        }
        if undone.absolute {
            if let Some(c) = self.absolute_writes.get_mut(&undone.entity) {
                *c = c.saturating_sub(1);
            }
        }
    }

    /// Releases and hands the lock to the next FIFO waiter, delivering
    /// the grant on the waiter's channel. A waiter whose channel is gone
    /// (its attempt aborted between queueing and promotion) is skipped
    /// and the lock freed onward.
    fn release_and_promote(&mut self, instance: TxnId, entity: EntityId) {
        let mut releasing = instance;
        while let Some(next) = self.locks.release(releasing, entity) {
            if let Some((tx, since)) = self.waiters.remove(&(next, entity)) {
                if tx.send(entity).is_ok() {
                    // The promoted waiter's queue wait, measured from the
                    // moment it queued to the hand-over — the parked
                    // (certified) path's lock-wait sample.
                    self.telemetry.record(Phase::LockWait, since.elapsed());
                    return; // handed over
                }
            }
            // Waiter vanished: free the lock again on its behalf.
            releasing = next;
        }
    }
}

/// The sharded store: one [`Shard`] per database site.
///
/// Alongside the live shard values the store keeps a multiversion
/// history: bounded per-entity chains of committed `(commit_ts,
/// VersionedValue)` versions fed by the commit path, serving the
/// zero-lock read-only snapshot path ([`Store::read_only_snapshot`])
/// and the snapshot-at-ts reads ([`Store::snapshot_at`]). See
/// [`crate::mvcc`] and the "Multiversion snapshot reads" section of
/// `ARCHITECTURE.md`.
pub struct Store {
    shards: Vec<Shard>,
    db: Database,
    mvcc: Mvcc,
}

impl Store {
    /// Builds a store for `db`, initializing every entity to
    /// `Datum::Int(initial)` at version 0.
    pub fn new(db: &Database, initial: u64) -> Self {
        Self::build(db, initial)
    }

    /// [`Store::new`] with the per-shard value logs attached to `wal`
    /// (one `shard-<k>.wal` file per shard, append mode).
    pub(crate) fn with_wal(db: &Database, initial: u64, wal: &Arc<Wal>) -> io::Result<Self> {
        let mut store = Self::build(db, initial);
        store.attach_wal(wal)?;
        Ok(store)
    }

    fn build(db: &Database, initial: u64) -> Self {
        let mut shards: Vec<Shard> = (0..db.site_count())
            .map(|s| Shard {
                state: Mutex::new_named(
                    "shard.state",
                    ShardState {
                        values: HashMap::new(),
                        locks: LockTable::new(),
                        waiters: HashMap::new(),
                        undo: HashMap::new(),
                        absolute_writes: HashMap::new(),
                        write_seq: 0,
                        sink: None,
                        telemetry: Telemetry::disabled(),
                    },
                ),
                site: SiteId::from_index(s),
            })
            .collect();
        for e in db.entities() {
            let site = db.site_of(e);
            shards[site.index()].state.get_mut().values.insert(
                e,
                VersionedValue {
                    version: 0,
                    datum: Datum::Int(initial),
                },
            );
        }
        Self {
            shards,
            db: db.clone(),
            mvcc: Mvcc::new(db, initial),
        }
    }

    /// Replays a WAL directory into a fresh store and re-audits the
    /// recovered history — see [`crate::wal::recover`], which this
    /// forwards to.
    pub fn recover(
        dir: impl AsRef<std::path::Path>,
    ) -> Result<crate::wal::Recovered, crate::wal::WalError> {
        crate::wal::recover(dir)
    }

    /// Re-applies one committed write during recovery (no locks, no
    /// logging: recovery is single-threaded over a private store).
    pub(crate) fn replay_write(
        &mut self,
        entity: EntityId,
        op: &WriteOp,
    ) -> Result<(), WriteError> {
        let shard = self.db.site_of(entity).index();
        let st = self.shards[shard].state.get_mut();
        let before = st.read(entity);
        let after = apply_op(entity, &before, op)?;
        st.values.insert(entity, after);
        Ok(())
    }

    /// Attaches per-shard WAL sinks to a recovered store so a resumed
    /// engine keeps appending to the same directory.
    pub(crate) fn attach_wal(&mut self, wal: &Arc<Wal>) -> io::Result<()> {
        for (k, shard) in self.shards.iter_mut().enumerate() {
            shard.state.get_mut().sink = Some((wal.open_shard_log(k)?, Arc::clone(wal)));
        }
        Ok(())
    }

    /// Hands every shard the engine's telemetry handle so lock
    /// promotions can record measured queue waits. Called once at
    /// engine construction, before any worker can touch a shard.
    pub(crate) fn set_telemetry(&mut self, telemetry: &Telemetry) {
        for shard in &mut self.shards {
            shard.state.get_mut().telemetry = telemetry.clone();
        }
        self.mvcc.set_telemetry(telemetry);
    }

    /// The shard owning `entity`.
    pub fn shard_of(&self, entity: EntityId) -> &Shard {
        &self.shards[self.db.site_of(entity).index()]
    }

    /// All shards, in site order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The schema the store was built for.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// A true committed snapshot: the multiversion chain state at the
    /// current closed commit timestamp, sorted by entity. Safe to call
    /// while writers churn — the closed clock is sampled under the
    /// same lock that GC and the chain-capacity trim hold, so the cut
    /// is always retained, and it reflects whole committed
    /// transactions only, applied in commit-timestamp order.
    ///
    /// **Commit-ts order caveat:** chains apply write-sets in commit-
    /// timestamp order, while the live shards apply writes at lock-
    /// release time — under early lock release the two orders can
    /// invert. Deltas ([`WriteOp::Add`]) commute, so for delta-only
    /// workloads the chain tip provably equals the live committed
    /// value at quiescence ([`Store::chain_divergence`] cross-checks
    /// this); with absolute writes (`Put`/`PutBytes`) the tip can
    /// legitimately differ from the live shard value. See the
    /// [`crate::mvcc`] module docs.
    ///
    /// For values mutated *outside* the commit path (uncommitted
    /// writes, direct shard manipulation) use [`Store::live_snapshot`].
    pub fn snapshot(&self) -> Vec<(EntityId, VersionedValue)> {
        self.mvcc.snapshot_closed()
    }

    /// The committed chain state at cut `ts` (full datum fidelity,
    /// brief `store.mvcc` lock). `None` when `ts` is ahead of the
    /// closed clock or behind what GC still retains.
    pub fn snapshot_at(&self, ts: u64) -> Option<Vec<(EntityId, VersionedValue)>> {
        self.mvcc.snapshot_at(ts)
    }

    /// The raw *live* shard values, uncommitted writes included — only
    /// consistent when quiescent. Post-run assertions about committed
    /// state should prefer [`Store::snapshot`].
    pub fn live_snapshot(&self) -> Vec<(EntityId, VersionedValue)> {
        let mut out: Vec<(EntityId, VersionedValue)> = self
            .db
            .entities()
            .map(|e| (e, self.shard_of(e).peek(e)))
            .collect();
        out.sort_by_key(|(e, _)| *e);
        out
    }

    /// The zero-lock read-only transaction: scans the newest committed
    /// version `≤` a freshly claimed snapshot ts for every entity in
    /// `entities`, without acquiring any lock class. See
    /// [`crate::mvcc`] for the protocol.
    pub fn read_only_snapshot(&self, entities: &[EntityId]) -> RoSnapshot {
        self.mvcc.read_only(entities)
    }

    /// The closed prefix of the commit clock — the ts a new read-only
    /// snapshot would observe.
    pub fn commit_ts(&self) -> u64 {
        self.mvcc.closed_ts()
    }

    /// Explicitly garbage-collects version chains against the
    /// low-watermark of live read-only snapshots (also runs
    /// automatically every few hundred commits). Returns `(retained
    /// versions, longest chain, watermark)`.
    pub fn gc_versions(&self) -> (u64, u64, u64) {
        self.mvcc.gc()
    }

    /// Reserves the next commit timestamp (commit path only). The
    /// reservation publishes an empty write-set if dropped
    /// unpublished, so a panic between allocation and
    /// [`Store::publish_commit`] (WAL I/O, say) cannot stall the
    /// closed clock — and with it every later commit's visibility —
    /// forever.
    pub(crate) fn reserve_commit_ts(&self) -> crate::mvcc::TsReservation<'_> {
        self.mvcc.reserve_ts()
    }

    /// Publishes a committed write-set at the reserved timestamp into
    /// the version chains (commit path only; call after the commit
    /// record is durable).
    pub(crate) fn publish_commit(
        &self,
        ts: crate::mvcc::TsReservation<'_>,
        writes: Vec<(EntityId, WriteOp)>,
    ) {
        ts.publish(writes);
    }

    /// Recovery-path publication: rebuilds the chain state for commit
    /// `ts` directly (callers feed commits in ascending ts order).
    pub(crate) fn publish_recovered(&self, ts: u64, writes: &[(EntityId, WriteOp)]) {
        self.mvcc.publish_recovered(ts, writes);
    }

    /// Sum of all committed integer payloads — conservation checks for
    /// transfer workloads. Widened to `u128`: the old `u64` wrapping
    /// sum could let a non-conserving run wrap back onto the expected
    /// total and pass its conservation check.
    ///
    /// Reads the committed chains, so the delta-only caveat of
    /// [`Store::snapshot`] applies: with absolute writes in the mix,
    /// prefer [`Store::live_snapshot`] sums at quiescence.
    pub fn total_int(&self) -> u128 {
        self.snapshot()
            .iter()
            .filter_map(|(_, v)| v.datum.as_int())
            .map(u128::from)
            .sum()
    }

    /// Sum of all committed versions — total committed writes.
    pub fn total_versions(&self) -> u64 {
        self.snapshot().iter().map(|(_, v)| v.version).sum()
    }

    /// Quiescent cross-check of the store's two value representations:
    /// the entities whose committed-chain tip datum differs from the
    /// live shard datum. Meaningful only with no transaction in flight
    /// (live values include uncommitted writes).
    ///
    /// For **delta-only** workloads any divergence is a bug — deltas
    /// commute, so commit-ts/lock-order inversions cannot change the
    /// tip — and the engine debug-asserts this empty at the end of
    /// every delta-only run. With absolute writes (`Put`/`PutBytes`) a
    /// commit-ts inversion can legitimately leave the two tips
    /// diverged; see the [`crate::mvcc`] module docs.
    pub fn chain_divergence(&self) -> Vec<EntityId> {
        self.snapshot()
            .iter()
            .zip(self.live_snapshot().iter())
            .filter(|((e, chain), (le, live))| {
                debug_assert_eq!(e, le, "both snapshots are entity-sorted");
                chain.datum != live.datum
            })
            .map(|((e, _), _)| *e)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn store2() -> Store {
        Store::new(&Database::one_entity_per_site(2), 100)
    }

    fn ctx(instance: u32) -> WriteCtx {
        WriteCtx {
            instance: TxnId(instance),
            gid: instance,
            attempt: 0,
            track_undo: true,
        }
    }

    #[test]
    fn initial_values_seeded() {
        let s = store2();
        assert_eq!(s.total_int(), 200);
        assert_eq!(s.total_versions(), 0);
        assert_eq!(
            s.shard_of(EntityId(0)).peek(EntityId(0)).datum,
            Datum::Int(100)
        );
    }

    #[test]
    fn grant_read_write_release_cycle() {
        let s = store2();
        let e = EntityId(0);
        let (tx, _rx) = unbounded();
        let got = s.shard_of(e).request(TxnId(0), e, &tx);
        assert!(matches!(got, LockOutcome::Granted));
        assert_eq!(s.shard_of(e).peek(e).datum, Datum::Int(100));
        assert_eq!(
            s.shard_of(e)
                .write_and_release(&ctx(0), e, Some(&WriteOp::Add(-30))),
            Ok(true)
        );
        let after = s.shard_of(e).peek(e);
        assert_eq!(after.datum, Datum::Int(70));
        assert_eq!(after.version, 1);
    }

    #[test]
    fn queued_request_gets_grant_on_release() {
        let s = store2();
        let e = EntityId(0);
        let (tx0, _rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        assert!(matches!(
            s.shard_of(e).request(TxnId(0), e, &tx0),
            LockOutcome::Granted
        ));
        assert!(matches!(
            s.shard_of(e).request(TxnId(1), e, &tx1),
            LockOutcome::Queued { holder: TxnId(0) }
        ));
        s.shard_of(e).write_and_release(&ctx(0), e, None).unwrap();
        assert_eq!(rx1.try_recv(), Ok(e));
        // T1 now holds it.
        assert_eq!(s.shard_of(e).state.lock().locks.holder(e), Some(TxnId(1)));
    }

    #[test]
    fn vanished_waiter_does_not_wedge_the_lock() {
        let s = store2();
        let e = EntityId(0);
        let (tx0, _rx0) = unbounded();
        assert!(matches!(
            s.shard_of(e).request(TxnId(0), e, &tx0),
            LockOutcome::Granted
        ));
        {
            let (tx1, rx1) = unbounded();
            assert!(matches!(
                s.shard_of(e).request(TxnId(1), e, &tx1),
                LockOutcome::Queued { .. }
            ));
            drop(rx1); // T1's attempt dies without withdrawing
            drop(tx1);
        }
        let (tx2, rx2) = unbounded();
        assert!(matches!(
            s.shard_of(e).request(TxnId(2), e, &tx2),
            LockOutcome::Queued { .. }
        ));
        s.shard_of(e).write_and_release(&ctx(0), e, None).unwrap();
        // T1's grant bounced; T2 must receive it.
        assert_eq!(rx2.try_recv(), Ok(e));
    }

    #[test]
    fn withdraw_cleans_the_queue() {
        let s = store2();
        let e = EntityId(0);
        let (tx0, _rx0) = unbounded();
        let (tx1, _rx1) = unbounded();
        s.shard_of(e).request(TxnId(0), e, &tx0);
        s.shard_of(e).request(TxnId(1), e, &tx1);
        assert!(!s.shard_of(e).withdraw(TxnId(1), e));
        assert!(s.shard_of(e).state.lock().locks.waiters(e).is_empty());
        s.shard_of(e).write_and_release(&ctx(0), e, None).unwrap();
        assert_eq!(s.shard_of(e).state.lock().locks.holder(e), None);
    }

    #[test]
    fn add_to_bytes_is_a_typed_skip_not_a_clobber() {
        let s = store2();
        let e = EntityId(0);
        let (tx, _rx) = unbounded();
        s.shard_of(e).request(TxnId(0), e, &tx);
        s.shard_of(e)
            .write_and_release(&ctx(0), e, Some(&WriteOp::PutBytes(vec![7, 8])))
            .unwrap();
        s.shard_of(e).request(TxnId(1), e, &tx);
        // The old behavior treated the bytes as 0 and installed Int(3).
        assert_eq!(
            s.shard_of(e)
                .write_and_release(&ctx(1), e, Some(&WriteOp::Add(3))),
            Err(WriteError::AddToBytes { entity: e })
        );
        let v = s.shard_of(e).peek(e);
        assert_eq!(v.datum, Datum::Bytes(vec![7, 8]), "payload untouched");
        assert_eq!(v.version, 1, "skipped write must not bump the version");
        // The lock was still released.
        assert_eq!(s.shard_of(e).state.lock().locks.holder(e), None);
    }

    #[test]
    fn abort_restores_exact_pre_attempt_value_and_version() {
        let s = store2();
        let e = EntityId(0);
        let (tx, _rx) = unbounded();
        // A committed write first, so the pre-attempt version is nonzero.
        s.shard_of(e).request(TxnId(0), e, &tx);
        s.shard_of(e)
            .write_and_release(&ctx(0), e, Some(&WriteOp::Add(11)))
            .unwrap();
        s.shard_of(e).commit_clear(TxnId(0));
        let pre = s.shard_of(e).peek(e);
        assert_eq!((pre.version, pre.datum.clone()), (1, Datum::Int(111)));

        // The doomed attempt writes and unlocks (the dirty-abort shape),
        // then dies: the exact (datum, version) must come back.
        let c = ctx(1);
        s.shard_of(e).request(c.instance, e, &tx);
        s.shard_of(e)
            .write_and_release(&c, e, Some(&WriteOp::Add(-40)))
            .unwrap();
        assert_eq!(s.shard_of(e).peek(e).datum, Datum::Int(71));
        assert_eq!(s.shard_of(e).undo_write(&c, e), UndoOutcome::Exact);
        assert_eq!(s.shard_of(e).peek(e), pre);
        // Idempotent: the entry is consumed.
        assert_eq!(s.shard_of(e).undo_write(&c, e), UndoOutcome::None);
    }

    #[test]
    fn undo_compensates_add_when_a_later_writer_intervened() {
        let s = store2();
        let e = EntityId(0);
        let (tx, _rx) = unbounded();
        // Doomed attempt 0 writes +50 and unlocks.
        let c0 = ctx(0);
        s.shard_of(e).request(c0.instance, e, &tx);
        s.shard_of(e)
            .write_and_release(&c0, e, Some(&WriteOp::Add(50)))
            .unwrap();
        // Instance 1 sneaks in, writes +7, commits.
        s.shard_of(e).request(TxnId(1), e, &tx);
        s.shard_of(e)
            .write_and_release(&ctx(1), e, Some(&WriteOp::Add(7)))
            .unwrap();
        s.shard_of(e).commit_clear(TxnId(1));
        // Undo of instance 0 must keep instance 1's committed +7.
        assert_eq!(s.shard_of(e).undo_write(&c0, e), UndoOutcome::Compensated);
        let v = s.shard_of(e).peek(e);
        assert_eq!(v.datum, Datum::Int(107));
        assert_eq!(v.version, 1, "only the committed write remains counted");
    }

    #[test]
    fn undo_after_intervening_put_keeps_the_put_not_the_inverse_delta() {
        // The unsound-compensation regression: a committed Put after the
        // dead Add already erased the dead delta, so subtracting it
        // again would corrupt the committed value (200 → 150).
        let s = store2();
        let e = EntityId(0);
        let (tx, _rx) = unbounded();
        let c0 = ctx(0);
        s.shard_of(e).request(c0.instance, e, &tx);
        s.shard_of(e)
            .write_and_release(&c0, e, Some(&WriteOp::Add(50)))
            .unwrap();
        s.shard_of(e).request(TxnId(1), e, &tx);
        s.shard_of(e)
            .write_and_release(&ctx(1), e, Some(&WriteOp::Put(200)))
            .unwrap();
        s.shard_of(e).commit_clear(TxnId(1));
        assert_eq!(s.shard_of(e).undo_write(&c0, e), UndoOutcome::Erased);
        let v = s.shard_of(e).peek(e);
        assert_eq!(v.datum, Datum::Int(200), "the absolute write stands");
        assert_eq!(v.version, 1, "only the committed write remains counted");
    }

    #[test]
    fn undo_of_overwritten_put_is_erased_and_keeps_the_overwrite() {
        let s = store2();
        let e = EntityId(0);
        let (tx, _rx) = unbounded();
        let c0 = ctx(0);
        s.shard_of(e).request(c0.instance, e, &tx);
        s.shard_of(e)
            .write_and_release(&c0, e, Some(&WriteOp::Put(5)))
            .unwrap();
        // A later PutBytes destroyed every trace of the dead Put.
        s.shard_of(e).request(TxnId(1), e, &tx);
        s.shard_of(e)
            .write_and_release(&ctx(1), e, Some(&WriteOp::PutBytes(vec![1])))
            .unwrap();
        s.shard_of(e).commit_clear(TxnId(1));
        assert_eq!(s.shard_of(e).undo_write(&c0, e), UndoOutcome::Erased);
        let v = s.shard_of(e).peek(e);
        // The later committed write stays; the dead version bump is gone.
        assert_eq!(v.datum, Datum::Bytes(vec![1]));
        assert_eq!(v.version, 1);
    }

    #[test]
    fn undo_of_dead_put_under_delta_interference_rebases_the_deltas() {
        // Dead Put(500) over Int(100), then a committed Add(+7) rode on
        // the 500. Removing the Put re-bases the +7 onto the before-
        // image: 107 — the generalized delta compensation.
        let s = store2();
        let e = EntityId(0);
        let (tx, _rx) = unbounded();
        let c0 = ctx(0);
        s.shard_of(e).request(c0.instance, e, &tx);
        s.shard_of(e)
            .write_and_release(&c0, e, Some(&WriteOp::Put(500)))
            .unwrap();
        s.shard_of(e).request(TxnId(1), e, &tx);
        s.shard_of(e)
            .write_and_release(&ctx(1), e, Some(&WriteOp::Add(7)))
            .unwrap();
        s.shard_of(e).commit_clear(TxnId(1));
        assert_eq!(s.shard_of(e).undo_write(&c0, e), UndoOutcome::Compensated);
        let v = s.shard_of(e).peek(e);
        assert_eq!(v.datum, Datum::Int(107));
        assert_eq!(v.version, 1);
    }

    #[test]
    fn overlapping_doomed_writers_cannot_resurrect_a_dead_delta() {
        // Two victims on one entity: A (Add +50) then B (Put 200), both
        // still in flight when A is undone. A's undo sees B's absolute
        // write and reports Erased — but it must also rewrite B's stale
        // before-image (which embeds A's +50), or B's later undo
        // restores 150 and A's dead delta survives both rollbacks.
        let s = store2();
        let e = EntityId(0);
        let (tx, _rx) = unbounded();
        let a = ctx(0);
        let b = ctx(1);
        s.shard_of(e).request(a.instance, e, &tx);
        s.shard_of(e)
            .write_and_release(&a, e, Some(&WriteOp::Add(50)))
            .unwrap();
        s.shard_of(e).request(b.instance, e, &tx);
        s.shard_of(e)
            .write_and_release(&b, e, Some(&WriteOp::Put(200)))
            .unwrap();
        assert_eq!(s.shard_of(e).undo_write(&a, e), UndoOutcome::Erased);
        assert_eq!(s.shard_of(e).undo_write(&b, e), UndoOutcome::Exact);
        let v = s.shard_of(e).peek(e);
        assert_eq!((v.version, v.datum), (0, Datum::Int(100)));
    }

    #[test]
    fn overlapping_doomed_writers_undo_in_reverse_order_too() {
        let s = store2();
        let e = EntityId(0);
        let (tx, _rx) = unbounded();
        let a = ctx(0);
        let b = ctx(1);
        s.shard_of(e).request(a.instance, e, &tx);
        s.shard_of(e)
            .write_and_release(&a, e, Some(&WriteOp::Add(50)))
            .unwrap();
        s.shard_of(e).request(b.instance, e, &tx);
        s.shard_of(e)
            .write_and_release(&b, e, Some(&WriteOp::Put(200)))
            .unwrap();
        assert_eq!(s.shard_of(e).undo_write(&b, e), UndoOutcome::Exact);
        assert_eq!(s.shard_of(e).undo_write(&a, e), UndoOutcome::Exact);
        let v = s.shard_of(e).peek(e);
        assert_eq!((v.version, v.datum), (0, Datum::Int(100)));
    }

    #[test]
    fn undoing_an_absolute_write_retracts_the_witness() {
        // Victim W (Add +50) is in flight when victim A lands Put(999)
        // on top and is undone first (Exact). If A's undo left the
        // absolute-write witness at 1, W's later undo — after a
        // committed +7 intervened — would see witness ≠ recorded count,
        // classify (falsely) as Erased, and keep its own dead +50.
        let s = store2();
        let e = EntityId(0);
        let (tx, _rx) = unbounded();
        let w = ctx(0);
        s.shard_of(e).request(w.instance, e, &tx);
        s.shard_of(e)
            .write_and_release(&w, e, Some(&WriteOp::Add(50)))
            .unwrap();
        let a = ctx(1);
        s.shard_of(e).request(a.instance, e, &tx);
        s.shard_of(e)
            .write_and_release(&a, e, Some(&WriteOp::Put(999)))
            .unwrap();
        assert_eq!(s.shard_of(e).undo_write(&a, e), UndoOutcome::Exact);
        s.shard_of(e).request(TxnId(2), e, &tx);
        s.shard_of(e)
            .write_and_release(&ctx(2), e, Some(&WriteOp::Add(7)))
            .unwrap();
        s.shard_of(e).commit_clear(TxnId(2));
        assert_eq!(s.shard_of(e).undo_write(&w, e), UndoOutcome::Compensated);
        let v = s.shard_of(e).peek(e);
        assert_eq!((v.version, v.datum), (1, Datum::Int(107)));
    }

    #[test]
    fn three_interleaved_doomed_deltas_undo_middle_first() {
        let s = store2();
        let e = EntityId(0);
        let (tx, _rx) = unbounded();
        let cs: Vec<WriteCtx> = (0..3).map(ctx).collect();
        for (c, d) in cs.iter().zip([10i64, 20, 30]) {
            s.shard_of(e).request(c.instance, e, &tx);
            s.shard_of(e)
                .write_and_release(c, e, Some(&WriteOp::Add(d)))
                .unwrap();
        }
        assert_eq!(s.shard_of(e).peek(e).datum, Datum::Int(160));
        assert_eq!(
            s.shard_of(e).undo_write(&cs[1], e),
            UndoOutcome::Compensated
        );
        assert_eq!(
            s.shard_of(e).undo_write(&cs[0], e),
            UndoOutcome::Compensated
        );
        assert_eq!(s.shard_of(e).undo_write(&cs[2], e), UndoOutcome::Exact);
        let v = s.shard_of(e).peek(e);
        assert_eq!((v.version, v.datum), (0, Datum::Int(100)));
    }

    #[test]
    fn commit_clear_makes_writes_permanent() {
        let s = store2();
        let e = EntityId(1);
        let (tx, _rx) = unbounded();
        let c = ctx(0);
        s.shard_of(e).request(c.instance, e, &tx);
        s.shard_of(e)
            .write_and_release(&c, e, Some(&WriteOp::Add(1)))
            .unwrap();
        s.shard_of(e).commit_clear(c.instance);
        assert_eq!(s.shard_of(e).undo_write(&c, e), UndoOutcome::None);
        assert_eq!(s.shard_of(e).peek(e).datum, Datum::Int(101));
    }

    #[test]
    fn widened_conservation_sum_cannot_wrap() {
        let db = Database::one_entity_per_site(2);
        let s = Store::new(&db, u64::MAX);
        // Two entities at u64::MAX used to wrap to 2^64 - 2 under the
        // old wrapping u64 sum.
        assert_eq!(s.total_int(), 2 * u128::from(u64::MAX));
    }

    mod undo_properties {
        use super::*;
        use proptest::prelude::*;

        /// `(kind, int payload)` → a concrete op; bytes payloads derive
        /// from the integer so the whole op space stays reachable.
        fn op_of((kind, n): (u8, i64)) -> WriteOp {
            match kind % 3 {
                0 => WriteOp::Add(n),
                1 => WriteOp::Put(n as u64),
                _ => WriteOp::PutBytes(n.to_le_bytes()[..(n as usize % 9)].to_vec()),
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Any sequence of writes by a doomed attempt, undone in
            /// full, restores the exact pre-attempt `(datum, version)`
            /// for every touched entity — the tentpole invariant that
            /// makes wait-die aborts clean.
            #[test]
            fn full_undo_restores_exact_pre_attempt_state(
                initial in any::<u64>(),
                committed_prefix in prop::collection::vec((0u32..2, (any::<u8>(), any::<i64>())), 0..6),
                doomed in prop::collection::vec((0u32..2, (any::<u8>(), any::<i64>())), 1..8),
            ) {
                let s = store2_with(initial);
                let (tx, _rx) = unbounded();
                // A committed history first, so versions are nonzero.
                for (i, (e, raw)) in committed_prefix.iter().enumerate() {
                    let e = EntityId(*e);
                    let c = ctx(i as u32);
                    s.shard_of(e).request(c.instance, e, &tx);
                    let _ = s.shard_of(e).write_and_release(&c, e, Some(&op_of(*raw)));
                    s.shard_of(e).commit_clear(c.instance);
                }
                let pre = s.live_snapshot();

                // The doomed attempt applies its writes (each entity at
                // most once, like a template program), then dies.
                let c = ctx(1_000);
                let mut touched = Vec::new();
                for (e, raw) in &doomed {
                    let e = EntityId(*e);
                    if touched.contains(&e) {
                        continue;
                    }
                    s.shard_of(e).request(c.instance, e, &tx);
                    if s.shard_of(e).write_and_release(&c, e, Some(&op_of(*raw))).is_ok() {
                        touched.push(e);
                    }
                }
                for e in touched.iter().rev() {
                    let out = s.shard_of(*e).undo_write(&c, *e);
                    prop_assert_eq!(out, UndoOutcome::Exact, "no interference ⇒ exact");
                }
                prop_assert_eq!(s.live_snapshot(), pre);
            }

            /// With arbitrary interfering committed writes between the
            /// doomed write and its undo, the rolled-back store equals
            /// the gold standard: the committed ops replayed on the
            /// pre-attempt state (exactly what `wal::recover` computes).
            #[test]
            fn undo_under_interference_matches_committed_only_replay(
                initial in 0u64..1_000_000,
                dead_raw in (any::<u8>(), -1_000i64..1_000),
                live_raws in prop::collection::vec((any::<u8>(), -1_000i64..1_000), 1..4),
            ) {
                let s = store2_with(initial);
                let e = EntityId(0);
                let (tx, _rx) = unbounded();
                let doomed = ctx(0);
                s.shard_of(e).request(doomed.instance, e, &tx);
                s.shard_of(e)
                    .write_and_release(&doomed, e, Some(&op_of(dead_raw)))
                    .unwrap();
                // Interfering committed writes after the doomed unlock;
                // some may be typed skips (Add on bytes).
                let mut expected = VersionedValue {
                    version: 0,
                    datum: Datum::Int(initial),
                };
                for (i, raw) in live_raws.iter().enumerate() {
                    let c = ctx(1 + i as u32);
                    s.shard_of(e).request(c.instance, e, &tx);
                    let _ = s.shard_of(e).write_and_release(&c, e, Some(&op_of(*raw)));
                    s.shard_of(e).commit_clear(c.instance);
                    if let Ok(v) = apply_op(e, &expected, &op_of(*raw)) {
                        expected = v;
                    }
                }

                let out = s.shard_of(e).undo_write(&doomed, e);
                prop_assert!(out.rolled_back(), "{out:?}");
                // Caveat: a committed Add that was skipped live (it met
                // the doomed PutBytes) but types against the pre-attempt
                // Int state diverges semantically; exclude that corner —
                // it is the Bytes/Int boundary, not undo math.
                let skipped_divergence = matches!(op_of(dead_raw), WriteOp::PutBytes(_))
                    && live_raws.iter().any(|r| matches!(op_of(*r), WriteOp::Add(_)));
                if !skipped_divergence {
                    prop_assert_eq!(s.shard_of(e).peek(e), expected);
                }
            }

            /// ≥2 doomed writers overlap on one entity, interleaved with
            /// committed writers, and are undone in an arbitrary order:
            /// every undo must roll back and the store must end at
            /// exactly the committed-only state (datum *and* version) —
            /// the overlapping-victims regression class. Int ops only;
            /// the byte corners are exercised below and may honestly
            /// report `Unrecoverable`.
            #[test]
            fn interleaved_doomed_writers_fully_undo_in_any_order(
                initial in 0u64..1_000_000,
                writers in prop::collection::vec(
                    (any::<bool>(), 0u8..2, -1_000i64..1_000),
                    2..7,
                ),
                order_keys in prop::collection::vec(any::<u32>(), 7..8),
            ) {
                let s = store2_with(initial);
                let e = EntityId(0);
                let (tx, _rx) = unbounded();
                let mut expected = VersionedValue {
                    version: 0,
                    datum: Datum::Int(initial),
                };
                let mut doomed = Vec::new();
                for (i, (doom, kind, n)) in writers.iter().enumerate() {
                    let op = match kind % 2 {
                        0 => WriteOp::Add(*n),
                        _ => WriteOp::Put(*n as u64),
                    };
                    let c = ctx(i as u32);
                    s.shard_of(e).request(c.instance, e, &tx);
                    s.shard_of(e).write_and_release(&c, e, Some(&op)).unwrap();
                    // The first two writers are always victims, so every
                    // case has overlapping doomed attempts.
                    if *doom || i < 2 {
                        doomed.push(c);
                    } else {
                        s.shard_of(e).commit_clear(c.instance);
                        expected = apply_op(e, &expected, &op).unwrap();
                    }
                }
                let mut order: Vec<usize> = (0..doomed.len()).collect();
                order.sort_by_key(|&i| order_keys[i]);
                for &i in &order {
                    let out = s.shard_of(e).undo_write(&doomed[i], e);
                    prop_assert!(out.rolled_back(), "victim {i}: {out:?}");
                }
                prop_assert_eq!(s.shard_of(e).peek(e), expected);
            }

            /// The full op space (including `PutBytes`): a rollback that
            /// *claims* to be clean — every undo reports `rolled_back` —
            /// must restore the exact pre-attempt state, in every undo
            /// order. The byte corners may instead report
            /// `Unrecoverable` (an honest dirty abort), but never a
            /// silent corruption dressed as a clean rollback.
            #[test]
            fn overlapping_victims_never_fake_a_clean_rollback(
                initial in any::<u64>(),
                raws in prop::collection::vec((any::<u8>(), any::<i64>()), 2..6),
                order_keys in prop::collection::vec(any::<u32>(), 6..7),
            ) {
                let s = store2_with(initial);
                let e = EntityId(0);
                let (tx, _rx) = unbounded();
                let pre = s.shard_of(e).peek(e);
                let mut doomed = Vec::new();
                for (i, raw) in raws.iter().enumerate() {
                    let c = ctx(i as u32);
                    s.shard_of(e).request(c.instance, e, &tx);
                    // An `Add` meeting a byte payload is a typed skip:
                    // nothing applied, nothing to undo.
                    if s.shard_of(e).write_and_release(&c, e, Some(&op_of(*raw))).is_ok() {
                        doomed.push(c);
                    }
                }
                let mut order: Vec<usize> = (0..doomed.len()).collect();
                order.sort_by_key(|&i| order_keys[i]);
                let mut all_clean = true;
                for &i in &order {
                    all_clean &= s.shard_of(e).undo_write(&doomed[i], e).rolled_back();
                }
                if all_clean {
                    prop_assert_eq!(s.shard_of(e).peek(e), pre);
                }
            }
        }

        fn store2_with(initial: u64) -> Store {
            Store::new(&Database::one_entity_per_site(2), initial)
        }
    }
}
