//! # ddlf-engine — a sharded transactional key-value execution engine
//! with certify-then-run admission control
//!
//! Wolfson & Yannakakis (PODS 1985) prove that a *statically certified*
//! system of locked transactions needs **no deadlock detector at
//! runtime**: every schedule is serializable and every partial schedule
//! completable. `ddlf-core` computes those certificates and `ddlf-sim`
//! simulates lock traffic — this crate is where the payoff lands on a
//! real data path: an in-memory, multi-threaded, sharded key-value store
//! whose admission control *is* the paper's certifier.
//!
//! ## Architecture
//!
//! ```text
//!   TransactionSystem ──register──▶ TemplateRegistry
//!                                     │ certify_safe_and_deadlock_free
//!                                     │ (run once, verdict cached)
//!                        ┌────────────┴──────────────┐
//!                 Certified                     Fallback
//!            `Nothing` policy:              wait-die w/ retry:
//!            block on FIFO grants,          poll, re-check rule,
//!            no detector, no timeout,       younger dies, backoff
//!            zero aborts possible           bounded attempts
//!                        └────────────┬──────────────┘
//!                                 Executor (worker pool)
//!                                     │ partial-order-respecting
//!                                     │ lock acquisition
//!                                  Store: one Shard per SiteId
//!                                  { values + LockTable } per mutex
//!                                     │
//!                                  History ──▶ D(S) audit
//! ```
//!
//! * [`store`] — entities carry versioned `u64`/bytes payloads, sharded
//!   by [`ddlf_model::SiteId`]; each shard owns its values *and* its
//!   [`ddlf_sim::LockTable`] behind one `parking_lot` mutex, so a grant
//!   and the read it authorizes are a single critical section.
//! * [`template`] — transaction shapes are registered once; the verdict
//!   of [`ddlf_core::certify_safe_and_deadlock_free`] is cached.
//!   Certified systems run under the `Nothing` policy; uncertified ones
//!   fall back to wait-die. Templates carry data [`Program`]s (reads on
//!   every lock; `Add`/`Put` writes applied at unlock under the lock).
//! * [`executor`] — a worker pool drains the instance queue, walks each
//!   transaction's partial order, and appends every effective
//!   lock/unlock to a shared [`ddlf_sim::History`]; the committed
//!   projection is audited with the model's `D(S)` serializability test.
//! * [`report`] — throughput / latency / abort metrics following the
//!   `ddlf_sim::metrics` conventions.
//!
//! An *admission gate* serializes instances of the same template: the
//! in-flight mix is then always (an execution of) a subsystem of the
//! certified system, which is exactly the situation the paper's theorems
//! quantify over.
//!
//! ## Example
//!
//! ```
//! use ddlf_engine::{Engine, EngineConfig};
//! use ddlf_model::{Database, Op, EntityId, Transaction, TransactionSystem};
//!
//! // Two transfers locking x, y in the same global order: certified.
//! let db = Database::one_entity_per_site(2);
//! let ops = [
//!     Op::lock(EntityId(0)), Op::lock(EntityId(1)),
//!     Op::unlock(EntityId(0)), Op::unlock(EntityId(1)),
//! ];
//! let t1 = Transaction::from_total_order("T1", &ops, &db).unwrap();
//! let t2 = Transaction::from_total_order("T2", &ops, &db).unwrap();
//! let sys = TransactionSystem::new(db, vec![t1, t2]).unwrap();
//!
//! let engine = Engine::new(sys, EngineConfig {
//!     threads: 2,
//!     instances: 8,
//!     ..Default::default()
//! });
//! assert!(engine.registry().verdict().is_certified());
//! let report = engine.run();
//! assert!(report.all_committed());
//! assert_eq!(report.aborted_attempts, 0);     // the paper's payoff
//! assert_eq!(report.serializable, Some(true)); // audited, not assumed
//! ```

#![warn(missing_docs)]

pub mod executor;
pub mod report;
pub mod store;
pub mod template;

pub use executor::{run_system, Engine, EngineConfig};
pub use report::{LatencyStats, Report};
pub use store::{Datum, Shard, Store, VersionedValue};
pub use template::{AdmissionVerdict, Program, Template, TemplateRegistry, WriteOp};
