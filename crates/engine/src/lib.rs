//! # ddlf-engine — a sharded transactional key-value execution engine
//! with certify-then-run admission control
//!
//! Wolfson & Yannakakis (PODS 1985) prove that a *statically certified*
//! system of locked transactions needs **no deadlock detector at
//! runtime**: every schedule is serializable and every partial schedule
//! completable. `ddlf-core` computes those certificates and `ddlf-sim`
//! simulates lock traffic — this crate is where the payoff lands on a
//! real data path: an in-memory, multi-threaded, sharded key-value store
//! whose admission control *is* the paper's certifier.
//!
//! ## Architecture
//!
//! ```text
//!   TransactionSystem ──register_with(inflation)──▶ TemplateRegistry
//!                             │ certify_inflated / max_certified_inflation
//!                             │ (Thm 3/4 on the inflated system; Thm 5 ⇒ k = ∞;
//!                             │  exhaustive DF-only fallback; floor k = 1)
//!                             ▼
//!                      AdmissionPlan: k_t slots per template
//!                             │ sizes one SlotGate (counting
//!                             │ semaphore) per template
//!              ┌──────────────┴────────────────────┐
//!       Certified / CertifiedDeadlockFree     Fallback
//!        `Nothing` policy:                wait-die w/ retry:
//!        block on FIFO grants,            poll, re-check rule,
//!        no detector, no timeout,         younger dies, backoff;
//!        zero aborts possible             a victim's exposed writes
//!              │                          roll back via the undo log
//!              └──────────────┬────────────────────┘
//!                        Executor (worker pool)
//!                             │ SlotGate.acquire() ⇒ in-flight mix is a
//!                             │ subsystem of the certified inflated system
//!                             │ partial-order-respecting lock acquisition
//!                          Store: one Shard per SiteId
//!                          { values + LockTable + undo log } per mutex
//!                             │                  │
//!                             │   Wal (optional file sink, framed records)
//!                             │     shard-<k>.wal   Write/Undo per shard
//!                             │     commit.wal      Begin/Commit/Abort
//!                             │     history.wal     lock/unlock events
//!                             │                  │
//!                             │        wal::recover(dir): replay committed
//!                             │        ops ▶ fresh Store ▶ re-run D(S)
//!                             ▼
//!                          History ──▶ streaming D(S) audit
//!                             │        (incremental; live verdict —
//!                             │         batch audit is the oracle)
//!                          Report: certified k vs achieved peak,
//!                          aborts (rolled back vs dirty), latency,
//!                          per-phase histograms, per template
//! ```
//!
//! Every stage above also emits into a shared [`Telemetry`] handle
//! carried by [`EngineConfig::telemetry`] (re-exported from
//! `ddlf-telemetry`): phase-latency histograms (gate wait, lock wait,
//! execute, undo, WAL append, fsync, commit), per-template outcome
//! counters, gauges, and a sampled instance-lifecycle trace ring. The
//! default handle is disabled and near-free; see the "Telemetry
//! dataflow" section of `ARCHITECTURE.md` for where each timer starts
//! and stops.
//!
//! The engine's *own* mutexes follow a fixed global hierarchy —
//! `server.engine` ▷ `template.slot_gate` / `shard.state` /
//! `history.shared` ▷ the `wal.*` classes — documented in the "Lock
//! discipline" section of `ARCHITECTURE.md` and registered class by
//! class at each `Mutex::new_named` site. Building with `--features
//! lockdep` arms the `ddlf-lockdep` validator inside the vendored
//! `parking_lot` shim: lock-order cycles, fsyncs under a non-allowlisted
//! lock, and undisciplined condvar waits are caught on the *first*
//! instrumented run to reach them (the `lockdep` CI job runs the whole
//! suite that way with `DDLF_LOCKDEP=fail`).
//!
//! * [`store`] — entities carry versioned `u64`/bytes payloads, sharded
//!   by [`ddlf_model::SiteId`]; each shard owns its values *and* its
//!   [`ddlf_sim::LockTable`] behind one `parking_lot` mutex, so a grant
//!   and the read it authorizes are a single critical section.
//! * [`template`] — transaction shapes are registered once; the verdict
//!   of [`ddlf_core::certify_inflated`] (or the plain certifier when no
//!   inflation is requested) is cached as an [`AdmissionPlan`] of
//!   certified slots per template, enforced by counting [`SlotGate`]s.
//!   Certified inflations run under the `Nothing` policy; uncertified
//!   systems fall back to wait-die. Templates carry data [`Program`]s
//!   (reads on every lock; `Add`/`Put` writes applied at unlock under
//!   the lock).
//! * [`executor`] — a worker pool drains the instance queue, walks each
//!   transaction's partial order, and appends every effective
//!   lock/unlock to a shared [`ddlf_sim::History`]; each event is also
//!   fed live to an incremental
//!   [`StreamingAuditor`](ddlf_model::incremental::StreamingAuditor),
//!   so the `D(S)` serializability verdict is already sealed when the
//!   run drains (debug builds cross-check it against the batch oracle).
//! * [`report`] — throughput / latency / abort metrics following the
//!   `ddlf_sim::metrics` conventions.
//! * [`wal`] — the per-shard value/undo log behind both the wait-die
//!   rollback (no more dirty aborts: the audit covers non-two-phase
//!   fallback runs too) and the optional write-ahead file sink whose
//!   [`wal::recover`] replays committed operations into a fresh store
//!   and re-audits the recovered history after a crash.
//!
//! Concurrency is a *certified quantity*: each template's [`SlotGate`]
//! admits at most its certified `k_t` live instances (∞ under Theorem 5,
//! the conservative 1 when a requested inflation fails to certify), so
//! the in-flight mix is always (an execution of) a subsystem of a
//! *certified* system — exactly the situation the paper's theorems
//! quantify over.
//!
//! ## Example
//!
//! ```
//! use ddlf_engine::{Engine, EngineConfig};
//! use ddlf_model::{Database, Op, EntityId, Transaction, TransactionSystem};
//!
//! // Two transfers locking x, y in the same global order: certified.
//! let db = Database::one_entity_per_site(2);
//! let ops = [
//!     Op::lock(EntityId(0)), Op::lock(EntityId(1)),
//!     Op::unlock(EntityId(0)), Op::unlock(EntityId(1)),
//! ];
//! let t1 = Transaction::from_total_order("T1", &ops, &db).unwrap();
//! let t2 = Transaction::from_total_order("T2", &ops, &db).unwrap();
//! let sys = TransactionSystem::new(db, vec![t1, t2]).unwrap();
//!
//! let engine = Engine::new(sys, EngineConfig {
//!     threads: 2,
//!     instances: 8,
//!     ..Default::default()
//! });
//! assert!(engine.registry().verdict().is_certified());
//! let report = engine.run();
//! assert!(report.all_committed());
//! assert_eq!(report.aborted_attempts, 0);     // the paper's payoff
//! assert_eq!(report.serializable, Some(true)); // audited, not assumed
//! ```

#![warn(missing_docs)]

pub mod executor;
pub mod mvcc;
pub mod replay;
pub mod report;
pub mod store;
pub mod template;
pub mod wal;

pub use executor::{run_system, Engine, EngineConfig};
pub use mvcc::{RoEntry, RoSnapshot};
pub use replay::{replay_schedule, ReplayError, ReplayReport};
pub use report::{LatencyStats, Report, TemplateReport};
pub use store::{Datum, Shard, Store, VersionedValue, WriteError};
pub use template::{
    AdmissionOptions, AdmissionPlan, AdmissionVerdict, Inflation, Program, SlotGate, SlotGuard,
    Slots, Template, TemplateRegistry, WriteOp,
};
pub use wal::{
    recover, GroupEntry, Recovered, Wal, WalError, WalOptions, WalRecord, DEFAULT_MAX_GROUP,
    DEFAULT_WAL_BUFFER,
};

// The observability layer the engine emits into, re-exported so callers
// configuring [`EngineConfig::telemetry`] need not depend on the
// `ddlf-telemetry` crate directly.
pub use ddlf_telemetry::{
    Phase, PhaseSnapshot, SpanEvent, SpanKind, Telemetry, TelemetryConfig, TelemetrySnapshot,
    TemplateSnapshot,
};
