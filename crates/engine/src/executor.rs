//! The worker-pool executor: drains a queue of transaction instances,
//! acquires locks across shards in partial-order-respecting order, and
//! applies the template's reads/writes.
//!
//! Two lock-wait disciplines, selected by the cached admission verdict:
//!
//! * **Certified (`Nothing` policy)** — a worker issues every ready lock
//!   request, parks on its grant channel, and *never* times out, aborts,
//!   or consults a detector. Safety and deadlock-freedom of the
//!   registered system's certified inflation (Theorems 3/4, or Theorem 5
//!   for unbounded copies) make this correct; each template's counting
//!   [`SlotGate`](crate::template::SlotGate) keeps the in-flight mix a
//!   subsystem of the certified inflated system.
//! * **Fallback (wait-die)** — lock waits are polls that re-check the
//!   wait-die rule against the *current* holder each round (re-checking
//!   keeps every sustained wait older→younger, so no cycle can close);
//!   younger requesters abort, back off, and retry with their original
//!   timestamp.
//!
//! Every effective lock/unlock is appended to a shared
//! [`ddlf_sim::History`] **and** fed — from inside the same timestamp
//! critical section — to an incremental
//! [`StreamingAuditor`], so
//! the engine keeps a *live* `D(S)` verdict instead of re-running the
//! quadratic batch audit per report. Commit/abort decisions flow to the
//! same auditor (aborted attempts contribute nothing to the committed
//! projection); the batch [`ddlf_sim::History::audit`] remains the
//! oracle and cross-checks every run in debug builds.

use crate::report::{LatencyStats, Report, TemplateReport};
use crate::store::{LockOutcome, Store, UndoOutcome, WriteCtx};
use crate::template::{AdmissionOptions, Template, TemplateRegistry};
use crate::wal::{Recovered, Wal, WalOptions};
use crossbeam::channel::{unbounded, Receiver, Sender};
use ddlf_model::incremental::StreamingAuditor;
use ddlf_model::{EntityId, Prefix, Transaction, TransactionSystem, TxnId};
use ddlf_sim::SharedHistory;
use ddlf_telemetry::{Phase, SpanEvent, SpanKind, Telemetry, TemplateTable};
use parking_lot::Mutex;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::HashSet;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Largest instance count the debug-build batch-oracle cross-check will
/// rebuild a per-instance audit system for. The oracle re-audits the
/// whole history from scratch, so beyond this many instances a debug
/// test would stall for minutes; larger runs keep the streaming verdict
/// alone. Overridable via `DDLF_BATCH_ORACLE_CAP` (0 disables the
/// cross-check entirely).
#[cfg(debug_assertions)]
fn batch_oracle_cap() -> usize {
    std::env::var("DDLF_BATCH_ORACLE_CAP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads draining the instance queue.
    pub threads: usize,
    /// Total transaction instances to run (assigned round-robin over the
    /// registered templates). Capped at `u32::MAX`; [`Engine::run`]
    /// panics beyond that (instance ids double as wait-die timestamps).
    pub instances: usize,
    /// Attempt budget per instance on the wait-die path (the certified
    /// path needs exactly one).
    pub max_attempts: u32,
    /// Base retry backoff after a wait-die abort (jittered).
    pub backoff: Duration,
    /// Poll interval while an older requester waits on the fallback path.
    pub poll: Duration,
    /// Simulated per-lock work while holding the grant (widens contention
    /// windows; keep zero for raw throughput).
    pub work: Duration,
    /// RNG seed for jitter.
    pub seed: u64,
    /// Initial integer payload of every entity.
    pub initial_value: u64,
    /// Run wait-die even when the system certifies (for benchmarking the
    /// cost of not trusting the certificate).
    pub force_fallback: bool,
    /// Write-ahead log directory: every write, commit decision, and
    /// history event is appended durably (one value log per shard; see
    /// [`crate::wal`]) so [`crate::wal::recover`] can replay the store
    /// after a crash. `None` = in-memory only (the undo log still runs).
    pub wal_dir: Option<PathBuf>,
    /// `fsync` the commit decision log on every commit (see
    /// [`WalOptions::sync`]).
    pub wal_sync: bool,
    /// Group commit: `Some(max_group)` lets committing workers share one
    /// decision frame, one data-log flush, and (under `wal_sync`) one
    /// fsync per group of up to `max_group` commits (see
    /// [`WalOptions::group_commit`]). `None` = one decision record (and
    /// fsync) per commit. Ignored without `wal_dir`.
    pub group_commit: Option<usize>,
    /// Admission batch size: workers claim instances from the run queue
    /// in chunks of up to this many, admitting each chunk under one
    /// gate acquisition per template and one decision-log lock for its
    /// `Begin` records — amortizing the per-instance admission critical
    /// sections. `1` (the default) admits exactly like the unbatched
    /// engine. Chunk instances execute sequentially on their worker, so
    /// certified slot accounting is unchanged.
    pub admission_batch: usize,
    /// Observability handle shared by the executor, the store's shards,
    /// and the WAL: phase-latency histograms, per-template counters,
    /// gauges, and the sampled lifecycle trace ring. The default
    /// [`Telemetry::disabled`] handle costs one branch per
    /// instrumentation point (see `ddlf_telemetry`); `ddlf-audit run`
    /// and `serve` enable histograms by default.
    pub telemetry: Telemetry,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            instances: 64,
            max_attempts: 1000,
            backoff: Duration::from_micros(300),
            poll: Duration::from_micros(50),
            work: Duration::ZERO,
            seed: 0,
            initial_value: 1_000,
            force_fallback: false,
            wal_dir: None,
            wal_sync: false,
            group_commit: None,
            admission_batch: 1,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// The sharded execution engine: a certified-or-not template registry,
/// the versioned store, and a worker pool.
pub struct Engine {
    registry: TemplateRegistry,
    /// Shared so the lock-free read-only snapshot path (wire `ReadOnly`
    /// requests, `run --readers` scanner threads) can read concurrently
    /// with a run without holding any engine reference.
    store: Arc<Store>,
    cfg: EngineConfig,
    /// The write-ahead log, when `cfg.wal_dir` asked for one.
    wal: Option<Arc<Wal>>,
    /// Cumulative outcome of every run so far, maintained by
    /// [`Report::absorb`]; `None` until the first non-empty run. Behind a
    /// mutex so concurrent runs (e.g. wire submissions) merge safely.
    cumulative: Mutex<Option<Report>>,
}

#[derive(Debug, Clone, Copy)]
struct Instance {
    /// Global instance id; doubles as the wait-die timestamp (smaller =
    /// older) and as the transaction id in the audited history.
    id: u32,
    template: TxnId,
}

#[derive(Debug, Default, Clone)]
struct Outcome {
    committed_attempt: Option<u32>,
    aborts: u32,
    dirty_aborts: u32,
    rolled_back: u64,
    reads: u64,
    writes: u64,
    writes_skipped: u64,
    latency_us: u64,
}

enum AttemptResult {
    Committed {
        reads: u64,
        writes: u64,
        writes_skipped: u64,
    },
    Died {
        /// Exposed writes rolled back via the shard undo logs.
        rolled_back: u32,
        /// Exposed writes that could *not* be rolled back (clobbered
        /// absolute writes) — the only aborts still counted dirty.
        unrecovered: u32,
    },
}

impl Engine {
    /// Builds an engine over `sys`: certifies it (cached in the
    /// registry) and initializes the sharded store.
    pub fn new(sys: TransactionSystem, cfg: EngineConfig) -> Self {
        Self::with_admission(sys, AdmissionOptions::default(), cfg)
    }

    /// Builds an engine over `sys` with an explicit admission request
    /// (inflation + certifier options).
    ///
    /// # Panics
    /// Panics when `cfg.wal_dir` is set and the log directory cannot be
    /// created (use [`Engine::try_with_admission`] for the fallible
    /// form).
    pub fn with_admission(
        sys: TransactionSystem,
        admission: AdmissionOptions,
        cfg: EngineConfig,
    ) -> Self {
        Self::try_with_admission(sys, admission, cfg).expect("WAL directory usable")
    }

    /// [`Engine::with_admission`], surfacing WAL I/O errors instead of
    /// panicking.
    pub fn try_with_admission(
        sys: TransactionSystem,
        admission: AdmissionOptions,
        cfg: EngineConfig,
    ) -> io::Result<Self> {
        let registry = TemplateRegistry::register_with(sys, admission);
        Self::try_with_registry(registry, cfg)
    }

    /// Builds an engine from an already-certified registry (custom
    /// programs installed).
    ///
    /// # Panics
    /// Panics when `cfg.wal_dir` is set and unusable (see
    /// [`Engine::try_with_registry`]).
    pub fn with_registry(registry: TemplateRegistry, cfg: EngineConfig) -> Self {
        Self::try_with_registry(registry, cfg).expect("WAL directory usable")
    }

    /// [`Engine::with_registry`], surfacing WAL I/O errors.
    pub fn try_with_registry(registry: TemplateRegistry, cfg: EngineConfig) -> io::Result<Self> {
        let (mut store, wal) = match &cfg.wal_dir {
            None => (Store::new(registry.system().db(), cfg.initial_value), None),
            Some(dir) => {
                let wal = Wal::create(
                    dir.clone(),
                    registry.system(),
                    cfg.initial_value,
                    WalOptions {
                        sync: cfg.wal_sync,
                        group_commit: cfg.group_commit,
                        telemetry: cfg.telemetry.clone(),
                        ..WalOptions::default()
                    },
                )?;
                let store = Store::with_wal(registry.system().db(), cfg.initial_value, &wal)?;
                (store, Some(wal))
            }
        };
        store.set_telemetry(&cfg.telemetry);
        Self::install_template_counters(&registry, &cfg.telemetry);
        Ok(Self {
            registry,
            store: Arc::new(store),
            cfg,
            wal,
            cumulative: Mutex::new_named("engine.cumulative", None),
        })
    }

    /// Rebuilds an engine from a recovered WAL directory: the registry
    /// is re-certified from the recovered system, the store starts from
    /// the replayed committed state, and the WAL resumes appending to
    /// the same directory with instance ids above everything already
    /// logged. `cfg.wal_dir`/`initial_value` are overridden by the
    /// recovery.
    pub fn from_recovered(
        rec: Recovered,
        admission: AdmissionOptions,
        mut cfg: EngineConfig,
        dir: impl Into<PathBuf>,
    ) -> io::Result<Self> {
        let dir = dir.into();
        let wal = Wal::resume(
            dir.clone(),
            rec.next_base,
            WalOptions {
                sync: cfg.wal_sync,
                group_commit: cfg.group_commit,
                telemetry: cfg.telemetry.clone(),
                ..WalOptions::default()
            },
        )?;
        let mut store = rec.store;
        store.attach_wal(&wal)?;
        store.set_telemetry(&cfg.telemetry);
        cfg.wal_dir = Some(dir);
        cfg.initial_value = rec.initial_value;
        let registry = TemplateRegistry::register_with(rec.system, admission);
        Self::install_template_counters(&registry, &cfg.telemetry);
        Ok(Self {
            registry,
            store: Arc::new(store),
            cfg,
            wal: Some(wal),
            cumulative: Mutex::new_named("engine.cumulative", None),
        })
    }

    /// (Re)installs the per-template outcome counter table for this
    /// engine's registered system, resetting any previous counts — a
    /// new registration means new template identities.
    fn install_template_counters(registry: &TemplateRegistry, telemetry: &Telemetry) {
        if telemetry.is_enabled() {
            let names: Vec<String> = registry
                .system()
                .iter()
                .map(|(_, t)| t.name().to_string())
                .collect();
            telemetry.install_templates(&names);
        }
    }

    /// The template registry (with its cached verdict).
    pub fn registry(&self) -> &TemplateRegistry {
        &self.registry
    }

    /// The sharded store (inspect after a run).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// A shared handle to the store, for concurrent read-only snapshot
    /// readers that must not hold (or wait on) any engine reference —
    /// e.g. the wire server's `ReadOnly` path reading while a `Submit`
    /// run holds the engine lock.
    pub fn store_handle(&self) -> Arc<Store> {
        Arc::clone(&self.store)
    }

    /// Runs one **read-only transaction**: claims a snapshot timestamp
    /// and reads every entity in `entities` at that single committed
    /// cut, without acquiring any lock class, writing any WAL record,
    /// or touching the write path. Duration lands in the
    /// `snapshot_read` phase histogram. See
    /// [`Store::read_only_snapshot`] / [`crate::mvcc`].
    pub fn run_read_only(&self, entities: &[EntityId]) -> crate::mvcc::RoSnapshot {
        let tel = &self.cfg.telemetry;
        let started = Instant::now();
        let snap = self.store.read_only_snapshot(entities);
        tel.record(Phase::SnapshotRead, started.elapsed());
        snap
    }

    /// The attached write-ahead log, if `wal_dir` asked for one.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// Whether this run executes the no-detector path.
    fn certified_path(&self) -> bool {
        self.registry.verdict().is_certified() && !self.cfg.force_fallback
    }

    /// Runs `cfg.instances` instances (assigned round-robin over the
    /// registered templates) on `cfg.threads` workers and reports.
    /// Reusable; the store accumulates writes across runs and the
    /// outcome folds into [`Engine::report_snapshot`].
    pub fn run(&self) -> Report {
        let sys = self.registry.system().clone();
        if sys.is_empty() || self.cfg.instances == 0 {
            return self.build_report(&sys, &[], &[], SharedHistory::new(), Duration::ZERO, None);
        }
        let instances: Vec<Instance> = (0..self.cfg.instances)
            .map(|i| Instance {
                id: u32::try_from(i).expect("instance count fits u32"),
                template: TxnId::from_index(i % sys.len().max(1)),
            })
            .collect();
        self.run_instances(instances)
    }

    /// Runs an explicit per-template mix — `count` instances of each
    /// listed template, interleaved round-robin across the entries — on
    /// `cfg.threads` workers (ignoring `cfg.instances`). This is the
    /// submission path of the wire server, where clients pick templates
    /// by name instead of taking the uniform round-robin of
    /// [`Engine::run`].
    ///
    /// # Panics
    /// Panics with a descriptive message when a `TxnId` does not name a
    /// registered template or the total instance count exceeds
    /// `u32::MAX` (instance ids double as wait-die timestamps).
    pub fn run_mix(&self, mix: &[(TxnId, usize)]) -> Report {
        let sys = self.registry.system().clone();
        for &(t, _) in mix {
            assert!(
                t.index() < sys.len(),
                "run_mix: {t} is not a registered template ({} registered)",
                sys.len()
            );
        }
        let total: usize = mix.iter().map(|&(_, n)| n).sum();
        if sys.is_empty() || total == 0 {
            return self.build_report(&sys, &[], &[], SharedHistory::new(), Duration::ZERO, None);
        }
        u32::try_from(total).expect("instance count fits u32");
        let mut remaining: Vec<(TxnId, usize)> = mix.to_vec();
        let mut instances = Vec::with_capacity(total);
        // Interleave entries so concurrent templates mix like `run`'s
        // round-robin rather than executing in submission blocks.
        while instances.len() < total {
            for (t, left) in &mut remaining {
                if *left > 0 {
                    *left -= 1;
                    instances.push(Instance {
                        id: instances.len() as u32,
                        template: *t,
                    });
                }
            }
        }
        self.run_instances(instances)
    }

    /// The cumulative outcome of every run so far (sums of counters,
    /// conjunction of audit verdicts, high-water marks) without running
    /// anything — the `Report` RPC of the wire server reads this. Before
    /// the first run it reports the registered system with zero
    /// instances and `serializable: None`.
    pub fn report_snapshot(&self) -> Report {
        let sys = self.registry.system().clone();
        self.cumulative.lock().clone().unwrap_or_else(|| {
            self.build_report(&sys, &[], &[], SharedHistory::new(), Duration::ZERO, None)
        })
    }

    fn run_instances(&self, instances: Vec<Instance>) -> Report {
        let sys = self.registry.system().clone();
        // With a WAL attached, this run's instances get globally unique
        // ids `base..base + n` within the log directory, so histories of
        // successive runs concatenate without collisions; the history
        // sink writes each event durably from inside the timestamp
        // critical section.
        let base = match &self.wal {
            Some(w) => w.begin_run(instances.len() as u32),
            None => 0,
        };
        // The streaming auditor keeps the run's live D(S) verdict:
        // instances are admitted up front, each event is fed from inside
        // the history's timestamp critical section, and workers report
        // commit/abort decisions as they happen — by the time the pool
        // drains, the verdict is already computed.
        let auditor = Arc::new(parking_lot::Mutex::new_named(
            "engine.auditor",
            StreamingAuditor::new(self.registry.system()),
        ));
        {
            let mut a = auditor.lock();
            for inst in &instances {
                a.admit(base + inst.id, inst.template);
            }
        }
        let wal_sink: Option<ddlf_sim::EventSink> = self.wal.as_ref().map(|w| {
            let w = Arc::clone(w);
            Box::new(move |ev: &ddlf_sim::HistoryEvent| w.log_event(ev, base)) as _
        });
        let shared = SharedHistory::with_streaming_audit(Arc::clone(&auditor), base, wal_sink);
        // Workers claim instances in admission-batch chunks: each chunk
        // is admitted under one gate acquisition per template and one
        // decision-log lock for its Begin records (see `execute_chunk`).
        let batch = self.cfg.admission_batch.max(1);
        let (work_tx, work_rx) = unbounded::<Vec<Instance>>();
        for chunk in instances.chunks(batch) {
            work_tx.send(chunk.to_vec()).expect("receiver alive");
        }
        drop(work_tx);

        // Per-run multiprogramming accounting starts fresh.
        for t in 0..self.registry.len() {
            self.registry
                .template(TxnId::from_index(t))
                .gate()
                .reset_peak();
        }

        let (done_tx, done_rx) = unbounded::<(u32, Outcome)>();
        // Per-run phase attribution: snapshot the cumulative histograms
        // around the pool, then diff. Buckets are monotone counters, so
        // the difference is exactly this run's samples (runs on one
        // engine are not concurrent — the server serializes them).
        let phases_before = self.cfg.telemetry.phase_snapshot();
        // Workers bump per-template counters through this resolved
        // table: pure atomics, no per-instance locking.
        let ttable = self.cfg.telemetry.template_table();
        let groups_before = match &self.wal {
            Some(w) => w.group_counters(),
            None => (0, 0),
        };
        let started = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..self.cfg.threads.max(1) {
                let work_rx = work_rx.clone();
                let done_tx = done_tx.clone();
                let shared = &shared;
                let auditor = &auditor;
                let ttable = ttable.as_deref();
                scope.spawn(move || self.worker(work_rx, done_tx, shared, base, auditor, ttable));
            }
        });
        let wall = started.elapsed();
        drop(done_tx);
        // Buffered log writers may still hold encoded frames; push them
        // to the kernel so a post-run crash loses nothing this run
        // claimed durable (commit decisions were already flushed — and
        // under `sync`, fsynced — at each group boundary).
        if let Some(w) = &self.wal {
            w.flush_all();
        }

        // Quiescent cross-check: with every worker joined, the
        // committed-chain tips must agree with the live shard values
        // whenever the registered workload is delta-only (deltas
        // commute, so a commit-ts/lock-order inversion cannot change
        // the tip). With absolute writes the representations may
        // legitimately diverge — see the `crate::mvcc` module docs.
        #[cfg(debug_assertions)]
        if (0..self.registry.len()).all(|t| {
            self.registry
                .template(TxnId::from_index(t))
                .program
                .is_delta_only()
        }) {
            let diverged = self.store.chain_divergence();
            debug_assert!(
                diverged.is_empty(),
                "delta-only run left chain tips diverged from live values: {diverged:?}"
            );
        }

        let mut outcomes: Vec<Outcome> = vec![Outcome::default(); instances.len()];
        for (id, out) in done_rx.iter() {
            outcomes[id as usize] = out;
        }
        let mut report =
            self.build_report(&sys, &instances, &outcomes, shared, wall, Some(&auditor));
        report.phases = self.cfg.telemetry.phase_snapshot().delta(&phases_before);
        if let Some(w) = &self.wal {
            let (flushes, commits) = w.group_counters();
            let (f0, c0) = groups_before;
            report.group_flushes = flushes - f0;
            report.group_commits = commits - c0;
        }
        let mut cumulative = self.cumulative.lock();
        match cumulative.as_mut() {
            Some(acc) => acc.absorb(&report),
            None => *cumulative = Some(report.clone()),
        }
        report
    }

    fn worker(
        &self,
        work_rx: Receiver<Vec<Instance>>,
        done_tx: Sender<(u32, Outcome)>,
        shared: &SharedHistory,
        base: u32,
        auditor: &Mutex<StreamingAuditor>,
        ttable: Option<&TemplateTable>,
    ) {
        // The queue is fully loaded (and its sender dropped) before
        // workers start, so the first failed receive means drained.
        while let Ok(chunk) = work_rx.try_recv() {
            self.execute_chunk(&chunk, &done_tx, shared, base, auditor, ttable);
        }
    }

    /// Runs one admission-batch chunk: the chunk is admitted as a unit
    /// (one gate acquisition per distinct template, one decision-log
    /// lock for every first-attempt `Begin`), then its instances execute
    /// sequentially on this worker. Sequential execution is what keeps
    /// batching sound: at most one of the chunk's instances is inside
    /// any template at a time, so one slot per template bounds the
    /// concurrent in-flight mix exactly as per-instance admission did.
    /// Gates are acquired in template-index order, so two workers
    /// holding chunks over overlapping template sets always contend in
    /// the same order and cannot deadlock.
    fn execute_chunk(
        &self,
        chunk: &[Instance],
        done_tx: &Sender<(u32, Outcome)>,
        shared: &SharedHistory,
        base: u32,
        auditor: &Mutex<StreamingAuditor>,
        ttable: Option<&TemplateTable>,
    ) {
        if chunk.len() < 2 {
            for inst in chunk {
                let out = self.execute_instance(*inst, shared, base, auditor, ttable, false);
                let _ = done_tx.send((inst.id, out));
            }
            return;
        }
        let tel = &self.cfg.telemetry;
        let mut counts: Vec<(TxnId, usize)> = Vec::new();
        for inst in chunk {
            match counts.iter_mut().find(|(t, _)| *t == inst.template) {
                Some((_, n)) => *n += 1,
                None => counts.push((inst.template, 1)),
            }
        }
        counts.sort_unstable_by_key(|&(t, _)| t.index());
        let t_gate = tel.timer();
        let _slots: Vec<_> = counts
            .iter()
            .map(|&(t, n)| self.registry.template(t).gate.acquire_many(n))
            .collect();
        tel.record_since(Phase::GateWait, t_gate);
        if let Some(w) = &self.wal {
            let begins: Vec<(u32, TxnId)> =
                chunk.iter().map(|i| (base + i.id, i.template)).collect();
            w.log_begin_batch(&begins);
        }
        for inst in chunk {
            let out = self.execute_instance(*inst, shared, base, auditor, ttable, true);
            let _ = done_tx.send((inst.id, out));
        }
    }

    fn execute_instance(
        &self,
        inst: Instance,
        shared: &SharedHistory,
        base: u32,
        auditor: &Mutex<StreamingAuditor>,
        ttable: Option<&TemplateTable>,
        pre_admitted: bool,
    ) -> Outcome {
        let tel = &self.cfg.telemetry;
        let started = Instant::now();
        let tmpl = self.registry.template(inst.template);
        // Whole instances are trace-sampled by global id, so a captured
        // instance's span events are complete end to end.
        let sampled = tel.sampled(u64::from(base + inst.id));
        // Admission gate: occupy one of the template's certified slots
        // (see template.rs) so the in-flight mix stays a subsystem of the
        // certified inflated system. Acquired before any data lock, so
        // gate waits cannot entangle with lock waits. A `pre_admitted`
        // instance rides its chunk's gate acquisition (`execute_chunk`
        // holds the slot for the chunk's whole lifetime) and its chunk's
        // batched `Begin`, so both are skipped here.
        let t_gate = if pre_admitted { None } else { tel.timer() };
        let _slot = (!pre_admitted).then(|| tmpl.gate.acquire());
        if !pre_admitted {
            tel.record_since(Phase::GateWait, t_gate);
        }
        tel.inflight_inc();
        if sampled {
            tel.trace(SpanEvent {
                ts_ns: tel.now_ns(),
                gid: u64::from(base + inst.id),
                template: inst.template.0,
                attempt: 0,
                kind: SpanKind::Admit,
                entity: u32::MAX,
                dur_ns: t_gate.map(|t0| t0.elapsed().as_nanos() as u64).unwrap_or(0),
                n: 0,
            });
        }
        let t = self.registry.system().txn(inst.template);
        let certified = self.certified_path();
        let mut rng =
            StdRng::seed_from_u64(self.cfg.seed ^ (u64::from(inst.id) << 20) ^ 0x00E9_97D1);
        let mut out = Outcome::default();

        let budget = if certified { 1 } else { self.cfg.max_attempts };
        for attempt in 0..budget {
            let ctx = WriteCtx {
                instance: TxnId(inst.id),
                gid: base + inst.id,
                attempt,
                // The certified path cannot abort, so it skips undo
                // bookkeeping entirely (the no-WAL hot path stays
                // unchanged).
                track_undo: !certified,
            };
            if let Some(w) = &self.wal {
                // A pre-admitted first attempt was already begun by the
                // chunk's batched append; retries still log one by one.
                if attempt > 0 || !pre_admitted {
                    w.log_begin(ctx.gid, inst.template, attempt);
                }
            }
            let t_exec = tel.timer();
            let result = if certified {
                self.attempt_blocking(inst, t, &ctx, shared, sampled)
            } else {
                self.attempt_wait_die(inst, t, &ctx, shared, sampled)
            };
            tel.record_since(Phase::Execute, t_exec);
            match result {
                AttemptResult::Committed {
                    reads,
                    writes,
                    writes_skipped,
                } => {
                    let t_commit = tel.timer();
                    self.commit_instance(inst, t, &ctx);
                    // The decision reaches the auditor only after every
                    // event of the attempt did (the sink feeds events
                    // synchronously from inside the history lock), so
                    // the merge sees the complete attempt.
                    let (nodes, arcs) = {
                        let mut a = auditor.lock();
                        a.commit(ctx.gid, attempt);
                        (a.node_count() as u64, a.arc_count() as u64)
                    };
                    tel.set_auditor(nodes, arcs);
                    tel.record_since(Phase::Commit, t_commit);
                    if let Some(tt) = ttable {
                        tt.commit(inst.template.index());
                    }
                    if sampled {
                        let dur = t_commit
                            .map(|t0| t0.elapsed().as_nanos() as u64)
                            .unwrap_or(0);
                        tel.trace(SpanEvent {
                            ts_ns: tel.now_ns(),
                            gid: u64::from(ctx.gid),
                            template: inst.template.0,
                            attempt,
                            kind: SpanKind::Commit,
                            entity: u32::MAX,
                            dur_ns: dur,
                            n: 0,
                        });
                        tel.trace(SpanEvent {
                            ts_ns: tel.now_ns(),
                            gid: u64::from(ctx.gid),
                            template: inst.template.0,
                            attempt,
                            kind: SpanKind::AuditArc,
                            entity: u32::MAX,
                            dur_ns: 0,
                            n: arcs,
                        });
                    }
                    out.committed_attempt = Some(attempt);
                    out.reads += reads;
                    out.writes += writes;
                    out.writes_skipped += writes_skipped;
                    break;
                }
                AttemptResult::Died {
                    rolled_back,
                    unrecovered,
                } => {
                    if let Some(w) = &self.wal {
                        w.log_abort(ctx.gid, attempt);
                    }
                    // The attempt's locks were released and its writes
                    // rolled back: its buffered events leave the
                    // committed projection.
                    auditor.lock().abort(ctx.gid, attempt);
                    if let Some(tt) = ttable {
                        // Every engine-path abort is a wait-die death
                        // (the requester self-aborted); wounds stay 0.
                        tt.abort(inst.template.index());
                        tt.die(inst.template.index());
                    }
                    if sampled {
                        tel.trace(SpanEvent {
                            ts_ns: tel.now_ns(),
                            gid: u64::from(ctx.gid),
                            template: inst.template.0,
                            attempt,
                            kind: SpanKind::Abort,
                            entity: u32::MAX,
                            dur_ns: 0,
                            n: u64::from(rolled_back),
                        });
                    }
                    out.aborts += 1;
                    out.rolled_back += u64::from(rolled_back);
                    // Only a write that could not be rolled back leaves
                    // the abort dirty (and voids the run's audit).
                    out.dirty_aborts += u32::from(unrecovered > 0);
                    let jitter = rng.gen_range(0..=self.cfg.backoff.as_micros() as u64);
                    std::thread::sleep(
                        self.cfg.backoff
                            + Duration::from_micros(jitter * (1 + u64::from(attempt % 4))),
                    );
                }
            }
        }
        tel.inflight_dec();
        out.latency_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        out
    }

    /// Seals a committed attempt: drops its undo entries shard by shard
    /// (its writes are now permanent), appends the durable commit
    /// decision, and publishes the write-set into the multiversion
    /// chains. Ordered after every `Write`/`Event` record of the
    /// attempt, so a recovered `Commit` implies a complete instance —
    /// and publication happens only after `log_commit` returns, so any
    /// version a live read-only snapshot can observe is already durable
    /// (modulo a whole torn commit group).
    fn commit_instance(&self, inst: Instance, t: &Transaction, ctx: &WriteCtx) {
        let tmpl = self.registry.template(inst.template);
        if ctx.track_undo {
            let mut cleared = HashSet::new();
            for &e in t.entities() {
                if tmpl.program.write_for(e).is_some() {
                    let site = self.store.db().site_of(e);
                    if cleared.insert(site) {
                        self.store.shard_of(e).commit_clear(ctx.instance);
                    }
                }
            }
        }
        // The commit timestamp is reserved *before* durability so the
        // durable record carries it; publication (visibility to the
        // zero-lock readers) waits until the decision is durable. The
        // reservation is unwind-safe: if `log_commit` panics, its drop
        // publishes an empty write-set so the closed clock skips the
        // gap instead of stalling all later commits' visibility.
        let ts = self.store.reserve_commit_ts();
        if let Some(w) = &self.wal {
            w.log_commit(ctx.gid, inst.template, ctx.attempt, ts.ts());
        }
        let writes: Vec<(EntityId, crate::template::WriteOp)> = t
            .entities()
            .iter()
            .filter_map(|&e| tmpl.program.write_for(e).map(|op| (e, op.clone())))
            .collect();
        self.store.publish_commit(ts, writes);
    }

    /// The `Nothing`-policy attempt: issue every ready lock, park on the
    /// grant channel, never abort. Single attempt, cannot fail.
    fn attempt_blocking(
        &self,
        inst: Instance,
        t: &Transaction,
        ctx: &WriteCtx,
        shared: &SharedHistory,
        sampled: bool,
    ) -> AttemptResult {
        let tel = &self.cfg.telemetry;
        let me = ctx.instance;
        let attempt = ctx.attempt;
        let tmpl = self.registry.template(inst.template);
        let (grant_tx, grant_rx) = unbounded::<EntityId>();
        let mut executed = Prefix::empty(t);
        let mut issued = vec![false; t.node_count()];
        // Lock-grant events are *deferred* into this buffer and flushed
        // through one `record_batch` critical section at the next unlock
        // (before the release) or at attempt end. Sound because the
        // events' relative order against other transactions is pinned by
        // the locks themselves: no conflicting grant can happen on a
        // held entity until we release it, and we flush everything
        // buffered before every release — so per-entity event order in
        // the history is exactly the effective lock order. (The debug
        // batch-oracle cross-check in `build_report` re-verifies this on
        // every run.)
        let mut pending: Vec<ddlf_model::NodeId> = Vec::new();
        let (mut reads, mut writes, mut writes_skipped) = (0u64, 0u64, 0u64);
        let span = |kind: SpanKind, entity: EntityId, dur_ns: u64| SpanEvent {
            ts_ns: tel.now_ns(),
            gid: u64::from(ctx.gid),
            template: inst.template.0,
            attempt,
            kind,
            entity: entity.0,
            dur_ns,
            n: 0,
        };

        loop {
            let mut progressed = false;
            for n in executed.ready_nodes(t) {
                if issued[n.index()] {
                    continue;
                }
                issued[n.index()] = true;
                let op = t.op(n);
                let shard = self.store.shard_of(op.entity);
                if op.is_lock() {
                    match shard.request(me, op.entity, &grant_tx) {
                        LockOutcome::Granted => {
                            // Immediate grant: the zero-wait sample that
                            // pairs with the store-measured queue waits —
                            // exactly one lock-wait sample per acquisition.
                            tel.record(Phase::LockWait, Duration::ZERO);
                            if sampled {
                                tel.trace(span(SpanKind::LockAcquire, op.entity, 0));
                            }
                            reads += u64::from(tmpl.program.reads_entity(op.entity));
                            self.simulate_work();
                            pending.push(n);
                            executed.push(n);
                            progressed = true;
                        }
                        LockOutcome::Queued { .. } => {} // grant arrives later
                    }
                } else {
                    // Flush the deferred grants plus this unlock in one
                    // timestamp critical section, *before* the release
                    // makes a conflicting grant possible.
                    pending.push(n);
                    shared.record_batch(me, attempt, &pending);
                    pending.clear();
                    executed.push(n);
                    Self::count_write(
                        shard.write_and_release(ctx, op.entity, tmpl.program.write_for(op.entity)),
                        &mut writes,
                        &mut writes_skipped,
                    );
                    if sampled {
                        tel.trace(span(SpanKind::Write, op.entity, 0));
                    }
                    progressed = true;
                }
            }
            if executed.is_complete(t) {
                // Normally empty here (every lock is followed by an
                // unlock, which flushes), but flush defensively so no
                // template shape can lose events.
                shared.record_batch(me, attempt, &pending);
                return AttemptResult::Committed {
                    reads,
                    writes,
                    writes_skipped,
                };
            }
            if progressed {
                continue;
            }
            // Every ready op is a queued lock: park until any grant. The
            // lock-wait histogram sample for this acquisition is recorded
            // store-side at promotion (the measured queue wait); here we
            // only time the park for the sampled trace.
            let t_park = if sampled { Some(Instant::now()) } else { None };
            let entity = grant_rx
                .recv()
                .expect("grant channel lives as long as this attempt");
            let n = t.lock_node_of(entity).expect("granted entity is accessed");
            if sampled {
                let dur = t_park.map(|t0| t0.elapsed().as_nanos() as u64).unwrap_or(0);
                tel.trace(span(SpanKind::LockAcquire, entity, dur));
            }
            reads += u64::from(tmpl.program.reads_entity(entity));
            self.simulate_work();
            pending.push(n);
            executed.push(n);
        }
    }

    /// Folds one write outcome into the attempt counters: applied writes
    /// count, absent writes don't, and a typed skip ([`crate::store::WriteError`])
    /// is counted separately instead of silently clobbering.
    fn count_write(
        result: Result<bool, crate::store::WriteError>,
        writes: &mut u64,
        skipped: &mut u64,
    ) {
        match result {
            Ok(applied) => *writes += u64::from(applied),
            Err(_) => *skipped += 1,
        }
    }

    /// The wait-die attempt: process ready ops sequentially; lock waits
    /// are polls that re-check the wait-die rule against the current
    /// holder; younger requesters die.
    fn attempt_wait_die(
        &self,
        inst: Instance,
        t: &Transaction,
        ctx: &WriteCtx,
        shared: &SharedHistory,
        sampled: bool,
    ) -> AttemptResult {
        let tel = &self.cfg.telemetry;
        let me = ctx.instance;
        let attempt = ctx.attempt;
        let tmpl = self.registry.template(inst.template);
        let (grant_tx, _grant_rx) = unbounded::<EntityId>();
        let mut executed = Prefix::empty(t);
        let (mut reads, mut writes, mut writes_skipped) = (0u64, 0u64, 0u64);
        let span = |kind: SpanKind, entity: EntityId, dur_ns: u64| SpanEvent {
            ts_ns: tel.now_ns(),
            gid: u64::from(ctx.gid),
            template: inst.template.0,
            attempt,
            kind,
            entity: entity.0,
            dur_ns,
            n: 0,
        };

        while !executed.is_complete(t) {
            let ready = executed.ready_nodes(t);
            // Unlocks never block; drain them first.
            let next = ready
                .iter()
                .copied()
                .find(|&n| !t.op(n).is_lock())
                .or_else(|| ready.first().copied())
                .expect("incomplete prefix has a ready node");
            let op = t.op(next);
            let shard = self.store.shard_of(op.entity);
            if op.is_lock() {
                // Lock-wait clock for this acquisition: covers every
                // poll round until the grant. A withdraw-race promotion
                // is recorded store-side instead (it measured the queue
                // wait), keeping one sample per acquisition.
                let t_lock = tel.timer();
                loop {
                    match shard.request(me, op.entity, &grant_tx) {
                        LockOutcome::Granted => {
                            tel.record_since(Phase::LockWait, t_lock);
                            if sampled {
                                let dur =
                                    t_lock.map(|t0| t0.elapsed().as_nanos() as u64).unwrap_or(0);
                                tel.trace(span(SpanKind::LockAcquire, op.entity, dur));
                            }
                            reads += u64::from(tmpl.program.reads_entity(op.entity));
                            self.simulate_work();
                            shared.record(me, attempt, next);
                            executed.push(next);
                            break;
                        }
                        LockOutcome::Queued { holder } => {
                            // Never park in the FIFO queue on this path:
                            // withdraw, then either poll-wait (older) or
                            // die (younger).
                            if shard.withdraw(me, op.entity) {
                                // Promoted in the race: the lock is ours
                                // (and the store already recorded the
                                // measured queue wait).
                                if sampled {
                                    let dur = t_lock
                                        .map(|t0| t0.elapsed().as_nanos() as u64)
                                        .unwrap_or(0);
                                    tel.trace(span(SpanKind::LockAcquire, op.entity, dur));
                                }
                                reads += u64::from(tmpl.program.reads_entity(op.entity));
                                self.simulate_work();
                                shared.record(me, attempt, next);
                                executed.push(next);
                                break;
                            }
                            if me.0 < holder.0 {
                                std::thread::sleep(self.cfg.poll);
                            } else {
                                let (rolled_back, unrecovered) =
                                    self.abort_attempt(ctx, t, tmpl, &executed);
                                return AttemptResult::Died {
                                    rolled_back,
                                    unrecovered,
                                };
                            }
                        }
                    }
                }
            } else {
                shared.record(me, attempt, next);
                executed.push(next);
                Self::count_write(
                    shard.write_and_release(ctx, op.entity, tmpl.program.write_for(op.entity)),
                    &mut writes,
                    &mut writes_skipped,
                );
                if sampled {
                    tel.trace(span(SpanKind::Write, op.entity, 0));
                }
            }
        }
        AttemptResult::Committed {
            reads,
            writes,
            writes_skipped,
        }
    }

    fn simulate_work(&self) {
        if !self.cfg.work.is_zero() {
            std::thread::sleep(self.cfg.work);
        }
    }

    /// Unwinds a dying attempt. Held locks are released (their writes
    /// were never applied — writes happen at unlock), then every write
    /// an earlier unlock already exposed is rolled back through the
    /// shard undo logs (non-two-phase templates can die after their
    /// first unlock; two-phase ones die before it and have nothing to
    /// undo). Returns `(rolled_back, unrecovered)` write counts — an
    /// abort is only *dirty* if some write could not be undone.
    fn abort_attempt(
        &self,
        ctx: &WriteCtx,
        t: &Transaction,
        tmpl: &Template,
        executed: &Prefix,
    ) -> (u32, u32) {
        // One undo sample per dying attempt: lock release plus every
        // exposed-write rollback.
        let t_undo = self.cfg.telemetry.timer();
        for e in executed.held_entities(t) {
            self.store.shard_of(e).release(ctx.instance, e);
        }
        let (mut rolled_back, mut unrecovered) = (0u32, 0u32);
        // Exposed writes: entities whose unlock executed and whose
        // program has a write. Each entity is written at most once per
        // attempt and rollback is per-entity image/compensation, so
        // reverse execution order is not required.
        for n in executed.iter() {
            let op = t.op(n);
            if op.is_lock() || tmpl.program.write_for(op.entity).is_none() {
                continue;
            }
            match self.store.shard_of(op.entity).undo_write(ctx, op.entity) {
                out if out.rolled_back() => rolled_back += 1,
                UndoOutcome::Unrecoverable => unrecovered += 1,
                // A skipped (mistyped) write left nothing to undo.
                _ => {}
            }
        }
        self.cfg.telemetry.record_since(Phase::Undo, t_undo);
        (rolled_back, unrecovered)
    }

    fn build_report(
        &self,
        sys: &TransactionSystem,
        instances: &[Instance],
        outcomes: &[Outcome],
        shared: SharedHistory,
        wall: Duration,
        auditor: Option<&Mutex<StreamingAuditor>>,
    ) -> Report {
        let failed: Vec<u32> = instances
            .iter()
            .zip(outcomes)
            .filter(|(_, o)| o.committed_attempt.is_none())
            .map(|(i, _)| i.id)
            .collect();
        let history = shared.into_inner();
        let dirty_aborts: usize = outcomes.iter().map(|o| o.dirty_aborts as usize).sum();

        // Audit: one transaction per instance, so `D(S)` sees each
        // instance as its own node set. The verdict was maintained
        // *during* the run by the streaming auditor; sealing is one
        // linear sweep over committed instances that finds no Lemma 1
        // stragglers (every committed instance ran to completion) —
        // nothing is re-projected or rebuilt per report. Rolled-back
        // aborts are clean — their writes were
        // undone, so dropping their buffered events is sound — and
        // wait-die runs audit like certified ones. Only an *unrecovered*
        // dirty abort (a write the undo log could not take back) still
        // voids the audit's premise, reporting `None` rather than a
        // verdict over the wrong schedule.
        let serializable = if failed.is_empty() && !instances.is_empty() && dirty_aborts == 0 {
            let verdict = auditor.and_then(|a| a.lock().seal());
            // Debug builds cross-check the streaming verdict against the
            // batch oracle over the very same history — the whole
            // existing engine test suite doubles as an equivalence
            // proptest. The oracle rebuilds a per-instance system and
            // audits it from scratch (quadratic-ish in instances), so it
            // is capped: big debug runs keep the streaming verdict
            // instead of hanging for minutes. Override the cap with
            // `DDLF_BATCH_ORACLE_CAP` (0 disables the cross-check).
            #[cfg(debug_assertions)]
            if instances.len() <= batch_oracle_cap() {
                let committed_attempt: Vec<Option<u32>> =
                    outcomes.iter().map(|o| o.committed_attempt).collect();
                let txns: Vec<Transaction> = instances
                    .iter()
                    .map(|i| {
                        let t = sys.txn(i.template);
                        t.clone().with_name(format!("{}#{}", t.name(), i.id))
                    })
                    .collect();
                let batch = TransactionSystem::new(sys.db().clone(), txns)
                    .ok()
                    .and_then(|audit_sys| history.audit(&audit_sys, &committed_attempt).ok());
                debug_assert_eq!(
                    verdict, batch,
                    "streaming audit diverged from the batch oracle"
                );
            }
            verdict
        } else {
            None
        };

        let latency = LatencyStats::from_samples(
            outcomes
                .iter()
                .filter(|o| o.committed_attempt.is_some())
                .map(|o| o.latency_us)
                .collect(),
        );

        // Per-template achieved multiprogramming (the gate's high-water
        // mark this run) next to its certified slot count.
        let mut per_template: Vec<TemplateReport> = sys
            .iter()
            .map(|(t, txn)| TemplateReport {
                name: txn.name().to_string(),
                certified_slots: self.registry.plan().slots_of(t),
                peak_inflight: self.registry.template(t).gate().peak(),
                committed: 0,
                aborted_attempts: 0,
            })
            .collect();
        for (inst, out) in instances.iter().zip(outcomes) {
            let row = &mut per_template[inst.template.index()];
            row.committed += usize::from(out.committed_attempt.is_some());
            row.aborted_attempts += out.aborts as usize;
        }

        Report {
            verdict: self.registry.verdict().clone(),
            plan_floored: self.registry.plan().floored,
            forced_fallback: self.cfg.force_fallback,
            instances: instances.len(),
            committed: outcomes
                .iter()
                .filter(|o| o.committed_attempt.is_some())
                .count(),
            aborted_attempts: outcomes.iter().map(|o| o.aborts as usize).sum(),
            dirty_aborts,
            rolled_back: outcomes.iter().map(|o| o.rolled_back).sum(),
            failed,
            reads: outcomes.iter().map(|o| o.reads).sum(),
            writes: outcomes.iter().map(|o| o.writes).sum(),
            writes_skipped: outcomes.iter().map(|o| o.writes_skipped).sum(),
            wall,
            serializable,
            history_len: history.len(),
            latency,
            // Filled with this run's per-phase delta by `run_instances`
            // (the empty-run report keeps the empty default), like the
            // group-committer counter deltas below it.
            phases: ddlf_telemetry::PhaseSnapshot::default(),
            group_flushes: 0,
            group_commits: 0,
            per_template,
        }
    }
}

/// Convenience: certify `sys`, run it, and report.
pub fn run_system(sys: &TransactionSystem, cfg: EngineConfig) -> Report {
    Engine::new(sys.clone(), cfg).run()
}
