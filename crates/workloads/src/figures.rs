//! Executable reconstructions of the paper's figures.
//!
//! The 1986 scan's figure drawings are not machine-readable; each
//! construction below is reconstructed from the *properties the text
//! states about it*, which the test suite (and the E1–E3/E7 experiments)
//! verifies. Deviations are documented per figure.

use ddlf_model::{Database, EntityId, Prefix, SystemPrefix, Transaction, TransactionSystem};

/// Entities of [`fig1`], in database order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig1Entities {
    /// Entity `x` (site 1).
    pub x: EntityId,
    /// Entity `y` (site 1).
    pub y: EntityId,
    /// Entity `z` (site 2).
    pub z: EntityId,
}

/// **Figure 1**: three transactions over two sites with a prefix whose
/// reduction graph contains the cycle
/// `L¹z → U¹y → L²y → U²x → L³x → U³z → L¹z` (§3's worked example).
///
/// Reconstruction: the text fixes the cycle, which forces
/// * `T₁` to hold `y` while its remaining `Lz` precedes `Uy`,
/// * `T₂` to hold `x` while its remaining `Ly` precedes `Ux`,
/// * `T₃` to hold `z` while its remaining `Lx` precedes `Uz`.
///
/// We place `x, y` on site 1 and `z` on site 2 (two sites as drawn) and
/// order same-site operations compatibly. The returned prefix executes
/// exactly `{L¹y, L²x, L³z}`.
pub fn fig1() -> (TransactionSystem, SystemPrefix, Fig1Entities) {
    let mut b = Database::builder();
    let s1 = b.add_site();
    let s2 = b.add_site();
    let x = b.add_entity("x", s1);
    let y = b.add_entity("y", s1);
    let z = b.add_entity("z", s2);
    let db = b.build();

    // T1 accesses y (site 1) and z (site 2); holds y, will want z, and
    // Lz ≺ Uy.
    let mut t1 = Transaction::builder("T1");
    let (l1y, u1y) = t1.lock_unlock(y);
    let (l1z, _u1z) = t1.lock_unlock(z);
    t1.arc(l1y, l1z); // y locked first (prefix cut after L1y)
    t1.arc(l1z, u1y); // the cycle arc L1z → U1y
    let t1 = t1.build(&db).unwrap();

    // T2 accesses x and y (both site 1, totally ordered): Lx Ly Ux Uy.
    let mut t2 = Transaction::builder("T2");
    let l2x = t2.lock(x);
    let l2y = t2.lock(y);
    let u2x = t2.unlock(x);
    let u2y = t2.unlock(y);
    t2.chain(&[l2x, l2y, u2x, u2y]);
    let t2 = t2.build(&db).unwrap();

    // T3 accesses z (site 2) and x (site 1); holds z, wants x, Lx ≺ Uz.
    let mut t3 = Transaction::builder("T3");
    let (l3z, u3z) = t3.lock_unlock(z);
    let (l3x, _u3x) = t3.lock_unlock(x);
    t3.arc(l3z, l3x);
    t3.arc(l3x, u3z); // the cycle arc L3x → U3z
    let t3 = t3.build(&db).unwrap();

    let sys = TransactionSystem::new(db, vec![t1, t2, t3]).unwrap();
    let prefix = SystemPrefix::new(vec![
        Prefix::from_nodes(sys.txn(ddlf_model::TxnId(0)), [ddlf_model::NodeId(0)]).unwrap(),
        Prefix::from_nodes(sys.txn(ddlf_model::TxnId(1)), [ddlf_model::NodeId(0)]).unwrap(),
        Prefix::from_nodes(sys.txn(ddlf_model::TxnId(2)), [ddlf_model::NodeId(0)]).unwrap(),
    ]);
    (sys, prefix, Fig1Entities { x, y, z })
}

/// **Figure 2**: the transaction that defeats Tirri's two-entity premise.
///
/// Four entities `v, t, z, w` (each on its own site), arcs
/// `Lv → Ut`, `Lt → Uz`, `Lz → Uw`, `Lw → Uv` (plus each `L → U`).
/// Two copies of this dag contain **no** pair `x, y` with `Ly ≺ Ux` and
/// `Lx ≺ Uy`, yet the prefix `{L²v, L¹t, L²z, L¹w}` has the nine-node
/// reduction cycle the text lists — deadlock through four entities.
pub fn fig2_transaction(db: &Database, name: &str) -> Transaction {
    let (v, t, z, w) = (EntityId(0), EntityId(1), EntityId(2), EntityId(3));
    let mut b = Transaction::builder(name);
    let (lv, uv) = b.lock_unlock(v);
    let (lt, ut) = b.lock_unlock(t);
    let (lz, uz) = b.lock_unlock(z);
    let (lw, uw) = b.lock_unlock(w);
    b.arc(lv, ut);
    b.arc(lt, uz);
    b.arc(lz, uw);
    b.arc(lw, uv);
    b.build(db).unwrap()
}

/// The two-copy Figure 2 system, plus the deadlock prefix
/// `{L²v, L¹t, L²z, L¹w}` from the text.
pub fn fig2() -> (TransactionSystem, SystemPrefix) {
    let db = Database::one_entity_per_site(4);
    let t1 = fig2_transaction(&db, "T1");
    let t2 = fig2_transaction(&db, "T2");
    let sys = TransactionSystem::new(db, vec![t1, t2]).unwrap();
    // T1 holds t and w; T2 holds v and z.
    let grab = |ti: u32, entities: &[u32]| {
        let t = sys.txn(ddlf_model::TxnId(ti));
        Prefix::from_nodes(
            t,
            entities
                .iter()
                .map(|&e| t.lock_node_of(EntityId(e)).expect("accessed")),
        )
        .unwrap()
    };
    let prefix = SystemPrefix::new(vec![grab(0, &[1, 3]), grab(1, &[0, 2])]);
    (sys, prefix)
}

/// **Figure 3**: the dag whose *partial orders* are deadlock-free although
/// particular linear extensions deadlock.
///
/// Two entities `x, y` on different sites with only `Lx → Ux`, `Ly → Uy`
/// (the two pairs fully parallel). The extensions
/// `t₁ = Lx Ly Ux Uy ∈ T₁` and `t₂ = Ly Lx Ux Uy ∈ T₂` deadlock as
/// centralized transactions, but `{T₁, T₂}` as partial orders cannot: an
/// unlock is always available.
pub fn fig3_transaction(db: &Database, name: &str) -> Transaction {
    let mut b = Transaction::builder(name);
    b.lock_unlock(EntityId(0));
    b.lock_unlock(EntityId(1));
    b.build(db).unwrap()
}

/// The two-copy Figure 3 system.
pub fn fig3() -> TransactionSystem {
    let db = Database::one_entity_per_site(2);
    let t1 = fig3_transaction(&db, "T1");
    let t2 = fig3_transaction(&db, "T2");
    TransactionSystem::new(db, vec![t1, t2]).unwrap()
}

/// The deadlocking pair of linear extensions from the Figure 3 discussion,
/// as centralized (total-order) transactions over a fresh 2-entity,
/// 1-site database.
pub fn fig3_deadlocking_extensions() -> TransactionSystem {
    use ddlf_model::Op;
    let db = Database::centralized(2);
    let (x, y) = (EntityId(0), EntityId(1));
    let t1 = Transaction::from_total_order(
        "t1",
        &[Op::lock(x), Op::lock(y), Op::unlock(x), Op::unlock(y)],
        &db,
    )
    .unwrap();
    let t2 = Transaction::from_total_order(
        "t2",
        &[Op::lock(y), Op::lock(x), Op::unlock(x), Op::unlock(y)],
        &db,
    )
    .unwrap();
    TransactionSystem::new(db, vec![t1, t2]).unwrap()
}

/// **Figure 6**: a transaction syntax where **three** copies can deadlock
/// but **two** cannot — the counterexample showing Theorem 5 fails for
/// deadlock-freedom alone.
///
/// Reconstruction: three entities `a, b, c` on three sites, arcs
/// `La → Ub`, `Lb → Uc`, `Lc → Ua` (a cyclic hold-and-wait template of
/// odd length; with two copies every reduction-graph cycle would need an
/// even alternation, with three copies the ring closes).
pub fn fig6_transaction(db: &Database, name: &str) -> Transaction {
    let (a, b_, c) = (EntityId(0), EntityId(1), EntityId(2));
    let mut b = Transaction::builder(name);
    let (la, ua) = b.lock_unlock(a);
    let (lb, ub) = b.lock_unlock(b_);
    let (lc, uc) = b.lock_unlock(c);
    b.arc(la, ub);
    b.arc(lb, uc);
    b.arc(lc, ua);
    b.build(db).unwrap()
}

/// A system of `d` copies of the Figure 6 transaction.
pub fn fig6(d: usize) -> TransactionSystem {
    let db = Database::one_entity_per_site(3);
    let t = fig6_transaction(&db, "T");
    TransactionSystem::copies(db, &t, d).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddlf_core::explore::Explorer;
    use ddlf_core::reduction::{check_deadlock_prefix, ReductionGraph};
    use ddlf_core::tirri::tirri_two_entity_pattern;
    use ddlf_model::TxnId;

    #[test]
    fn fig1_prefix_is_a_deadlock_prefix_with_stated_cycle() {
        let (sys, prefix, ents) = fig1();
        let rg = ReductionGraph::build(&sys, &prefix);
        assert!(rg.is_cyclic());
        let dp = check_deadlock_prefix(&sys, &prefix, 100_000).expect("deadlock prefix");
        // The cycle visits nodes of all three transactions and the three
        // entities x, y, z.
        let txns: std::collections::HashSet<_> = dp.cycle.iter().map(|g| g.txn).collect();
        assert_eq!(txns.len(), 3);
        let entities: std::collections::HashSet<_> = dp
            .cycle
            .iter()
            .map(|g| sys.txn(g.txn).op(g.node).entity)
            .collect();
        assert!(entities.contains(&ents.x));
        assert!(entities.contains(&ents.y));
        assert!(entities.contains(&ents.z));
    }

    #[test]
    fn fig1_system_actually_deadlocks() {
        let (sys, _, _) = fig1();
        let ex = Explorer::new(&sys, 2_000_000);
        assert!(ex.find_deadlock().0.violated());
    }

    #[test]
    fn fig2_defeats_tirri_but_deadlocks() {
        let (sys, prefix) = fig2();
        // No two-entity pattern …
        assert_eq!(
            tirri_two_entity_pattern(sys.txn(TxnId(0)), sys.txn(TxnId(1))),
            None
        );
        // … yet the stated prefix is a deadlock prefix with a ≥ 8-node
        // cycle (through all four entities).
        let dp = check_deadlock_prefix(&sys, &prefix, 1_000_000).expect("deadlock prefix");
        assert!(dp.cycle.len() >= 8);
        let entities: std::collections::HashSet<_> = dp
            .cycle
            .iter()
            .map(|g| sys.txn(g.txn).op(g.node).entity)
            .collect();
        assert_eq!(entities.len(), 4, "cycle passes through all four entities");
    }

    #[test]
    fn fig3_partial_orders_deadlock_free_but_extensions_deadlock() {
        let sys = fig3();
        let ex = Explorer::new(&sys, 1_000_000);
        assert!(
            ex.find_deadlock().0.holds(),
            "partial orders are deadlock-free"
        );
        assert!(ex.find_deadlock_prefix().0.holds());

        let ext = fig3_deadlocking_extensions();
        let ex2 = Explorer::new(&ext, 1_000_000);
        assert!(
            ex2.find_deadlock().0.violated(),
            "chosen linear extensions deadlock"
        );
    }

    #[test]
    fn fig6_three_copies_deadlock_two_do_not() {
        let two = fig6(2);
        let ex2 = Explorer::new(&two, 5_000_000);
        assert!(ex2.find_deadlock().0.holds(), "two copies never deadlock");

        let three = fig6(3);
        let ex3 = Explorer::new(&three, 5_000_000);
        assert!(ex3.find_deadlock().0.violated(), "three copies deadlock");
    }

    #[test]
    fn fig6_is_not_safe_even_for_two_copies() {
        // Theorem 5 talks about safe+DF; Fig. 6 only separates
        // deadlock-freedom. Two copies fail Corollary 3 (no global first
        // lock), consistent with the theorem.
        let db = Database::one_entity_per_site(3);
        let t = fig6_transaction(&db, "T");
        assert!(ddlf_core::copies::copies_safe_df(&t).is_err());
    }
}
