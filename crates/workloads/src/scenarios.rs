//! Domain scenarios: realistic multi-site workloads of the kind the
//! paper's introduction motivates (banking transfers, order fulfilment),
//! expressed in the locked-transaction model.

use ddlf_model::{Database, EntityId, SiteId, Transaction, TransactionSystem};

/// A bank with `n_branches` branch sites, each holding `accounts_per_branch`
/// account entities, plus a head-office site with one audit-ledger entity
/// per branch.
#[derive(Debug, Clone)]
pub struct Bank {
    /// The database schema.
    pub db: Database,
    /// `accounts[b][a]` = account `a` at branch `b`.
    pub accounts: Vec<Vec<EntityId>>,
    /// `ledgers[b]` = head-office ledger entity for branch `b`.
    pub ledgers: Vec<EntityId>,
    /// Branch sites.
    pub branch_sites: Vec<SiteId>,
    /// Head-office site.
    pub head_office: SiteId,
}

impl Bank {
    /// Builds the schema.
    pub fn new(n_branches: usize, accounts_per_branch: usize) -> Self {
        let mut b = Database::builder();
        let mut accounts = Vec::with_capacity(n_branches);
        let mut branch_sites = Vec::with_capacity(n_branches);
        for br in 0..n_branches {
            let site = b.add_site();
            branch_sites.push(site);
            accounts.push(
                (0..accounts_per_branch)
                    .map(|a| b.add_entity(format!("acct_b{br}_{a}"), site))
                    .collect(),
            );
        }
        let head_office = b.add_site();
        let ledgers = (0..n_branches)
            .map(|br| b.add_entity(format!("ledger_b{br}"), head_office))
            .collect();
        Self {
            db: b.build(),
            accounts,
            ledgers,
            branch_sites,
            head_office,
        }
    }

    /// A cross-branch transfer: locks the source account, the destination
    /// account, and both branches' ledgers, strictly two-phase, in a
    /// canonical global order (accounts by entity id, then ledgers by
    /// entity id). Canonical ordering makes any set of transfers
    /// certifiable by Theorem 4.
    pub fn transfer_ordered(
        &self,
        name: &str,
        from: (usize, usize),
        to: (usize, usize),
    ) -> Transaction {
        let mut entities = vec![
            self.accounts[from.0][from.1],
            self.accounts[to.0][to.1],
            self.ledgers[from.0],
            self.ledgers[to.0],
        ];
        entities.sort_unstable();
        entities.dedup();
        crate::random::two_phase_total_order(&self.db, name, &entities)
    }

    /// A **hand-over-hand** transfer: entities in ascending order, each
    /// lock taken while the previous entity is still held and released
    /// right after (`L e₀, L e₁, U e₀, L e₂, U e₁, …`). Every entity is
    /// covered by its predecessor and the first lock precedes everything,
    /// so Corollary 3 / Theorem 5 certify **any** number of concurrent
    /// copies — and unlike strict 2PL (which holds the first lock to the
    /// very end), copies genuinely pipeline down the chain.
    pub fn transfer_pipelined(
        &self,
        name: &str,
        from: (usize, usize),
        to: (usize, usize),
    ) -> Transaction {
        let mut entities = vec![
            self.accounts[from.0][from.1],
            self.accounts[to.0][to.1],
            self.ledgers[from.0],
            self.ledgers[to.0],
        ];
        entities.sort_unstable();
        entities.dedup();
        let mut ops = vec![ddlf_model::Op::lock(entities[0])];
        for w in entities.windows(2) {
            ops.push(ddlf_model::Op::lock(w[1]));
            ops.push(ddlf_model::Op::unlock(w[0]));
        }
        ops.push(ddlf_model::Op::unlock(*entities.last().expect("nonempty")));
        Transaction::from_total_order(name, &ops, &self.db).expect("chain is legal")
    }

    /// A "greedy" transfer that locks the source side completely before
    /// the destination side (source account, source ledger, destination
    /// account, destination ledger). Two opposite-direction greedy
    /// transfers are the classic distributed deadlock.
    pub fn transfer_greedy(
        &self,
        name: &str,
        from: (usize, usize),
        to: (usize, usize),
    ) -> Transaction {
        let mut entities = vec![
            self.accounts[from.0][from.1],
            self.ledgers[from.0],
            self.accounts[to.0][to.1],
            self.ledgers[to.0],
        ];
        entities.dedup();
        crate::random::two_phase_total_order(&self.db, name, &entities)
    }

    /// A branch audit: locks every account of the branch (ascending) and
    /// its ledger, two-phase.
    pub fn audit(&self, name: &str, branch: usize) -> Transaction {
        let mut entities: Vec<EntityId> = self.accounts[branch].clone();
        entities.push(self.ledgers[branch]);
        entities.sort_unstable();
        crate::random::two_phase_total_order(&self.db, name, &entities)
    }
}

/// The motivating "two greedy transfers in opposite directions" system:
/// `T₀` moves money branch 0 → branch 1, `T₁` moves branch 1 → branch 0,
/// each locking its source side first. Deadlock-prone and rejected by the
/// certifier; contrast with [`bank_ordered_pair`].
pub fn bank_greedy_pair() -> (Bank, TransactionSystem) {
    let bank = Bank::new(2, 2);
    let t0 = bank.transfer_greedy("transfer_0_to_1", (0, 0), (1, 0));
    let t1 = bank.transfer_greedy("transfer_1_to_0", (1, 1), (0, 1));
    // Make them conflict on the ledgers (shared), accounts are distinct.
    let sys = TransactionSystem::new(bank.db.clone(), vec![t0, t1]).unwrap();
    (bank, sys)
}

/// The same two transfers with canonical global lock ordering — passes
/// certification.
pub fn bank_ordered_pair() -> (Bank, TransactionSystem) {
    let bank = Bank::new(2, 2);
    let t0 = bank.transfer_ordered("transfer_0_to_1", (0, 0), (1, 0));
    let t1 = bank.transfer_ordered("transfer_1_to_0", (1, 1), (0, 1));
    let sys = TransactionSystem::new(bank.db.clone(), vec![t0, t1]).unwrap();
    (bank, sys)
}

/// A **single-template**, Theorem 5-certifiable workload: one
/// uniform-lock-order, hand-over-hand transfer shape
/// ([`Bank::transfer_pipelined`] over source account, destination
/// account, and both ledgers). Corollary 3 / Theorem 5 certify **any**
/// number of concurrent copies, the engine's admission gate may go
/// unbounded, and — because each lock is released as soon as the next
/// one is held — concurrent copies pipeline down the entity chain
/// instead of serializing on the first lock. The reference workload for
/// certified k-inflation.
pub fn bank_uniform_transfer() -> (Bank, TransactionSystem) {
    let bank = Bank::new(2, 2);
    let t = bank.transfer_pipelined("transfer", (0, 0), (1, 0));
    let sys = TransactionSystem::new(bank.db.clone(), vec![t]).unwrap();
    (bank, sys)
}

/// An order-fulfilment scenario: warehouse sites hold stock entities; an
/// order locks stock at several warehouses plus a shared order-log.
#[derive(Debug, Clone)]
pub struct Warehouse {
    /// The database schema.
    pub db: Database,
    /// `stock[w][s]` = stock item `s` at warehouse `w`.
    pub stock: Vec<Vec<EntityId>>,
    /// The shared order log entity.
    pub order_log: EntityId,
}

impl Warehouse {
    /// Builds the schema.
    pub fn new(n_warehouses: usize, items_per_warehouse: usize) -> Self {
        let mut b = Database::builder();
        let mut stock = Vec::with_capacity(n_warehouses);
        for w in 0..n_warehouses {
            let site = b.add_site();
            stock.push(
                (0..items_per_warehouse)
                    .map(|s| b.add_entity(format!("stock_w{w}_{s}"), site))
                    .collect(),
            );
        }
        let log_site = b.add_site();
        let order_log = b.add_entity("order_log", log_site);
        Self {
            db: b.build(),
            stock,
            order_log,
        }
    }

    /// An order that first claims the order log (the global "ticket"),
    /// then item stocks in ascending order — the root-lock discipline
    /// that Corollary 3 blesses for identical copies.
    pub fn order_with_ticket(&self, name: &str, items: &[(usize, usize)]) -> Transaction {
        let mut entities: Vec<EntityId> = items.iter().map(|&(w, s)| self.stock[w][s]).collect();
        entities.sort_unstable();
        entities.dedup();
        let mut all = vec![self.order_log];
        all.extend(entities);
        crate::random::two_phase_total_order(&self.db, name, &all)
    }

    /// An order that grabs stocks in the visit order given, without the
    /// ticket — deadlock-prone when visit orders differ.
    pub fn order_direct(&self, name: &str, items: &[(usize, usize)]) -> Transaction {
        let mut entities: Vec<EntityId> = items.iter().map(|&(w, s)| self.stock[w][s]).collect();
        entities.dedup();
        crate::random::two_phase_total_order(&self.db, name, &entities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddlf_core::{certify_safe_and_deadlock_free, CertifyOptions};

    #[test]
    fn greedy_transfers_rejected_ordered_accepted() {
        let (_, greedy) = bank_greedy_pair();
        assert!(certify_safe_and_deadlock_free(&greedy, CertifyOptions::default()).is_err());
        let (_, ordered) = bank_ordered_pair();
        assert!(certify_safe_and_deadlock_free(&ordered, CertifyOptions::default()).is_ok());
    }

    #[test]
    fn greedy_transfers_really_deadlock() {
        let (_, greedy) = bank_greedy_pair();
        let ex = ddlf_core::Explorer::new(&greedy, 5_000_000);
        assert!(ex.find_deadlock().0.violated());
    }

    #[test]
    fn uniform_transfer_certifies_unbounded_copies() {
        let (_, sys) = bank_uniform_transfer();
        assert_eq!(sys.len(), 1, "single template by construction");
        assert!(ddlf_core::copies_safe_df(sys.txn(ddlf_model::TxnId(0))).is_ok());
        let max =
            ddlf_core::max_certified_inflation(&sys, ddlf_core::InflateOptions::default(), 256)
                .unwrap();
        assert!(max.unbounded, "Theorem 5 covers any number of copies");
        assert_eq!(max.k, 256);
    }

    #[test]
    fn ticketed_orders_certify_as_copies() {
        let wh = Warehouse::new(3, 2);
        let t = wh.order_with_ticket("order", &[(0, 0), (1, 1), (2, 0)]);
        assert!(ddlf_core::copies_safe_df(&t).is_ok());
    }

    #[test]
    fn direct_orders_with_crossed_visit_orders_rejected() {
        let wh = Warehouse::new(2, 1);
        let a = wh.order_direct("A", &[(0, 0), (1, 0)]);
        let b = wh.order_direct("B", &[(1, 0), (0, 0)]);
        let sys = TransactionSystem::new(wh.db.clone(), vec![a, b]).unwrap();
        assert!(certify_safe_and_deadlock_free(&sys, CertifyOptions::default()).is_err());
    }

    #[test]
    fn audits_and_transfers_coexist_when_ordered() {
        let bank = Bank::new(2, 2);
        let t0 = bank.transfer_ordered("x", (0, 0), (1, 0));
        let t1 = bank.audit("audit0", 0);
        let t2 = bank.audit("audit1", 1);
        let sys = TransactionSystem::new(bank.db.clone(), vec![t0, t1, t2]).unwrap();
        assert!(certify_safe_and_deadlock_free(&sys, CertifyOptions::default()).is_ok());
    }
}
