//! Deterministic random generators for transactions and transaction
//! systems, used by the property tests and every scaling experiment.

use ddlf_model::{Database, EntityId, Op, Transaction, TransactionSystem};
use rand::prelude::*;
use rand::rngs::StdRng;

/// The locking discipline a generated transaction follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockDiscipline {
    /// Strict two-phase locking in a *globally agreed* entity order:
    /// lock ascending, unlock descending. Systems of such transactions
    /// are always safe and deadlock-free (the classic static prevention
    /// policy), so this is the "certifiable" end of the spectrum.
    OrderedTwoPhase,
    /// Strict two-phase locking in a per-transaction random order:
    /// serializable (2PL ⇒ safe) but deadlock-prone.
    RandomTwoPhase,
    /// Any legal placement: each entity's unlock follows its lock, no
    /// other constraint. Neither safety nor deadlock-freedom is implied.
    RandomLegal,
    /// Lock→unlock-shaped partial orders (each entity on its own "lane",
    /// random cross arcs from locks to unlocks) — the shape of the
    /// paper's Fig. 2 and Theorem 2 gadgets, decidable exactly by
    /// `ddlf_core::lu_pair`.
    LockUnlockShaped,
}

/// Configuration for the random system generator.
#[derive(Debug, Clone, Copy)]
pub struct SystemGen {
    /// Number of database sites.
    pub n_sites: usize,
    /// Entities per site.
    pub entities_per_site: usize,
    /// Number of transactions.
    pub n_txns: usize,
    /// Entities accessed by each transaction.
    pub entities_per_txn: usize,
    /// The locking discipline.
    pub discipline: LockDiscipline,
    /// RNG seed; generation is deterministic given the configuration.
    pub seed: u64,
}

impl SystemGen {
    /// Generates the database and transaction system.
    pub fn generate(&self) -> TransactionSystem {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let db = self.make_db();
        let total = db.entity_count();
        assert!(
            self.entities_per_txn <= total,
            "transactions cannot access more entities than exist"
        );
        let txns = (0..self.n_txns)
            .map(|i| {
                let mut pool: Vec<u32> = (0..total as u32).collect();
                pool.shuffle(&mut rng);
                let chosen: Vec<EntityId> = pool[..self.entities_per_txn]
                    .iter()
                    .map(|&e| EntityId(e))
                    .collect();
                generate_transaction(&db, &format!("T{i}"), &chosen, self.discipline, &mut rng)
            })
            .collect();
        TransactionSystem::new(db, txns).expect("generated system is valid")
    }

    fn make_db(&self) -> Database {
        let mut b = Database::builder();
        for s in 0..self.n_sites {
            let site = b.add_site();
            for e in 0..self.entities_per_site {
                b.add_entity(format!("s{s}e{e}"), site);
            }
        }
        b.build()
    }
}

/// Generates one transaction over `entities` with the given discipline.
pub fn generate_transaction(
    db: &Database,
    name: &str,
    entities: &[EntityId],
    discipline: LockDiscipline,
    rng: &mut StdRng,
) -> Transaction {
    match discipline {
        LockDiscipline::OrderedTwoPhase => {
            let mut order: Vec<EntityId> = entities.to_vec();
            order.sort_unstable();
            two_phase_total_order(db, name, &order)
        }
        LockDiscipline::RandomTwoPhase => {
            let mut order: Vec<EntityId> = entities.to_vec();
            order.shuffle(rng);
            two_phase_total_order(db, name, &order)
        }
        LockDiscipline::RandomLegal => {
            // Random legal interleaving of lock/unlock events as a total
            // order per site... we emit a single total order (compatible
            // with every per-site restriction by construction).
            let mut ops: Vec<Op> = Vec::with_capacity(entities.len() * 2);
            let mut to_lock: Vec<EntityId> = entities.to_vec();
            to_lock.shuffle(rng);
            let mut held: Vec<EntityId> = Vec::new();
            while !to_lock.is_empty() || !held.is_empty() {
                let can_lock = !to_lock.is_empty();
                let can_unlock = !held.is_empty();
                let do_lock = match (can_lock, can_unlock) {
                    (true, true) => rng.gen_bool(0.55),
                    (true, false) => true,
                    _ => false,
                };
                if do_lock {
                    let e = to_lock.pop().expect("nonempty");
                    ops.push(Op::lock(e));
                    held.push(e);
                } else {
                    let i = rng.gen_range(0..held.len());
                    let e = held.swap_remove(i);
                    ops.push(Op::unlock(e));
                }
            }
            Transaction::from_total_order(name, &ops, db).expect("legal by construction")
        }
        LockDiscipline::LockUnlockShaped => {
            // Requires each chosen entity on its own site for an
            // unconstrained partial order; fall back to chaining same-site
            // groups if not (we simply require distinct sites here).
            let mut b = Transaction::builder(name);
            let mut locks = Vec::new();
            let mut unlocks = Vec::new();
            for &e in entities {
                let (l, u) = b.lock_unlock(e);
                locks.push(l);
                unlocks.push(u);
            }
            #[allow(clippy::needless_range_loop)]
            for i in 0..entities.len() {
                for j in 0..entities.len() {
                    if i != j && rng.gen_bool(0.35) {
                        b.arc(locks[i], unlocks[j]);
                    }
                }
            }
            b.build(db).expect("lock→unlock shape is always acyclic")
        }
    }
}

/// Strict 2PL over an explicit lock order (unlock in reverse).
pub fn two_phase_total_order(db: &Database, name: &str, order: &[EntityId]) -> Transaction {
    let ops: Vec<Op> = order
        .iter()
        .map(|&e| Op::lock(e))
        .chain(order.iter().rev().map(|&e| Op::unlock(e)))
        .collect();
    Transaction::from_total_order(name, &ops, db).expect("2PL total order is legal")
}

/// A ring system: `d` transactions where `Tᵢ` accesses entities `i` and
/// `(i+1) mod d` under strict 2PL — the canonical Theorem 4 workload
/// whose interaction graph is a `d`-cycle.
pub fn ring_system(d: usize) -> TransactionSystem {
    let db = Database::one_entity_per_site(d);
    let txns = (0..d)
        .map(|i| {
            two_phase_total_order(
                &db,
                &format!("T{i}"),
                &[EntityId(i as u32), EntityId(((i + 1) % d) as u32)],
            )
        })
        .collect();
    TransactionSystem::new(db, txns).expect("ring system is valid")
}

/// A star system: `d` transactions all locking a shared root entity
/// first, then a private entity — always safe and deadlock-free.
pub fn star_system(d: usize) -> TransactionSystem {
    let db = Database::one_entity_per_site(d + 1);
    let root = EntityId(0);
    let txns = (0..d)
        .map(|i| two_phase_total_order(&db, &format!("T{i}"), &[root, EntityId(i as u32 + 1)]))
        .collect();
    TransactionSystem::new(db, txns).expect("star system is valid")
}

/// A long two-transaction pair for the Theorem 3 scaling benches: both
/// transactions access the same `n` entities with the given discipline.
pub fn scaling_pair(n: usize, discipline: LockDiscipline, seed: u64) -> TransactionSystem {
    SystemGen {
        n_sites: n,
        entities_per_site: 1,
        n_txns: 2,
        entities_per_txn: n,
        discipline,
        seed,
    }
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let cfg = SystemGen {
            n_sites: 3,
            entities_per_site: 2,
            n_txns: 3,
            entities_per_txn: 4,
            discipline: LockDiscipline::RandomTwoPhase,
            seed: 99,
        };
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.txns().iter().zip(b.txns()) {
            assert_eq!(format!("{x}"), format!("{y}"));
        }
    }

    #[test]
    fn ordered_two_phase_systems_certify() {
        let sys = SystemGen {
            n_sites: 4,
            entities_per_site: 1,
            n_txns: 4,
            entities_per_txn: 3,
            discipline: LockDiscipline::OrderedTwoPhase,
            seed: 5,
        }
        .generate();
        assert!(ddlf_core::certify_safe_and_deadlock_free(
            &sys,
            ddlf_core::CertifyOptions::default()
        )
        .is_ok());
    }

    #[test]
    fn ring_fails_star_passes() {
        let ring = ring_system(4);
        assert!(ddlf_core::certify_safe_and_deadlock_free(
            &ring,
            ddlf_core::CertifyOptions::default()
        )
        .is_err());
        let star = star_system(4);
        assert!(ddlf_core::certify_safe_and_deadlock_free(
            &star,
            ddlf_core::CertifyOptions::default()
        )
        .is_ok());
    }

    #[test]
    fn random_legal_is_legal() {
        for seed in 0..20 {
            let sys = SystemGen {
                n_sites: 2,
                entities_per_site: 3,
                n_txns: 2,
                entities_per_txn: 4,
                discipline: LockDiscipline::RandomLegal,
                seed,
            }
            .generate();
            // Construction validated at build time; sanity-check sizes.
            assert_eq!(sys.len(), 2);
            for (_, t) in sys.iter() {
                assert_eq!(t.node_count(), 8);
            }
        }
    }

    #[test]
    fn lock_unlock_shape_holds() {
        for seed in 0..10 {
            let sys = SystemGen {
                n_sites: 4,
                entities_per_site: 1,
                n_txns: 2,
                entities_per_txn: 4,
                discipline: LockDiscipline::LockUnlockShaped,
                seed,
            }
            .generate();
            for (_, t) in sys.iter() {
                assert!(ddlf_core::is_lock_unlock_shaped(t));
            }
        }
    }

    #[test]
    fn scaling_pair_sizes() {
        let sys = scaling_pair(10, LockDiscipline::OrderedTwoPhase, 0);
        assert_eq!(sys.len(), 2);
        assert_eq!(sys.txn(ddlf_model::TxnId(0)).node_count(), 20);
    }
}
