//! # ddlf-workloads — figures, generators, and scenarios
//!
//! Workload constructions for the Wolfson & Yannakakis reproduction:
//!
//! * [`figures`] — every figure of the paper as an executable artifact
//!   (Fig. 1 deadlock prefix, Fig. 2 Tirri counterexample, Fig. 3
//!   partial-order/extension separation, Fig. 6 copies separation);
//! * [`random`] — deterministic random transaction-system generators
//!   across locking disciplines, used by property tests and benches;
//! * [`scenarios`] — banking and warehouse workloads exercising the
//!   public API on the kind of multi-site transactions the paper's
//!   introduction motivates.

#![warn(missing_docs)]

pub mod figures;
pub mod random;
pub mod scenarios;

pub use figures::{
    fig1, fig2, fig2_transaction, fig3, fig3_deadlocking_extensions, fig6, fig6_transaction,
};
pub use random::{
    generate_transaction, ring_system, scaling_pair, star_system, two_phase_total_order,
    LockDiscipline, SystemGen,
};
pub use scenarios::{bank_greedy_pair, bank_ordered_pair, bank_uniform_transfer, Bank, Warehouse};
