//! # ddlf-server — a TCP wire-protocol front-end for the engine
//!
//! The paper's certify-then-run guarantee only pays off in a
//! *distributed* setting: a statically certified system can answer
//! external clients with **zero runtime coordination** — no deadlock
//! detector, no lock-wait timeouts, no aborts. This crate puts the
//! [`ddlf_engine::Engine`] behind a real socket so separate processes
//! can register transaction systems, submit instances, and read audited
//! reports.
//!
//! ## Architecture
//!
//! ```text
//!   Client (this crate / ddlf-audit submit / your process)
//!      │  Request  — 1 frame = u32 LE length + payload (msg::frame)
//!      ▼
//!   Server accept loop ── thread per connection ──▶ Shared state
//!      │                                            Mutex<Option<Engine>>
//!      │ RegisterSystem: SystemSpec JSON ──▶ certify (inflation) ──▶ new Engine
//!      │ Submit:   name ──▶ TxnId mix ──▶ Engine::run_mix (blocking)
//!      │ Report:   Engine::report_snapshot (cumulative, runs nothing)
//!      │ Stats:    Telemetry::snapshot digest (lock-free — answers
//!      │           mid-Submit without touching the engine mutex)
//!      │ Shutdown: flag + accept-loop wakeup
//!      ▼
//!   Response frame (typed; errors carry an ErrorKind, never a dropped
//!   connection)
//! ```
//!
//! ## Protocol
//!
//! One request per frame, one response frame per request, in order, over
//! [`ddlf_sim::msg::frame`]'s length-prefixed framing. Payload encoding
//! follows `ddlf_sim::msg`: a 1-byte opcode, little-endian fixed-width
//! integers, `u32`-length-prefixed UTF-8 strings.
//!
//! | opcode | request          | payload                                   | reply                      |
//! |-------:|------------------|-------------------------------------------|----------------------------|
//! | `1`    | `RegisterSystem` | inflate (`0`∣`1 k:u32`∣`2 cap:u32`), spec JSON str | `Registered` (`1`) |
//! | `2`    | `Submit`         | count `u32`, template str (`""` = all)    | `Submitted` (`2`)          |
//! | `3`    | `Report`         | —                                         | `Report` (`3`)             |
//! | `4`    | `Shutdown`       | —                                         | `ShuttingDown` (`4`)       |
//! | `5`    | `Stats`          | —                                         | `Stats` (`6`)              |
//!
//! | opcode | response        | payload                                                        |
//! |-------:|-----------------|----------------------------------------------------------------|
//! | `1`    | `Registered`    | certified/safety/floored bools, verdict str, rationale str, plan: `u32` count × (name str, `0` = ∞ ∣ `1 k:u64`) |
//! | `2`    | `Submitted`     | [`RunStats`]: 10 × `u64` counters, serializable byte (`0` none ∣ `1` false ∣ `2` true) |
//! | `3`    | `Report`        | same [`RunStats`] layout, cumulative over every submission     |
//! | `4`    | `ShuttingDown`  | —                                                              |
//! | `5`    | `Error`         | kind byte (`1` bad-request ∣ `2` no-system ∣ `3` unknown-template ∣ `4` bad-spec), message str |
//! | `6`    | `Stats`         | [`StatsSnapshot`]: 7 × `u64` gauges, phases: `u32` count × [`PhaseStat`] (name str, 6 × `u64`), templates: `u32` count × [`TemplateStat`] (name str, 4 × `u64`) |
//!
//! Any malformed request frame is answered with `Error(bad-request)`;
//! any malformed *response* decodes to `None` on the client and
//! surfaces as [`ClientError::Protocol`] — neither side ever acts on a
//! misread message.
//!
//! ## Example (in-process loopback)
//!
//! ```
//! use ddlf_server::{Client, InflateSpec, ServeConfig, Server};
//!
//! let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
//! let addr = server.local_addr().to_string();
//! let handle = std::thread::spawn(move || server.run().unwrap());
//!
//! let spec = r#"{
//!   "entities": [ {"name": "x", "site": 0}, {"name": "y", "site": 1} ],
//!   "transactions": [
//!     { "name": "T1", "ops": ["L x", "L y", "U y", "U x"] },
//!     { "name": "T2", "ops": ["L x", "L y", "U y", "U x"] }
//!   ]
//! }"#;
//! let mut client = Client::connect(&addr).unwrap();
//! let reg = client.register(spec, InflateSpec::None).unwrap();
//! assert!(reg.certified, "{}", reg.verdict);
//! let stats = client.submit_all(8).unwrap();
//! assert_eq!(stats.aborted_attempts, 0);     // the paper's payoff, over TCP
//! assert_eq!(stats.serializable, Some(true));
//! client.shutdown().unwrap();
//! handle.join().unwrap();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError};
pub use proto::{
    ErrorKind, InflateSpec, PhaseStat, PlanEntry, Registered, Request, Response, RunStats,
    SnapEntry, SnapshotReply, StatsSnapshot, TemplateStat,
};
pub use server::{ServeConfig, Server};
