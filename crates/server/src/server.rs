//! The blocking TCP server: one accept loop, one worker thread per
//! connection, all feeding the single shared [`Engine`].
//!
//! Connections speak length-prefixed frames ([`ddlf_sim::msg::frame`]),
//! one [`Request`] per frame, answered by exactly one [`Response`]
//! frame. A malformed frame gets a typed [`ErrorKind::BadRequest`] reply
//! rather than a dropped connection, so clients can probe safely.
//!
//! Registration *replaces* the engine (a new system means a new store
//! and a fresh certification); submissions run on the registered engine
//! with its admission gates shared across connections, so concurrent
//! clients together still cannot exceed the certified per-template
//! multiprogramming. Submissions serialize on the engine lock — each
//! run's wait-die timestamps are per-run instance ids, so two
//! interleaved runs could not share the store safely.

use crate::proto::{
    ErrorKind, InflateSpec, Registered, Request, Response, RunStats, SnapEntry, SnapshotReply,
    StatsSnapshot,
};
use ddlf_engine::{AdmissionOptions, Engine, EngineConfig, Inflation, Store, Telemetry};
use ddlf_lockdep::{blocking_region, BlockingKind};
use ddlf_model::{EntityId, SystemSpec, TxnId};
use ddlf_sim::msg::frame;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Server tuning: how registered engines are configured.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads per submission run.
    pub threads: usize,
    /// Inflation applied when a `RegisterSystem` request asks for
    /// [`InflateSpec::None`] — the `--inflate` flag of `ddlf-audit
    /// serve`. An explicit client request always wins.
    pub default_inflate: InflateSpec,
    /// Engine knobs for registered systems (`threads`/`instances` are
    /// overridden per registration/submission).
    pub engine: EngineConfig,
    /// Write-ahead log directory for registered engines: every
    /// registration rotates it and logs there, so a crashed server can
    /// be replayed with `ddlf-audit recover` (or resumed by restarting
    /// `serve --wal` on the same directory).
    pub wal_dir: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            default_inflate: InflateSpec::None,
            // Wire submissions default to batched admission: a Submit's
            // instances arrive as one pre-declared block, so chunked
            // admission (one gate acquisition + one Begin append per
            // chunk) cuts the per-instance critical sections that made
            // submit-over-TCP measurably slower than a direct
            // `Engine::run` of the same workload. `ddlf-audit run` keeps
            // batch = 1 unless asked (`--admission-batch`).
            engine: EngineConfig {
                admission_batch: 16,
                ..EngineConfig::default()
            },
            wal_dir: None,
        }
    }
}

fn admission_of(inflate: InflateSpec, threads: usize) -> AdmissionOptions {
    AdmissionOptions {
        inflate: match inflate {
            InflateSpec::None => Inflation::None,
            InflateSpec::Uniform(k) => Inflation::Uniform(k as usize),
            InflateSpec::Auto { cap } => Inflation::Auto {
                cap: (cap as usize).clamp(1, threads.max(1)),
            },
        },
        ..Default::default()
    }
}

struct Shared {
    engine: Mutex<Option<Engine>>,
    /// The telemetry handle every registered engine records into
    /// (registration clones `cfg.engine`, so the handle is shared, not
    /// replaced). Held here so [`Request::Stats`] can digest it without
    /// touching the engine mutex — `submit` holds that mutex for an
    /// entire run, and a stats probe must answer *during* the run, not
    /// after it.
    telemetry: Telemetry,
    /// The registered engine's store, parked here so [`Request::ReadOnly`]
    /// can scan the multiversion chains without touching the engine
    /// mutex — like `telemetry`, a snapshot read must answer *during* a
    /// `Submit`, not after it. The lock guards only the `Arc` clone; the
    /// scan itself runs lock-free on the shared store.
    read_store: Mutex<Option<Arc<Store>>>,
    cfg: ServeConfig,
    shutdown: AtomicBool,
    addr: SocketAddr,
    /// Read-half handles of the *live* connections (keyed by a per-
    /// connection id), so shutdown can unblock workers parked in
    /// `read_frame` on idle connections (their next read sees EOF and
    /// the worker exits cleanly). Workers deregister their entry on
    /// exit — retaining it would leak one fd per connection ever
    /// accepted and hold dead peers' sockets half-open.
    conns: Mutex<HashMap<u64, TcpStream>>,
}

impl Shared {
    fn handle(&self, req: Request) -> Response {
        match req {
            Request::RegisterSystem { spec_json, inflate } => self.register(&spec_json, inflate),
            Request::Submit { template, count } => self.submit(&template, count),
            Request::Report => match self.engine.lock().as_ref() {
                Some(engine) => Response::Report(RunStats::from_report(&engine.report_snapshot())),
                None => no_system(),
            },
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                Response::ShuttingDown
            }
            // Deliberately lock-free: reads the shared telemetry handle,
            // never the engine mutex, so it answers mid-`Submit`. Before
            // any registration the digest is legitimately all zeros.
            Request::Stats => Response::Stats(StatsSnapshot::from_telemetry(&self.telemetry)),
            Request::ReadOnly { entities } => self.read_only(&entities),
        }
    }

    /// Answers one read-only transaction over the zero-lock snapshot
    /// path. The engine mutex is never taken: `read_store` holds a
    /// brief leaf lock around the `Arc` clone, then the scan runs on
    /// the lock-free multiversion chains — so a reader observes a
    /// committed cut even while a `Submit` run is mid-flight.
    fn read_only(&self, names: &[String]) -> Response {
        let Some(store) = self.read_store.lock().clone() else {
            return no_system();
        };
        let db = store.db();
        let ids: Vec<EntityId> = if names.is_empty() {
            // Empty request = the whole database, in schema order.
            db.entities().collect()
        } else {
            let mut ids = Vec::with_capacity(names.len());
            for name in names {
                match db.entity_by_name(name) {
                    Some(e) => ids.push(e),
                    None => {
                        return Response::Error {
                            kind: ErrorKind::BadRequest,
                            message: format!("no entity named {name:?}"),
                        }
                    }
                }
            }
            ids
        };
        let snap = store.read_only_snapshot(&ids);
        Response::Snapshot(SnapshotReply {
            ts: snap.ts,
            entries: snap
                .entries
                .iter()
                .map(|e| SnapEntry {
                    name: db.name_of(e.entity).to_string(),
                    commit_ts: e.commit_ts,
                    version: e.version,
                    value: e.value,
                })
                .collect(),
        })
    }

    fn register(&self, spec_json: &str, inflate: InflateSpec) -> Response {
        let spec: SystemSpec = match serde_json::from_str(spec_json) {
            Ok(s) => s,
            Err(e) => {
                return Response::Error {
                    kind: ErrorKind::BadSpec,
                    message: format!("spec parse error: {e}"),
                }
            }
        };
        let sys = match spec.build() {
            Ok(s) => s,
            Err(e) => {
                return Response::Error {
                    kind: ErrorKind::BadSpec,
                    message: format!("spec error: {e}"),
                }
            }
        };
        let requested = if inflate == InflateSpec::None {
            self.cfg.default_inflate
        } else {
            inflate
        };
        // The registry treats a zero-copy inflation as a caller bug and
        // panics; over the wire it is a peer bug, so answer it typed
        // instead of killing the worker. (A zero `Auto` cap is clamped
        // to 1 below.)
        if requested == InflateSpec::Uniform(0) {
            return Response::Error {
                kind: ErrorKind::BadRequest,
                message: "inflation k must be ≥ 1".to_string(),
            };
        }
        let engine = match Engine::try_with_admission(
            sys,
            admission_of(requested, self.cfg.threads),
            EngineConfig {
                threads: self.cfg.threads,
                wal_dir: self.cfg.wal_dir.clone(),
                ..self.cfg.engine.clone()
            },
        ) {
            Ok(e) => e,
            // A registration rotates the WAL directory; an unusable
            // directory is an operator-side error the peer should see
            // typed, not a dead worker.
            Err(e) => {
                return Response::Error {
                    kind: ErrorKind::BadRequest,
                    message: format!("WAL directory unusable: {e}"),
                }
            }
        };
        let reply = Registered::from_registry(engine.registry());
        // Park the new store for the lock-free read path before the
        // engine slot swaps: a racing reader sees either the old system
        // or the new one, never a dangling store.
        *self.read_store.lock() = Some(engine.store_handle());
        *self.engine.lock() = Some(engine);
        Response::Registered(reply)
    }

    fn submit(&self, template: &str, count: u32) -> Response {
        // Hold the engine lock for the whole run: submissions serialize
        // (wait-die timestamps are per-run ids), registrations cannot
        // swap the engine mid-run.
        let guard = self.engine.lock();
        let Some(engine) = guard.as_ref() else {
            return no_system();
        };
        let sys = engine.registry().system();
        let mix: Vec<(TxnId, usize)> = if template.is_empty() {
            // Round-robin over every template, like `Engine::run`.
            let n = sys.len();
            (0..n)
                .map(|i| {
                    (
                        TxnId::from_index(i),
                        count as usize / n + usize::from(i < count as usize % n),
                    )
                })
                .collect()
        } else {
            match sys.iter().find(|(_, txn)| txn.name() == template) {
                Some((t, _)) => vec![(t, count as usize)],
                None => {
                    return Response::Error {
                        kind: ErrorKind::UnknownTemplate,
                        message: format!("no template named {template:?}"),
                    }
                }
            }
        };
        Response::Submitted(RunStats::from_report(&engine.run_mix(&mix)))
    }
}

/// Removes a connection's registered read-half handle when its worker
/// exits, however it exits.
struct Deregister {
    shared: Arc<Shared>,
    id: u64,
}

impl Drop for Deregister {
    fn drop(&mut self) {
        self.shared.conns.lock().remove(&self.id);
    }
}

fn no_system() -> Response {
    Response::Error {
        kind: ErrorKind::NoSystem,
        message: "register a system first".to_string(),
    }
}

/// A bound-but-not-yet-serving TCP front-end over one [`Engine`] slot.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServeConfig) -> io::Result<Server> {
        Self::bind_with(addr, cfg, None)
    }

    /// [`Server::bind`] with an engine pre-installed — the recovery path
    /// of `ddlf-audit serve --wal`, where the WAL of a previous process
    /// has already been replayed into `engine`. A later `RegisterSystem`
    /// replaces it (and rotates the WAL) as usual.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        cfg: ServeConfig,
        engine: Option<Engine>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                read_store: Mutex::new_named(
                    "server.read_store",
                    engine.as_ref().map(Engine::store_handle),
                ),
                engine: Mutex::new_named("server.engine", engine),
                telemetry: cfg.engine.telemetry.clone(),
                cfg,
                shutdown: AtomicBool::new(false),
                addr,
                conns: Mutex::new_named("server.conns", HashMap::new()),
            }),
        })
    }

    /// The bound address (read this after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Serves until a [`Request::Shutdown`] arrives, then drains: every
    /// connection worker is **joined** before this returns, so a request
    /// that was executing when shutdown arrived still completes and gets
    /// its reply. Workers parked on idle connections are unblocked by
    /// shutting down their socket's read half (their client sees a
    /// normal close).
    pub fn run(self) -> io::Result<()> {
        let mut workers = Vec::new();
        let mut next_conn_id = 0u64;
        loop {
            // The accept wait is a lockdep blocking region: the accept
            // loop must hold no lock while parked in the kernel (no
            // class is Accept-allowlisted), or a stalled client could
            // wedge every worker behind it.
            let conn = {
                let _accept = blocking_region(BlockingKind::Accept);
                self.listener.accept()
            };
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok((s, _peer)) => s,
                Err(e) => {
                    eprintln!("ddlf-server: accept error: {e}");
                    continue;
                }
            };
            // Request/reply traffic is latency-bound small frames;
            // leaving Nagle on costs a delayed-ACK stall per round-trip.
            let _ = stream.set_nodelay(true);
            // Finished workers' handles are dead weight; reap them so a
            // long-lived server does not accumulate one per connection
            // ever accepted. (Dropping a finished handle just detaches
            // an already-exited thread.)
            workers.retain(|h: &std::thread::JoinHandle<()>| !h.is_finished());
            let conn_id = next_conn_id;
            next_conn_id += 1;
            if let Ok(handle) = stream.try_clone() {
                self.shared.conns.lock().insert(conn_id, handle);
            }
            let shared = Arc::clone(&self.shared);
            workers.push(std::thread::spawn(move || {
                // Deregister on every exit path (including an unwind):
                // a stale entry would hold the peer's socket half-open,
                // so the client never sees EOF and hangs.
                let _dereg = Deregister {
                    shared: Arc::clone(&shared),
                    id: conn_id,
                };
                if let Err(e) = serve_connection(stream, &shared) {
                    // Peer went away mid-frame; their problem, not fatal.
                    eprintln!("ddlf-server: connection error: {e}");
                }
            }));
        }
        // Unblock workers waiting for a next request that will never
        // come; a worker mid-request is left alone — the join below
        // waits for it to finish executing and reply. Drain the map
        // under the lock but issue the socket syscalls *outside* it:
        // every exiting worker's `Deregister` takes `server.conns` too,
        // and holding it across kernel calls would stall their teardown
        // behind the network stack (lockdep shutdown-path audit).
        let idle: Vec<(u64, TcpStream)> = self.shared.conns.lock().drain().collect();
        for (_, conn) in &idle {
            let _ = conn.shutdown(std::net::Shutdown::Read);
        }
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Drains one connection: read a frame, decode, handle, reply, repeat
/// until clean EOF. On `Shutdown`, also wakes the accept loop so
/// [`Server::run`] returns.
fn serve_connection(mut stream: TcpStream, shared: &Shared) -> io::Result<()> {
    while let Some(payload) = frame::read_frame(&mut stream)? {
        let resp = match Request::decode(payload.into()) {
            Some(req) => shared.handle(req),
            None => Response::Error {
                kind: ErrorKind::BadRequest,
                message: "frame did not decode to a request".to_string(),
            },
        };
        frame::write_frame(&mut stream, resp.encode().as_ref())?;
        if matches!(resp, Response::ShuttingDown) {
            // The accept loop is parked in `accept`; poke it so it
            // observes the flag and exits.
            let _ = TcpStream::connect(shared.addr);
            break;
        }
    }
    Ok(())
}
