//! The typed client: connect, framed round-trips, reconnect-on-EOF.
//!
//! A [`Client`] owns one TCP connection and remembers its address. When
//! a round-trip fails because the connection died (a send error, or EOF
//! where a reply was due), the client reconnects once and — for
//! *idempotent* requests (`Report`, `Shutdown`, `RegisterSystem`) —
//! resends. A `Submit` whose reply was lost is **not** resent: the
//! server may have executed it, and re-running transactions is not the
//! client's call to make. That failure surfaces as
//! [`ClientError::ReplyLost`] so callers can decide.

use crate::proto::{
    ErrorKind, InflateSpec, Registered, Request, Response, RunStats, SnapshotReply, StatsSnapshot,
};
use ddlf_sim::msg::frame;
use std::fmt;
use std::io;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Client-side failure of one round-trip.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, send, or receive).
    Io(io::Error),
    /// The reply frame did not decode, or was the wrong variant for the
    /// request.
    Protocol(String),
    /// The server rejected the request with a typed error.
    Server {
        /// Typed rejection cause.
        kind: ErrorKind,
        /// Human detail.
        message: String,
    },
    /// The connection died after a non-idempotent request was sent but
    /// before its reply arrived; the request may or may not have
    /// executed.
    ReplyLost,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { kind, message } => write!(f, "server error ({kind}): {message}"),
            ClientError::ReplyLost => write!(
                f,
                "connection lost awaiting a non-idempotent reply; the request may have executed"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

fn is_idempotent(req: &Request) -> bool {
    // Submit runs transactions; everything else only (re)states intent.
    !matches!(req, Request::Submit { .. })
}

/// A connected wire-protocol client.
pub struct Client {
    addr: String,
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl Into<String>) -> io::Result<Client> {
        let addr = addr.into();
        let stream = TcpStream::connect(&addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { addr, stream })
    }

    /// [`connect`](Client::connect), retrying with a small backoff until
    /// `deadline` elapses — for racing a server that is still binding
    /// (the CI smoke test starts both processes concurrently).
    pub fn connect_retry(addr: impl Into<String>, deadline: Duration) -> io::Result<Client> {
        let addr = addr.into();
        let started = Instant::now();
        loop {
            match TcpStream::connect(&addr) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    return Ok(Client { addr, stream });
                }
                Err(e) if started.elapsed() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    /// The address this client (re)connects to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn reconnect(&mut self) -> io::Result<()> {
        self.stream = TcpStream::connect(&self.addr)?;
        let _ = self.stream.set_nodelay(true);
        Ok(())
    }

    /// One send on the current connection. `Ok(None)` = the connection
    /// is dead (EOF where a reply was due, or a send error of the
    /// disconnect family).
    fn try_round_trip(&mut self, req: &Request) -> io::Result<Option<Response>> {
        let payload = req.encode();
        match frame::write_frame(&mut self.stream, payload.as_ref()) {
            Ok(()) => {}
            Err(e) if is_disconnect(&e) => return Ok(None),
            Err(e) => return Err(e),
        }
        match frame::read_frame(&mut self.stream) {
            Ok(Some(reply)) => Ok(Some(Response::decode(reply.into()).ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "undecodable reply frame")
            })?)),
            Ok(None) => Ok(None),
            Err(e) if is_disconnect(&e) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// One request/reply exchange, with the reconnect policy applied.
    pub fn round_trip(&mut self, req: &Request) -> Result<Response, ClientError> {
        match self.try_round_trip(req) {
            Ok(Some(resp)) => return Ok(resp),
            Ok(None) => {}
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                return Err(ClientError::Protocol(e.to_string()))
            }
            Err(e) => return Err(ClientError::Io(e)),
        }
        // The connection died under this exchange.
        if !is_idempotent(req) {
            return Err(ClientError::ReplyLost);
        }
        self.reconnect()?;
        match self.try_round_trip(req) {
            Ok(Some(resp)) => Ok(resp),
            Ok(None) => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "server closed the connection twice in a row",
            ))),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                Err(ClientError::Protocol(e.to_string()))
            }
            Err(e) => Err(ClientError::Io(e)),
        }
    }

    fn expect_error(resp: Response, want: &str) -> ClientError {
        match resp {
            Response::Error { kind, message } => ClientError::Server { kind, message },
            other => ClientError::Protocol(format!("expected {want}, got {other:?}")),
        }
    }

    /// Registers a system from its spec JSON; returns the admission
    /// verdict and certified plan.
    pub fn register(
        &mut self,
        spec_json: &str,
        inflate: InflateSpec,
    ) -> Result<Registered, ClientError> {
        let req = Request::RegisterSystem {
            spec_json: spec_json.to_string(),
            inflate,
        };
        match self.round_trip(&req)? {
            Response::Registered(r) => Ok(r),
            other => Err(Self::expect_error(other, "Registered")),
        }
    }

    /// Runs `count` instances of `template` (empty = round-robin over
    /// all templates) and returns that run's counters.
    pub fn submit(&mut self, template: &str, count: u32) -> Result<RunStats, ClientError> {
        let req = Request::Submit {
            template: template.to_string(),
            count,
        };
        match self.round_trip(&req)? {
            Response::Submitted(stats) => Ok(stats),
            other => Err(Self::expect_error(other, "Submitted")),
        }
    }

    /// Submits `count` instances round-robin over every template.
    pub fn submit_all(&mut self, count: u32) -> Result<RunStats, ClientError> {
        self.submit("", count)
    }

    /// Reads the cumulative report without running anything.
    pub fn report(&mut self) -> Result<RunStats, ClientError> {
        match self.round_trip(&Request::Report)? {
            Response::Report(stats) => Ok(stats),
            other => Err(Self::expect_error(other, "Report")),
        }
    }

    /// Reads the server's live telemetry digest without running (or
    /// waiting for) anything: the server answers from its lock-free
    /// telemetry handle even while another connection's `Submit` holds
    /// the engine for a long run. All zeros (no phases, no templates)
    /// means the server runs with telemetry disabled or nothing is
    /// registered yet.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(Self::expect_error(other, "Stats")),
        }
    }

    /// Runs one read-only transaction: a committed multiversion cut of
    /// the named entities (empty = the whole database, schema order).
    /// Idempotent and served off the lock-free snapshot path, so it
    /// answers even while another connection's `Submit` holds the
    /// engine for a long run.
    pub fn read(&mut self, entities: &[String]) -> Result<SnapshotReply, ClientError> {
        let req = Request::ReadOnly {
            entities: entities.to_vec(),
        };
        match self.round_trip(&req)? {
            Response::Snapshot(snap) => Ok(snap),
            other => Err(Self::expect_error(other, "Snapshot")),
        }
    }

    /// Asks the server to exit its accept loop.
    ///
    /// Shutdown is idempotent and its goal is the server being down, so
    /// losing the race to the server counts as success: a retry whose
    /// reconnect is refused, or whose fresh connection the draining
    /// server closes unreplied, returns `Ok(())`.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Shutdown) {
            Ok(Response::ShuttingDown) => Ok(()),
            Ok(other) => Err(Self::expect_error(other, "ShuttingDown")),
            Err(ClientError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionRefused | io::ErrorKind::ConnectionReset
                ) =>
            {
                Ok(())
            }
            Err(e) => Err(e),
        }
    }
}

fn is_disconnect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::NotConnected
    )
}
