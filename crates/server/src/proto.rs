//! The wire protocol: request/response enums with a compact binary
//! encoding, following the `ddlf_sim::msg` conventions (1-byte tag,
//! little-endian fixed-width integers, length-prefixed UTF-8 strings).
//!
//! A protocol unit is one encoded message carried in one
//! [`ddlf_sim::msg::frame`] frame. Decoding is strict: unknown tags,
//! short buffers, invalid enum bytes, non-UTF-8 strings, and trailing
//! garbage all decode to `None`, so a malformed peer can never produce a
//! misread message — only a rejected one.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use ddlf_engine::{Phase, Report, Telemetry, TelemetrySnapshot, TemplateRegistry};
// The checked readers/writers (bounds-checked little-endian integers,
// length-prefixed strings) are shared with the engine's WAL record
// format — one hardened implementation for every msg-convention codec.
use ddlf_sim::msg::codec::{finished, get_bool, get_str, get_u32, get_u64, get_u8, put_str};
use std::fmt;

// ---- requests ----------------------------------------------------------

/// The client's requested per-template concurrency, mirroring
/// `ddlf_engine::Inflation` (minus the per-template vector, which has no
/// spec-file syntax yet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InflateSpec {
    /// One instance per template.
    #[default]
    None,
    /// The same `k ≥ 1` for every template, certified up front.
    Uniform(u32),
    /// Search for the largest certified uniform `k ≤ cap`.
    Auto {
        /// Upper bound for the search.
        cap: u32,
    },
}

const INFLATE_NONE: u8 = 0;
const INFLATE_UNIFORM: u8 = 1;
const INFLATE_AUTO: u8 = 2;

impl InflateSpec {
    fn encode_into(self, b: &mut BytesMut) {
        match self {
            InflateSpec::None => b.put_u8(INFLATE_NONE),
            InflateSpec::Uniform(k) => {
                b.put_u8(INFLATE_UNIFORM);
                b.put_u32_le(k);
            }
            InflateSpec::Auto { cap } => {
                b.put_u8(INFLATE_AUTO);
                b.put_u32_le(cap);
            }
        }
    }

    fn decode_from(b: &mut Bytes) -> Option<Self> {
        match get_u8(b)? {
            INFLATE_NONE => Some(InflateSpec::None),
            INFLATE_UNIFORM => Some(InflateSpec::Uniform(get_u32(b)?)),
            INFLATE_AUTO => Some(InflateSpec::Auto { cap: get_u32(b)? }),
            _ => None,
        }
    }
}

impl fmt::Display for InflateSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InflateSpec::None => write!(f, "none"),
            InflateSpec::Uniform(k) => write!(f, "k = {k}"),
            InflateSpec::Auto { cap } => write!(f, "auto (cap {cap})"),
        }
    }
}

/// A client request. One request per frame; the server answers every
/// frame with exactly one [`Response`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Install a transaction system from a `ddlf_model::SystemSpec` JSON
    /// string and certify it at the requested inflation (an
    /// [`InflateSpec::None`] request adopts the server's default).
    /// Replaces any previously registered system.
    RegisterSystem {
        /// The spec JSON, exactly as `ddlf-audit` reads it from disk.
        spec_json: String,
        /// Requested per-template concurrency.
        inflate: InflateSpec,
    },
    /// Execute `count` instances of the template named `template`
    /// (`""` = round-robin over every registered template, like
    /// `ddlf-audit run`). Blocks until the run completes.
    Submit {
        /// Template name, or empty for all templates.
        template: String,
        /// Number of instances.
        count: u32,
    },
    /// Read the cumulative report of every submission so far
    /// ([`ddlf_engine::Engine::report_snapshot`]); runs nothing.
    Report,
    /// Stop accepting connections and exit the serve loop after
    /// replying.
    Shutdown,
    /// Read the server's live telemetry snapshot (phase-latency
    /// histograms, per-template outcome counters, gauges). Answered
    /// from the engine's lock-free telemetry handle **without taking
    /// the engine lock**, so it returns promptly even while a long
    /// `Submit` is running; runs nothing. Before any `RegisterSystem`
    /// the snapshot is legitimately all zeros (not an error).
    Stats,
    /// Run a **read-only transaction**: read every named entity (empty
    /// vector = the whole database) at one committed multiversion cut.
    /// Answered from the store's zero-lock snapshot path **without
    /// touching the engine lock**, so reads return promptly — and
    /// observe fresh committed cuts — even while a long `Submit` is
    /// running. Logs nothing to the WAL.
    ReadOnly {
        /// Entity names to read; empty reads every entity in schema
        /// order.
        entities: Vec<String>,
    },
}

const REQ_REGISTER: u8 = 1;
const REQ_SUBMIT: u8 = 2;
const REQ_REPORT: u8 = 3;
const REQ_SHUTDOWN: u8 = 4;
const REQ_STATS: u8 = 5;
const REQ_READ_ONLY: u8 = 6;

impl Request {
    /// Encodes to one protocol unit (to be carried in one frame).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(16);
        match self {
            Request::RegisterSystem { spec_json, inflate } => {
                b.put_u8(REQ_REGISTER);
                inflate.encode_into(&mut b);
                put_str(&mut b, spec_json);
            }
            Request::Submit { template, count } => {
                b.put_u8(REQ_SUBMIT);
                b.put_u32_le(*count);
                put_str(&mut b, template);
            }
            Request::Report => b.put_u8(REQ_REPORT),
            Request::Shutdown => b.put_u8(REQ_SHUTDOWN),
            Request::Stats => b.put_u8(REQ_STATS),
            Request::ReadOnly { entities } => {
                b.put_u8(REQ_READ_ONLY);
                b.put_u32_le(u32::try_from(entities.len()).expect("entity list fits a frame"));
                for name in entities {
                    put_str(&mut b, name);
                }
            }
        }
        b.freeze()
    }

    /// Decodes one protocol unit; `None` on any malformation (including
    /// trailing bytes).
    pub fn decode(mut buf: Bytes) -> Option<Request> {
        let tag = get_u8(&mut buf)?;
        let req = match tag {
            REQ_REGISTER => Request::RegisterSystem {
                inflate: InflateSpec::decode_from(&mut buf)?,
                spec_json: get_str(&mut buf)?,
            },
            REQ_SUBMIT => Request::Submit {
                count: get_u32(&mut buf)?,
                template: get_str(&mut buf)?,
            },
            REQ_REPORT => Request::Report,
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_STATS => Request::Stats,
            REQ_READ_ONLY => {
                let n = get_u32(&mut buf)? as usize;
                // Each name is ≥ 4 bytes (its length prefix); bounding
                // up front keeps a hostile count from pre-allocating
                // unboundedly.
                if buf.remaining() < n.checked_mul(4)? {
                    return None;
                }
                let mut entities = Vec::with_capacity(n);
                for _ in 0..n {
                    entities.push(get_str(&mut buf)?);
                }
                Request::ReadOnly { entities }
            }
            _ => return None,
        };
        finished(&buf, req)
    }
}

// ---- responses ---------------------------------------------------------

/// One template's slot count in the certified admission plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanEntry {
    /// Template name.
    pub template: String,
    /// Certified concurrent slots; `None` = unbounded (Theorem 5).
    pub slots: Option<u64>,
}

/// The reply to a successful [`Request::RegisterSystem`]: the admission
/// verdict and the certified plan, so the client knows up front which
/// execution path (and concurrency ceiling) its submissions get.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Registered {
    /// Whether the no-detector path is admitted.
    pub certified: bool,
    /// Whether the certificate also guarantees serializability (not
    /// just deadlock-freedom).
    pub guarantees_safety: bool,
    /// Whether a requested inflation failed to certify and the plan was
    /// floored back to `k = 1`.
    pub floored: bool,
    /// Human rendering of the admission verdict.
    pub verdict: String,
    /// The certifier's rationale (certificate or rejection text).
    pub rationale: String,
    /// Per-template certified slots, template order.
    pub plan: Vec<PlanEntry>,
}

impl Registered {
    /// Builds the reply from a freshly registered engine's registry.
    pub fn from_registry(reg: &TemplateRegistry) -> Self {
        let plan = reg
            .system()
            .iter()
            .map(|(t, txn)| PlanEntry {
                template: txn.name().to_string(),
                slots: reg.plan().slots_of(t).limit().map(|k| k as u64),
            })
            .collect();
        Registered {
            certified: reg.verdict().is_certified(),
            guarantees_safety: reg.verdict().guarantees_safety(),
            floored: reg.plan().floored,
            verdict: reg.verdict().to_string(),
            rationale: reg.plan().rationale.clone(),
            plan,
        }
    }

    /// A multi-line human rendering of the admission plan, matching
    /// `AdmissionPlan::render`'s server-side format so `ddlf-audit run`
    /// and `ddlf-audit submit` print identical plans for the same
    /// system.
    pub fn render_plan(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "admission plan{}: {}",
            if self.floored {
                " (floored to k=1)"
            } else {
                ""
            },
            self.rationale
        );
        for entry in &self.plan {
            let _ = match entry.slots {
                Some(k) => writeln!(out, "  {:<24} k = {k}", entry.template),
                None => writeln!(out, "  {:<24} k = ∞", entry.template),
            };
        }
        out
    }
}

/// Execution counters of one submission (or the cumulative snapshot),
/// the wire projection of [`ddlf_engine::Report`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Instances submitted.
    pub instances: u64,
    /// Instances that ran to commit.
    pub committed: u64,
    /// Aborted (and retried) wait-die attempts; always 0 on the
    /// certified path.
    pub aborted_attempts: u64,
    /// Aborts that exposed a write (voids the audit).
    pub dirty_aborts: u64,
    /// Instances that exhausted their attempt budget.
    pub failed: u64,
    /// Reads performed under locks.
    pub reads: u64,
    /// Writes committed to the store.
    pub writes: u64,
    /// Wall-clock microseconds.
    pub wall_us: u64,
    /// Highest per-template multiprogramming level achieved.
    pub peak_inflight: u64,
    /// Lock/unlock events recorded.
    pub history_len: u64,
    /// The `D(S)` audit verdict (`None` = not auditable).
    pub serializable: Option<bool>,
}

impl RunStats {
    /// Projects an engine report onto the wire.
    pub fn from_report(r: &Report) -> Self {
        RunStats {
            instances: r.instances as u64,
            committed: r.committed as u64,
            aborted_attempts: r.aborted_attempts as u64,
            dirty_aborts: r.dirty_aborts as u64,
            failed: r.failed.len() as u64,
            reads: r.reads,
            writes: r.writes,
            wall_us: u64::try_from(r.wall.as_micros()).unwrap_or(u64::MAX),
            peak_inflight: r.peak_inflight() as u64,
            history_len: r.history_len as u64,
            serializable: r.serializable,
        }
    }

    /// Whether every submitted instance committed.
    pub fn all_committed(&self) -> bool {
        self.committed == self.instances && self.failed == 0
    }

    /// One-line human summary (client-side mirror of
    /// `Report::summary`).
    pub fn summary(&self) -> String {
        format!(
            "committed {}/{} aborts {} | {:.0} txn/s | peak k {} | serializable {:?}",
            self.committed,
            self.instances,
            self.aborted_attempts,
            if self.wall_us == 0 {
                0.0
            } else {
                self.committed as f64 / (self.wall_us as f64 / 1e6)
            },
            self.peak_inflight,
            self.serializable,
        )
    }

    fn encode_into(&self, b: &mut BytesMut) {
        for v in [
            self.instances,
            self.committed,
            self.aborted_attempts,
            self.dirty_aborts,
            self.failed,
            self.reads,
            self.writes,
            self.wall_us,
            self.peak_inflight,
            self.history_len,
        ] {
            b.put_u64_le(v);
        }
        b.put_u8(match self.serializable {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        });
    }

    fn decode_from(b: &mut Bytes) -> Option<Self> {
        let mut s = RunStats {
            instances: get_u64(b)?,
            committed: get_u64(b)?,
            aborted_attempts: get_u64(b)?,
            dirty_aborts: get_u64(b)?,
            failed: get_u64(b)?,
            reads: get_u64(b)?,
            writes: get_u64(b)?,
            wall_us: get_u64(b)?,
            peak_inflight: get_u64(b)?,
            history_len: get_u64(b)?,
            serializable: None,
        };
        s.serializable = match get_u8(b)? {
            0 => None,
            1 => Some(false),
            2 => Some(true),
            _ => return None,
        };
        Some(s)
    }
}

/// One phase-latency histogram digest in a [`StatsSnapshot`]: the
/// counters a dashboard wants (count, mean via `sum/count`, tail
/// percentiles) without shipping all 256 raw buckets over the wire.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseStat {
    /// Phase name (`ddlf_engine::Phase::name`, e.g. `"lock_wait"`).
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, nanoseconds (exact; `sum / count` = mean).
    pub sum_ns: u64,
    /// Median latency, nanoseconds (bucket upper bound, ≤ 25% error).
    pub p50_ns: u64,
    /// 95th-percentile latency, nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile latency, nanoseconds.
    pub p99_ns: u64,
    /// Largest sample, nanoseconds (exact).
    pub max_ns: u64,
}

impl PhaseStat {
    fn encode_into(&self, b: &mut BytesMut) {
        put_str(b, &self.name);
        for v in [
            self.count,
            self.sum_ns,
            self.p50_ns,
            self.p95_ns,
            self.p99_ns,
            self.max_ns,
        ] {
            b.put_u64_le(v);
        }
    }

    fn decode_from(b: &mut Bytes) -> Option<Self> {
        Some(PhaseStat {
            name: get_str(b)?,
            count: get_u64(b)?,
            sum_ns: get_u64(b)?,
            p50_ns: get_u64(b)?,
            p95_ns: get_u64(b)?,
            p99_ns: get_u64(b)?,
            max_ns: get_u64(b)?,
        })
    }
}

/// One template's outcome counters in a [`StatsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TemplateStat {
    /// Template name.
    pub name: String,
    /// Instances committed.
    pub committed: u64,
    /// Attempts aborted (each wait-die retry counts once).
    pub aborted: u64,
    /// Wound-wait wounds (sim-only; 0 on the engine path).
    pub wounds: u64,
    /// Wait-die deaths.
    pub dies: u64,
}

impl TemplateStat {
    fn encode_into(&self, b: &mut BytesMut) {
        put_str(b, &self.name);
        for v in [self.committed, self.aborted, self.wounds, self.dies] {
            b.put_u64_le(v);
        }
    }

    fn decode_from(b: &mut Bytes) -> Option<Self> {
        Some(TemplateStat {
            name: get_str(b)?,
            committed: get_u64(b)?,
            aborted: get_u64(b)?,
            wounds: get_u64(b)?,
            dies: get_u64(b)?,
        })
    }
}

/// The reply to [`Request::Stats`]: the wire projection of
/// `ddlf_telemetry::TelemetrySnapshot`, with each phase histogram
/// digested to [`PhaseStat`] percentiles.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Microseconds since the server's telemetry handle was created.
    pub uptime_us: u64,
    /// Instances currently admitted and executing.
    pub inflight: i64,
    /// Committed-transaction nodes in the streaming auditor's graph.
    pub auditor_nodes: u64,
    /// Conflict arcs in the streaming auditor's graph.
    pub auditor_arcs: u64,
    /// Bytes appended to WAL log files (payload + frame headers).
    pub wal_bytes: u64,
    /// Lifecycle events currently held in the trace ring.
    pub trace_captured: u64,
    /// Trace events evicted because the ring was full.
    pub trace_dropped: u64,
    /// Decision-log flush groups written by the WAL's group committer
    /// (each is one data-log flush and at most one fsync).
    pub group_flushes: u64,
    /// Commit decisions written through the group committer;
    /// `group_commits / group_flushes` is the mean group size.
    pub group_commits: u64,
    /// Committed versions retained across all multiversion chains.
    pub chain_versions: u64,
    /// Longest per-entity version chain.
    pub chain_max_len: u64,
    /// The GC low-watermark of live read-only snapshots at the last
    /// truncation pass.
    pub chain_watermark: u64,
    /// Per-phase latency digests, [`ddlf_engine::Phase::ALL`] order
    /// (empty when the server runs with telemetry disabled).
    pub phases: Vec<PhaseStat>,
    /// Per-template outcome counters, template order (empty before the
    /// first `RegisterSystem`).
    pub templates: Vec<TemplateStat>,
}

impl StatsSnapshot {
    /// Digests a live telemetry handle for the wire. A disabled handle
    /// digests to the all-zero default with no phase list, so clients
    /// can tell "telemetry off" from "telemetry on, nothing yet".
    pub fn from_telemetry(tel: &Telemetry) -> Self {
        if !tel.is_enabled() {
            return StatsSnapshot::default();
        }
        Self::from_snapshot(&tel.snapshot())
    }

    /// Digests an already-taken [`TelemetrySnapshot`]. Always emits all
    /// seven phase digests, [`Phase::ALL`] order, even at count 0.
    pub fn from_snapshot(s: &TelemetrySnapshot) -> Self {
        let phases = Phase::ALL
            .iter()
            .map(|&p| {
                let h = s.phases.get(p);
                PhaseStat {
                    name: p.name().to_string(),
                    count: h.count,
                    sum_ns: h.sum,
                    p50_ns: h.p50(),
                    p95_ns: h.p95(),
                    p99_ns: h.p99(),
                    max_ns: h.max,
                }
            })
            .collect();
        StatsSnapshot {
            uptime_us: s.uptime_us,
            inflight: s.inflight,
            auditor_nodes: s.auditor_nodes,
            auditor_arcs: s.auditor_arcs,
            wal_bytes: s.wal_bytes,
            trace_captured: s.trace_captured,
            trace_dropped: s.trace_dropped,
            group_flushes: s.group_size.count,
            group_commits: s.group_size.sum,
            chain_versions: s.chain_versions,
            chain_max_len: s.chain_max_len,
            chain_watermark: s.chain_watermark,
            phases,
            templates: s
                .templates
                .iter()
                .map(|t| TemplateStat {
                    name: t.name.clone(),
                    committed: t.committed,
                    aborted: t.aborted,
                    wounds: t.wounds,
                    dies: t.dies,
                })
                .collect(),
        }
    }

    /// Total committed instances across all templates.
    pub fn committed(&self) -> u64 {
        self.templates.iter().map(|t| t.committed).sum()
    }

    fn encode_into(&self, b: &mut BytesMut) {
        b.put_u64_le(self.uptime_us);
        b.put_u64_le(self.inflight as u64);
        for v in [
            self.auditor_nodes,
            self.auditor_arcs,
            self.wal_bytes,
            self.trace_captured,
            self.trace_dropped,
            self.group_flushes,
            self.group_commits,
            self.chain_versions,
            self.chain_max_len,
            self.chain_watermark,
        ] {
            b.put_u64_le(v);
        }
        b.put_u32_le(u32::try_from(self.phases.len()).expect("phase list fits a frame"));
        for p in &self.phases {
            p.encode_into(b);
        }
        b.put_u32_le(u32::try_from(self.templates.len()).expect("template list fits a frame"));
        for t in &self.templates {
            t.encode_into(b);
        }
    }

    fn decode_from(b: &mut Bytes) -> Option<Self> {
        let uptime_us = get_u64(b)?;
        let inflight = get_u64(b)? as i64;
        let auditor_nodes = get_u64(b)?;
        let auditor_arcs = get_u64(b)?;
        let wal_bytes = get_u64(b)?;
        let trace_captured = get_u64(b)?;
        let trace_dropped = get_u64(b)?;
        let group_flushes = get_u64(b)?;
        let group_commits = get_u64(b)?;
        let chain_versions = get_u64(b)?;
        let chain_max_len = get_u64(b)?;
        let chain_watermark = get_u64(b)?;
        let np = get_u32(b)? as usize;
        // A PhaseStat is ≥ 52 bytes (4-byte name length + six u64s);
        // bounding up front keeps a hostile count from pre-allocating
        // unboundedly. Same below for the ≥ 36-byte TemplateStat.
        if b.remaining() < np.checked_mul(52)? {
            return None;
        }
        let mut phases = Vec::with_capacity(np);
        for _ in 0..np {
            phases.push(PhaseStat::decode_from(b)?);
        }
        let nt = get_u32(b)? as usize;
        if b.remaining() < nt.checked_mul(36)? {
            return None;
        }
        let mut templates = Vec::with_capacity(nt);
        for _ in 0..nt {
            templates.push(TemplateStat::decode_from(b)?);
        }
        Some(StatsSnapshot {
            uptime_us,
            inflight,
            auditor_nodes,
            auditor_arcs,
            wal_bytes,
            trace_captured,
            trace_dropped,
            group_flushes,
            group_commits,
            chain_versions,
            chain_max_len,
            chain_watermark,
            phases,
            templates,
        })
    }
}

/// One entity in a [`SnapshotReply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapEntry {
    /// Entity name (spec order when the request read the whole
    /// database, request order otherwise).
    pub name: String,
    /// Commit timestamp of the version observed (0 = the initial
    /// seeded value).
    pub commit_ts: u64,
    /// Version counter of the observed value.
    pub version: u64,
    /// Integer payload; `None` when the committed payload is a byte
    /// string (the lock-free read path reports identity, not bytes).
    pub value: Option<u64>,
}

/// The reply to [`Request::ReadOnly`]: one committed multiversion cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotReply {
    /// The snapshot timestamp — every commit `≤ ts` is reflected, none
    /// after.
    pub ts: u64,
    /// One entry per entity read.
    pub entries: Vec<SnapEntry>,
}

impl SnapshotReply {
    /// Sum of the integer payloads observed (conservation checks).
    pub fn sum_int(&self) -> u128 {
        self.entries
            .iter()
            .filter_map(|e| e.value)
            .map(u128::from)
            .sum()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "snapshot at ts {} | {} entities | Σint = {}",
            self.ts,
            self.entries.len(),
            self.sum_int()
        )
    }

    fn encode_into(&self, b: &mut BytesMut) {
        b.put_u64_le(self.ts);
        b.put_u32_le(u32::try_from(self.entries.len()).expect("entry list fits a frame"));
        for e in &self.entries {
            put_str(b, &e.name);
            b.put_u64_le(e.commit_ts);
            b.put_u64_le(e.version);
            match e.value {
                None => b.put_u8(0),
                Some(v) => {
                    b.put_u8(1);
                    b.put_u64_le(v);
                }
            }
        }
    }

    fn decode_from(b: &mut Bytes) -> Option<Self> {
        let ts = get_u64(b)?;
        let n = get_u32(b)? as usize;
        // Each entry is ≥ 21 bytes (4-byte name length, two u64s, one
        // value tag); bounding up front keeps a hostile count from
        // pre-allocating unboundedly.
        if b.remaining() < n.checked_mul(21)? {
            return None;
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let name = get_str(b)?;
            let commit_ts = get_u64(b)?;
            let version = get_u64(b)?;
            let value = match get_u8(b)? {
                0 => None,
                1 => Some(get_u64(b)?),
                _ => return None,
            };
            entries.push(SnapEntry {
                name,
                commit_ts,
                version,
                value,
            });
        }
        Some(SnapshotReply { ts, entries })
    }
}

/// Why the server rejected a request (typed, so clients can branch
/// without string matching).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The frame did not decode to a request.
    BadRequest,
    /// Submit/Report before any `RegisterSystem`.
    NoSystem,
    /// Submit named a template the registered system does not have.
    UnknownTemplate,
    /// The spec JSON failed to parse or build.
    BadSpec,
}

const ERR_BAD_REQUEST: u8 = 1;
const ERR_NO_SYSTEM: u8 = 2;
const ERR_UNKNOWN_TEMPLATE: u8 = 3;
const ERR_BAD_SPEC: u8 = 4;

impl ErrorKind {
    fn to_tag(self) -> u8 {
        match self {
            ErrorKind::BadRequest => ERR_BAD_REQUEST,
            ErrorKind::NoSystem => ERR_NO_SYSTEM,
            ErrorKind::UnknownTemplate => ERR_UNKNOWN_TEMPLATE,
            ErrorKind::BadSpec => ERR_BAD_SPEC,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            ERR_BAD_REQUEST => ErrorKind::BadRequest,
            ERR_NO_SYSTEM => ErrorKind::NoSystem,
            ERR_UNKNOWN_TEMPLATE => ErrorKind::UnknownTemplate,
            ERR_BAD_SPEC => ErrorKind::BadSpec,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ErrorKind::BadRequest => "bad request",
            ErrorKind::NoSystem => "no system registered",
            ErrorKind::UnknownTemplate => "unknown template",
            ErrorKind::BadSpec => "bad spec",
        })
    }
}

/// A server reply. Every request frame gets exactly one.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `RegisterSystem` succeeded: the verdict and admission plan.
    Registered(Registered),
    /// `Submit` ran to completion: that run's counters.
    Submitted(RunStats),
    /// `Report`: cumulative counters over every submission so far.
    Report(RunStats),
    /// `Shutdown` acknowledged; the server exits its accept loop.
    ShuttingDown,
    /// `Stats`: the live telemetry digest.
    Stats(StatsSnapshot),
    /// `ReadOnly`: one committed multiversion snapshot.
    Snapshot(SnapshotReply),
    /// The request was rejected.
    Error {
        /// Typed rejection cause.
        kind: ErrorKind,
        /// Human detail (e.g. the spec parse error).
        message: String,
    },
}

const RESP_REGISTERED: u8 = 1;
const RESP_SUBMITTED: u8 = 2;
const RESP_REPORT: u8 = 3;
const RESP_SHUTTING_DOWN: u8 = 4;
const RESP_ERROR: u8 = 5;
const RESP_STATS: u8 = 6;
const RESP_SNAPSHOT: u8 = 7;

const SLOTS_UNBOUNDED: u8 = 0;
const SLOTS_BOUNDED: u8 = 1;

impl Response {
    /// Encodes to one protocol unit (to be carried in one frame).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(32);
        match self {
            Response::Registered(r) => {
                b.put_u8(RESP_REGISTERED);
                b.put_u8(u8::from(r.certified));
                b.put_u8(u8::from(r.guarantees_safety));
                b.put_u8(u8::from(r.floored));
                put_str(&mut b, &r.verdict);
                put_str(&mut b, &r.rationale);
                b.put_u32_le(u32::try_from(r.plan.len()).expect("plan fits a frame"));
                for entry in &r.plan {
                    put_str(&mut b, &entry.template);
                    match entry.slots {
                        None => b.put_u8(SLOTS_UNBOUNDED),
                        Some(k) => {
                            b.put_u8(SLOTS_BOUNDED);
                            b.put_u64_le(k);
                        }
                    }
                }
            }
            Response::Submitted(stats) => {
                b.put_u8(RESP_SUBMITTED);
                stats.encode_into(&mut b);
            }
            Response::Report(stats) => {
                b.put_u8(RESP_REPORT);
                stats.encode_into(&mut b);
            }
            Response::ShuttingDown => b.put_u8(RESP_SHUTTING_DOWN),
            Response::Stats(stats) => {
                b.put_u8(RESP_STATS);
                stats.encode_into(&mut b);
            }
            Response::Snapshot(snap) => {
                b.put_u8(RESP_SNAPSHOT);
                snap.encode_into(&mut b);
            }
            Response::Error { kind, message } => {
                b.put_u8(RESP_ERROR);
                b.put_u8(kind.to_tag());
                put_str(&mut b, message);
            }
        }
        b.freeze()
    }

    /// Decodes one protocol unit; `None` on any malformation (including
    /// trailing bytes).
    pub fn decode(mut buf: Bytes) -> Option<Response> {
        let tag = get_u8(&mut buf)?;
        let resp = match tag {
            RESP_REGISTERED => {
                let certified = get_bool(&mut buf)?;
                let guarantees_safety = get_bool(&mut buf)?;
                let floored = get_bool(&mut buf)?;
                let verdict = get_str(&mut buf)?;
                let rationale = get_str(&mut buf)?;
                let n = get_u32(&mut buf)? as usize;
                // Each entry is ≥ 5 bytes; bounding up front keeps a
                // hostile count from pre-allocating unboundedly.
                if buf.remaining() < n.checked_mul(5)? {
                    return None;
                }
                let mut plan = Vec::with_capacity(n);
                for _ in 0..n {
                    let template = get_str(&mut buf)?;
                    let slots = match get_u8(&mut buf)? {
                        SLOTS_UNBOUNDED => None,
                        SLOTS_BOUNDED => Some(get_u64(&mut buf)?),
                        _ => return None,
                    };
                    plan.push(PlanEntry { template, slots });
                }
                Response::Registered(Registered {
                    certified,
                    guarantees_safety,
                    floored,
                    verdict,
                    rationale,
                    plan,
                })
            }
            RESP_SUBMITTED => Response::Submitted(RunStats::decode_from(&mut buf)?),
            RESP_REPORT => Response::Report(RunStats::decode_from(&mut buf)?),
            RESP_SHUTTING_DOWN => Response::ShuttingDown,
            RESP_STATS => Response::Stats(StatsSnapshot::decode_from(&mut buf)?),
            RESP_SNAPSHOT => Response::Snapshot(SnapshotReply::decode_from(&mut buf)?),
            RESP_ERROR => Response::Error {
                kind: ErrorKind::from_tag(get_u8(&mut buf)?)?,
                message: get_str(&mut buf)?,
            },
            _ => return None,
        };
        finished(&buf, resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_requests_roundtrip() {
        for req in [Request::Report, Request::Shutdown, Request::Stats] {
            assert_eq!(Request::decode(req.encode()), Some(req));
        }
    }

    #[test]
    fn stats_roundtrip() {
        let stats = StatsSnapshot {
            uptime_us: 1_234_567,
            inflight: -1, // torn gauge read: decrement raced the snapshot
            auditor_nodes: 42,
            auditor_arcs: 99,
            wal_bytes: 1 << 30,
            trace_captured: 512,
            trace_dropped: 7,
            group_flushes: 125,
            group_commits: 4_000,
            chain_versions: 6_400,
            chain_max_len: 64,
            chain_watermark: 3_999,
            phases: vec![
                PhaseStat {
                    name: "lock_wait".into(),
                    count: 1000,
                    sum_ns: 5_000_000,
                    p50_ns: 4_000,
                    p95_ns: 20_000,
                    p99_ns: 80_000,
                    max_ns: 1_000_000,
                },
                PhaseStat::default(),
            ],
            templates: vec![TemplateStat {
                name: "transfer".into(),
                committed: 20_000,
                aborted: 3,
                wounds: 0,
                dies: 3,
            }],
        };
        let resp = Response::Stats(stats);
        assert_eq!(Response::decode(resp.encode()), Some(resp));
    }

    #[test]
    fn empty_stats_roundtrip() {
        // The telemetry-disabled / pre-register shape.
        let resp = Response::Stats(StatsSnapshot::default());
        assert_eq!(Response::decode(resp.encode()), Some(resp));
    }

    #[test]
    fn stats_from_disabled_telemetry_is_default() {
        let got = StatsSnapshot::from_telemetry(&Telemetry::disabled());
        assert_eq!(got, StatsSnapshot::default());
    }

    #[test]
    fn stats_from_enabled_telemetry_names_all_phases() {
        let tel = Telemetry::new(ddlf_engine::TelemetryConfig::default());
        tel.record(Phase::Commit, std::time::Duration::from_micros(5));
        let got = StatsSnapshot::from_telemetry(&tel);
        assert_eq!(got.phases.len(), Phase::ALL.len());
        let commit = got.phases.iter().find(|p| p.name == "commit").unwrap();
        assert_eq!(commit.count, 1);
        assert!(commit.p99_ns >= 5_000);
        assert_eq!(commit.max_ns, 5_000);
    }

    #[test]
    fn hostile_stats_counts_rejected() {
        // A Stats reply claiming 4 billion phases on a short buffer.
        let mut b = BytesMut::new();
        b.put_u8(RESP_STATS);
        for _ in 0..12 {
            b.put_u64_le(0);
        }
        b.put_u32_le(u32::MAX);
        assert_eq!(Response::decode(b.freeze()), None);

        // Zero phases but a hostile template count.
        let mut b = BytesMut::new();
        b.put_u8(RESP_STATS);
        for _ in 0..12 {
            b.put_u64_le(0);
        }
        b.put_u32_le(0);
        b.put_u32_le(u32::MAX);
        assert_eq!(Response::decode(b.freeze()), None);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut enc: Vec<u8> = Request::Report.encode().as_ref().to_vec();
        enc.push(0);
        assert_eq!(Request::decode(Bytes::from(enc)), None);
    }

    #[test]
    fn unknown_tags_rejected() {
        assert_eq!(Request::decode(Bytes::from_static(&[0])), None);
        assert_eq!(Request::decode(Bytes::from_static(&[99])), None);
        assert_eq!(Response::decode(Bytes::from_static(&[0])), None);
        assert_eq!(Response::decode(Bytes::new()), None);
    }

    #[test]
    fn invalid_bool_byte_rejected() {
        // A Registered reply whose `certified` byte is 2.
        let mut b = BytesMut::new();
        b.put_u8(RESP_REGISTERED);
        b.put_u8(2);
        assert_eq!(Response::decode(b.freeze()), None);
    }

    #[test]
    fn hostile_plan_count_rejected() {
        let mut b = BytesMut::new();
        b.put_u8(RESP_REGISTERED);
        b.put_u8(1);
        b.put_u8(1);
        b.put_u8(0);
        put_str(&mut b, "verdict");
        put_str(&mut b, "rationale");
        b.put_u32_le(u32::MAX); // claims 4 billion plan entries
        assert_eq!(Response::decode(b.freeze()), None);
    }

    #[test]
    fn read_only_roundtrips() {
        for req in [
            Request::ReadOnly { entities: vec![] }, // empty = whole database
            Request::ReadOnly {
                entities: vec!["acct_b0_0".into(), "ledger_b1".into()],
            },
        ] {
            assert_eq!(Request::decode(req.encode()), Some(req));
        }
    }

    #[test]
    fn snapshot_roundtrips() {
        let resp = Response::Snapshot(SnapshotReply {
            ts: 42,
            entries: vec![
                SnapEntry {
                    name: "acct_b0_0".into(),
                    commit_ts: 42,
                    version: 7,
                    value: Some(295),
                },
                SnapEntry {
                    name: "blob".into(),
                    commit_ts: 3,
                    version: 1,
                    value: None, // bytes payload: opaque to the int view
                },
            ],
        });
        assert_eq!(Response::decode(resp.encode()), Some(resp));

        let empty = Response::Snapshot(SnapshotReply {
            ts: 0,
            entries: vec![],
        });
        assert_eq!(Response::decode(empty.encode()), Some(empty));
    }

    #[test]
    fn snapshot_sums_int_values() {
        let snap = SnapshotReply {
            ts: 9,
            entries: vec![
                SnapEntry {
                    name: "a".into(),
                    commit_ts: 9,
                    version: 2,
                    value: Some(u64::MAX),
                },
                SnapEntry {
                    name: "b".into(),
                    commit_ts: 1,
                    version: 1,
                    value: Some(1),
                },
                SnapEntry {
                    name: "c".into(),
                    commit_ts: 0,
                    version: 0,
                    value: None,
                },
            ],
        };
        // u128 accumulation: no wrap even at u64::MAX per entry.
        assert_eq!(snap.sum_int(), u128::from(u64::MAX) + 1);
    }

    #[test]
    fn hostile_read_only_count_rejected() {
        // A ReadOnly request claiming 4 billion entity names.
        let mut b = BytesMut::new();
        b.put_u8(REQ_READ_ONLY);
        b.put_u32_le(u32::MAX);
        assert_eq!(Request::decode(b.freeze()), None);
    }

    #[test]
    fn hostile_snapshot_rejected() {
        // A Snapshot reply claiming 4 billion entries on a short buffer.
        let mut b = BytesMut::new();
        b.put_u8(RESP_SNAPSHOT);
        b.put_u64_le(1);
        b.put_u32_le(u32::MAX);
        assert_eq!(Response::decode(b.freeze()), None);

        // A value tag outside {0, 1}.
        let mut b = BytesMut::new();
        b.put_u8(RESP_SNAPSHOT);
        b.put_u64_le(1);
        b.put_u32_le(1);
        put_str(&mut b, "acct");
        b.put_u64_le(1); // commit_ts
        b.put_u64_le(1); // version
        b.put_u8(2); // invalid value tag
        assert_eq!(Response::decode(b.freeze()), None);
    }
}
