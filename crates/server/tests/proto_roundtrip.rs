//! Property tests of the wire protocol: every request/response variant
//! round-trips (encode→decode identity), every proper prefix of a valid
//! encoding is rejected (truncated frames never misread), and garbage
//! headers/buffers are rejected without panicking.

use bytes::Bytes;
use ddlf_server::{
    ErrorKind, InflateSpec, PhaseStat, PlanEntry, Registered, Request, Response, RunStats,
    SnapEntry, SnapshotReply, StatsSnapshot, TemplateStat,
};
use proptest::prelude::*;

/// Draws a printable-ASCII string from raw bytes (the vendored proptest
/// has no String strategy).
fn ascii(bytes: Vec<u8>) -> String {
    bytes.into_iter().map(|b| (b % 94 + 32) as char).collect()
}

fn request_of(variant: usize, s: String, count: u32, inflate_kind: usize, k: u32) -> Request {
    let inflate = match inflate_kind {
        0 => InflateSpec::None,
        1 => InflateSpec::Uniform(k),
        _ => InflateSpec::Auto { cap: k },
    };
    match variant {
        0 => Request::RegisterSystem {
            spec_json: s,
            inflate,
        },
        1 => Request::Submit { template: s, count },
        2 => Request::Report,
        3 => Request::Shutdown,
        4 => Request::Stats,
        _ => Request::ReadOnly {
            // Empty draws exercise the whole-database request; non-empty
            // ones a comma-split name list (empty names are legal wire
            // strings and must round-trip too).
            entities: if s.is_empty() {
                vec![]
            } else {
                s.split(',').map(str::to_string).collect()
            },
        },
    }
}

fn stats_of(fields: Vec<u64>, serializable: usize) -> RunStats {
    RunStats {
        instances: fields[0],
        committed: fields[1],
        aborted_attempts: fields[2],
        dirty_aborts: fields[3],
        failed: fields[4],
        reads: fields[5],
        writes: fields[6],
        wall_us: fields[7],
        peak_inflight: fields[8],
        history_len: fields[9],
        serializable: [None, Some(false), Some(true)][serializable % 3],
    }
}

fn stats_snapshot_of(fields: &[u64], rows: &[(Vec<u8>, u64, bool)]) -> StatsSnapshot {
    StatsSnapshot {
        uptime_us: fields[0],
        inflight: fields[1] as i64,
        auditor_nodes: fields[2],
        auditor_arcs: fields[3],
        wal_bytes: fields[4],
        trace_captured: fields[5],
        trace_dropped: fields[6],
        group_flushes: fields[7],
        group_commits: fields[8],
        chain_versions: fields[9],
        chain_max_len: fields[10],
        chain_watermark: fields[11],
        phases: rows
            .iter()
            .map(|(name, v, _)| PhaseStat {
                name: ascii(name.clone()),
                count: *v,
                sum_ns: v.wrapping_mul(3),
                p50_ns: *v,
                p95_ns: *v,
                p99_ns: *v,
                max_ns: *v,
            })
            .collect(),
        templates: rows
            .iter()
            .map(|(name, v, committed)| TemplateStat {
                name: ascii(name.clone()),
                committed: u64::from(*committed),
                aborted: *v,
                wounds: 0,
                dies: *v,
            })
            .collect(),
    }
}

fn response_of(
    variant: usize,
    s: String,
    plan_raw: Vec<(Vec<u8>, u64, bool)>,
    stats_fields: Vec<u64>,
    serializable: usize,
    flags: (bool, bool, bool),
    err_kind: usize,
) -> Response {
    match variant {
        0 => Response::Registered(Registered {
            certified: flags.0,
            guarantees_safety: flags.1,
            floored: flags.2,
            verdict: s.clone(),
            rationale: s,
            plan: plan_raw
                .into_iter()
                .map(|(name, k, unbounded)| PlanEntry {
                    template: ascii(name),
                    slots: (!unbounded).then_some(k),
                })
                .collect(),
        }),
        1 => Response::Submitted(stats_of(stats_fields, serializable)),
        2 => Response::Report(stats_of(stats_fields, serializable)),
        3 => Response::ShuttingDown,
        4 => Response::Stats(stats_snapshot_of(&stats_fields, &plan_raw)),
        5 => Response::Snapshot(SnapshotReply {
            ts: stats_fields[0],
            entries: plan_raw
                .into_iter()
                .map(|(name, v, has_int)| SnapEntry {
                    name: ascii(name),
                    commit_ts: v,
                    version: v.wrapping_mul(7),
                    value: has_int.then_some(v),
                })
                .collect(),
        }),
        _ => Response::Error {
            kind: [
                ErrorKind::BadRequest,
                ErrorKind::NoSystem,
                ErrorKind::UnknownTemplate,
                ErrorKind::BadSpec,
            ][err_kind % 4],
            message: s,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode→decode identity for every request variant.
    #[test]
    fn request_roundtrip(
        variant in 0usize..6,
        raw in prop::collection::vec(any::<u8>(), 0..120),
        count in 0u32..=u32::MAX,
        inflate_kind in 0usize..3,
        k in 0u32..=u32::MAX,
    ) {
        let req = request_of(variant, ascii(raw), count, inflate_kind, k);
        prop_assert_eq!(Request::decode(req.encode()), Some(req));
    }

    /// encode→decode identity for every response variant.
    #[test]
    fn response_roundtrip(
        variant in 0usize..7,
        raw in prop::collection::vec(any::<u8>(), 0..120),
        plan_raw in prop::collection::vec(
            (prop::collection::vec(any::<u8>(), 0..24), any::<u64>(), any::<bool>()),
            0..6,
        ),
        stats_fields in prop::collection::vec(any::<u64>(), 12..13),
        serializable in 0usize..3,
        flags in (any::<bool>(), any::<bool>(), any::<bool>()),
        err_kind in 0usize..4,
    ) {
        let resp = response_of(variant, ascii(raw), plan_raw, stats_fields, serializable, flags, err_kind);
        prop_assert_eq!(Response::decode(resp.encode()), Some(resp));
    }

    /// A truncated frame never decodes — to the original *or* anything
    /// else. Every proper prefix of a valid encoding is rejected.
    #[test]
    fn truncated_frames_rejected(
        variant in 0usize..6,
        raw in prop::collection::vec(any::<u8>(), 0..60),
        count in 0u32..=u32::MAX,
        inflate_kind in 0usize..3,
        k in 0u32..=u32::MAX,
    ) {
        let req = request_of(variant, ascii(raw), count, inflate_kind, k);
        let enc: Vec<u8> = req.encode().as_ref().to_vec();
        for cut in 0..enc.len() {
            prop_assert_eq!(
                Request::decode(Bytes::from(enc[..cut].to_vec())),
                None,
                "prefix of {} bytes out of {} decoded",
                cut,
                enc.len()
            );
        }
    }

    /// Response encodings reject truncation the same way.
    #[test]
    fn truncated_responses_rejected(
        stats_fields in prop::collection::vec(any::<u64>(), 10..11),
        serializable in 0usize..3,
    ) {
        let resp = Response::Submitted(stats_of(stats_fields, serializable));
        let enc: Vec<u8> = resp.encode().as_ref().to_vec();
        for cut in 0..enc.len() {
            prop_assert_eq!(Response::decode(Bytes::from(enc[..cut].to_vec())), None);
        }
    }

    /// Garbage buffers neither panic nor decode when the header byte is
    /// not a valid opcode; with a valid first byte they may only decode
    /// to a value that re-encodes to the exact same bytes (canonicality).
    #[test]
    fn garbage_rejected_or_canonical(bytes in prop::collection::vec(any::<u8>(), 0..80)) {
        let buf = Bytes::from(bytes.clone());
        if let Some(req) = Request::decode(buf) {
            prop_assert_eq!(req.encode().as_ref(), &bytes[..]);
        }
        if let Some(resp) = Response::decode(Bytes::from(bytes.clone())) {
            prop_assert_eq!(resp.encode().as_ref(), &bytes[..]);
        }
        if !bytes.is_empty() && !(1..=6).contains(&bytes[0]) {
            prop_assert_eq!(Request::decode(Bytes::from(bytes.clone())), None);
        }
        if !bytes.is_empty() && !(1..=7).contains(&bytes[0]) {
            prop_assert_eq!(Response::decode(Bytes::from(bytes)), None);
        }
    }

    /// Appending any byte to a valid encoding is rejected (strict
    /// full-consumption decoding).
    #[test]
    fn trailing_bytes_rejected(
        variant in 0usize..6,
        raw in prop::collection::vec(any::<u8>(), 0..40),
        count in 0u32..=u32::MAX,
        extra in any::<u8>(),
    ) {
        let req = request_of(variant, ascii(raw), count, 0, 1);
        let mut enc: Vec<u8> = req.encode().as_ref().to_vec();
        enc.push(extra);
        prop_assert_eq!(Request::decode(Bytes::from(enc)), None);
    }
}
