//! End-to-end tests of the `Stats` RPC: the digest reflects a real run,
//! and — the property it exists for — it answers from a second
//! connection *while* another connection's `Submit` holds the engine
//! lock for a long run.

use ddlf_engine::{EngineConfig, Telemetry, TelemetryConfig};
use ddlf_server::{Client, InflateSpec, ServeConfig, Server};
use std::time::Duration;

const SPEC: &str = r#"{
  "entities": [ {"name": "x", "site": 0}, {"name": "y", "site": 1} ],
  "transactions": [
    { "name": "T1", "ops": ["L x", "L y", "U y", "U x"] },
    { "name": "T2", "ops": ["L x", "L y", "U y", "U x"] }
  ]
}"#;

fn telemetry_server() -> (Server, Telemetry) {
    let telemetry = Telemetry::new(TelemetryConfig::default());
    let cfg = ServeConfig {
        engine: EngineConfig {
            telemetry: telemetry.clone(),
            ..Default::default()
        },
        ..Default::default()
    };
    (Server::bind("127.0.0.1:0", cfg).unwrap(), telemetry)
}

#[test]
fn stats_digest_a_completed_run() {
    let (server, _tel) = telemetry_server();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().unwrap());

    let mut client = Client::connect(&addr).unwrap();

    // Before any registration: an enabled handle answers zeros, but
    // with the full phase list (telemetry on, nothing recorded yet).
    let empty = client.stats().unwrap();
    assert_eq!(empty.committed(), 0);
    assert!(empty.phases.iter().all(|p| p.count == 0));

    client.register(SPEC, InflateSpec::None).unwrap();
    let run = client.submit_all(64).unwrap();
    assert_eq!(run.committed, 64);

    let stats = client.stats().unwrap();
    assert_eq!(stats.committed(), 64);
    assert_eq!(stats.templates.len(), 2);
    assert!(stats.templates.iter().all(|t| t.committed == 32));
    let phase = |name: &str| stats.phases.iter().find(|p| p.name == name).unwrap();
    // One commit and one execute sample per committed instance; at
    // least one lock-wait sample per lock acquisition.
    assert_eq!(phase("commit").count, 64);
    assert_eq!(phase("execute").count, 64);
    assert!(phase("lock_wait").count >= 64);
    assert!(phase("commit").sum_ns > 0);
    assert!(phase("commit").max_ns >= phase("commit").p50_ns);
    // Certified path: zero deaths, zero aborted attempts.
    assert!(stats
        .templates
        .iter()
        .all(|t| t.dies == 0 && t.aborted == 0));
    assert_eq!(stats.auditor_nodes, 64);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn stats_answer_mid_submit() {
    let (server, _tel) = telemetry_server();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().unwrap());

    let mut client = Client::connect(&addr).unwrap();
    client.register(SPEC, InflateSpec::None).unwrap();

    // A run long enough that stats polls land mid-run (in a debug
    // build a few hundred fully-conflicting instances take well over
    // the poll interval — the debug-only batch-audit cross-check is
    // quadratic, so keep N modest). `submit` holds the engine mutex
    // for the whole run, so these polls only succeed promptly because
    // the Stats path never touches that mutex.
    const N: u32 = 800;
    let submit_addr = addr.clone();
    let submitter = std::thread::spawn(move || {
        let mut c = Client::connect(&submit_addr).unwrap();
        c.submit_all(N).unwrap()
    });

    let mut saw_mid_run = false;
    while !submitter.is_finished() {
        let stats = client.stats().unwrap();
        if !submitter.is_finished() && stats.phases.iter().any(|p| p.count > 0) {
            saw_mid_run = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let run = submitter.join().unwrap();
    assert_eq!(run.committed, u64::from(N));
    assert!(
        saw_mid_run,
        "no stats poll observed the run in progress — either the run \
         finished implausibly fast or Stats blocked on the engine lock"
    );

    client.shutdown().unwrap();
    handle.join().unwrap();
}
