//! Lockdep regression tests for the server's shutdown path. The two
//! hazards audited here: the accept loop must park in `accept(2)`
//! holding no lock (a stalled listener would otherwise wedge every
//! worker behind it), and the shutdown drain must not hold
//! `server.conns` across socket syscalls — worker teardown's
//! `Deregister` takes the same lock. `server.conns` must stay a leaf
//! class, unordered against `server.engine`. Only meaningful with
//! `--features lockdep`.
#![cfg(feature = "lockdep")]

use ddlf_server::{Client, InflateSpec, ServeConfig, Server};

const SPEC: &str = r#"{
  "entities": [ {"name": "x", "site": 0}, {"name": "y", "site": 1} ],
  "transactions": [
    { "name": "T1", "ops": ["L x", "L y", "U y", "U x"] },
    { "name": "T2", "ops": ["L x", "L y", "U y", "U x"] }
  ]
}"#;

/// Shut down a server that still has *idle* parked connections — the
/// exact shape that used to hold `server.conns` across `shutdown(2)`
/// on every idle socket. After the run: zero server-class violations,
/// `server.conns` a leaf, and no ordering in either direction between
/// the engine lock and the connection table.
#[test]
fn shutdown_with_idle_connections_keeps_conns_a_leaf() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().unwrap());

    // Two idle workers parked in read_frame: they sit in `conns` and
    // are unblocked only by the shutdown drain.
    let _idle_a = Client::connect(&addr).unwrap();
    let _idle_b = Client::connect(&addr).unwrap();

    let mut active = Client::connect(&addr).unwrap();
    active.register(SPEC, InflateSpec::None).unwrap();
    let run = active.submit_all(32).unwrap();
    assert_eq!(run.committed, 32);
    active.shutdown().unwrap();
    handle.join().unwrap();

    let classes = ddlf_lockdep::classes();
    assert!(
        classes.iter().any(|c| c == "server.conns"),
        "connection table must have been exercised; saw {classes:?}"
    );
    let edges = ddlf_lockdep::edges();
    let conn_edges: Vec<_> = edges
        .iter()
        .filter(|(from, to)| from == "server.conns" || to == "server.conns")
        .collect();
    assert!(
        conn_edges.is_empty(),
        "server.conns must stay unordered (leaf, never nested with \
         server.engine or anything else): {conn_edges:?}"
    );
    let bad: Vec<_> = ddlf_lockdep::violations()
        .into_iter()
        .filter(|v| v.classes.iter().any(|c| c.starts_with("server.")))
        .collect();
    assert!(bad.is_empty(), "server discipline violations: {bad:#?}");
}
