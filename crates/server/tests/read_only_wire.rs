//! End-to-end tests of the `ReadOnly` RPC: a wire client observes a
//! committed multiversion cut — whole database or a named subset — and,
//! the property the path exists for, the read answers from a second
//! connection *while* another connection's `Submit` holds the engine
//! lock for a long run.

use ddlf_server::{Client, ClientError, ErrorKind, InflateSpec, ServeConfig, Server};
use std::time::Duration;

const SPEC: &str = r#"{
  "entities": [ {"name": "x", "site": 0}, {"name": "y", "site": 1} ],
  "transactions": [
    { "name": "T1", "ops": ["L x", "L y", "U y", "U x"] },
    { "name": "T2", "ops": ["L x", "L y", "U y", "U x"] }
  ]
}"#;

fn serve() -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().unwrap());
    (addr, handle)
}

#[test]
fn read_only_observes_the_committed_state() {
    let (addr, handle) = serve();
    let mut client = Client::connect(&addr).unwrap();

    // Before any registration: typed NoSystem, not a hang or a panic.
    match client.read(&[]) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::NoSystem),
        other => panic!("expected NoSystem, got {other:?}"),
    }

    client.register(SPEC, InflateSpec::None).unwrap();

    // Registration seeds every entity at the initial value, version 0,
    // commit ts 0 — and the cut itself is ts 0.
    let seed = client.read(&[]).unwrap();
    assert_eq!(seed.ts, 0);
    let names: Vec<_> = seed.entries.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, ["x", "y"], "empty request = schema order");
    assert!(seed
        .entries
        .iter()
        .all(|e| e.commit_ts == 0 && e.version == 0 && e.value == Some(1_000)));

    // 64 default counter instances: each commit adds 1 to both
    // entities, so the final cut is exact, not merely conserved.
    let run = client.submit_all(64).unwrap();
    assert_eq!(run.committed, 64);
    let snap = client.read(&[]).unwrap();
    assert_eq!(snap.ts, 64, "every commit claimed one timestamp");
    assert!(snap.entries.iter().all(|e| e.value == Some(1_000 + 64)));
    assert_eq!(snap.sum_int(), 2 * (1_000 + 64));

    // A named subset comes back in request order, not schema order.
    let subset = client.read(&["y".to_string()]).unwrap();
    assert_eq!(subset.entries.len(), 1);
    assert_eq!(subset.entries[0].name, "y");
    assert_eq!(subset.entries[0].value, Some(1_000 + 64));

    // An unknown entity is a typed rejection.
    match client.read(&["nope".to_string()]) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    }

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn read_only_answers_mid_submit_and_conserves() {
    let (addr, handle) = serve();
    let mut client = Client::connect(&addr).unwrap();
    client.register(SPEC, InflateSpec::None).unwrap();

    // Long enough that reads land mid-run (the debug-only batch-audit
    // cross-check is quadratic, so keep N modest). `submit` holds the
    // engine mutex for the whole run; these reads only answer promptly
    // because the snapshot path never touches that mutex.
    const N: u32 = 800;
    let submit_addr = addr.clone();
    let submitter = std::thread::spawn(move || {
        let mut c = Client::connect(&submit_addr).unwrap();
        c.submit_all(N).unwrap()
    });

    // Every mid-run cut must be internally consistent: both entities
    // show the same commit count (each commit writes both), and the
    // observed timestamps never run backwards across polls.
    let mut saw_mid_run = false;
    let mut last_ts = 0;
    while !submitter.is_finished() {
        let snap = client.read(&[]).unwrap();
        assert!(snap.ts >= last_ts, "snapshot ts ran backwards");
        last_ts = snap.ts;
        let x = snap.entries[0].value.unwrap();
        let y = snap.entries[1].value.unwrap();
        assert_eq!(x, y, "cut split a commit at ts {}", snap.ts);
        assert_eq!(x, 1_000 + snap.ts, "cut is exactly the ts-th state");
        if !submitter.is_finished() && snap.ts > 0 && snap.ts < u64::from(N) {
            saw_mid_run = true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let run = submitter.join().unwrap();
    assert_eq!(run.committed, u64::from(N));
    assert!(
        saw_mid_run,
        "no read observed the run in progress — either the run finished \
         implausibly fast or ReadOnly blocked on the engine lock"
    );

    let final_snap = client.read(&[]).unwrap();
    assert_eq!(final_snap.ts, u64::from(N));
    assert_eq!(final_snap.sum_int(), 2 * (1_000 + u128::from(N)));

    client.shutdown().unwrap();
    handle.join().unwrap();
}
