//! Client reconnect policy: a dead connection under an idempotent
//! request is retried on a fresh connection; a dead connection under a
//! `Submit` surfaces as `ReplyLost` instead of silently re-running
//! transactions.

use ddlf_server::{Client, ClientError, Request, Response, RunStats};
use ddlf_sim::msg::frame;
use std::net::TcpListener;

/// A hand-rolled one-shot peer: drops its first connection immediately
/// (simulating a server restart / idle disconnect), then serves real
/// replies on subsequent connections.
fn flaky_peer(replies: usize) -> (String, std::thread::JoinHandle<usize>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || {
        // First connection: accepted and dropped without a byte.
        drop(listener.accept().unwrap());
        let mut served = 0;
        let (mut stream, _) = listener.accept().unwrap();
        while served < replies {
            let Ok(Some(payload)) = frame::read_frame(&mut stream) else {
                break;
            };
            let resp = match Request::decode(payload.into()).unwrap() {
                Request::Report => Response::Report(RunStats::default()),
                Request::Submit { .. } => Response::Submitted(RunStats::default()),
                other => panic!("unexpected request {other:?}"),
            };
            frame::write_frame(&mut stream, resp.encode().as_ref()).unwrap();
            served += 1;
        }
        served
    });
    (addr, handle)
}

#[test]
fn idempotent_request_survives_a_dropped_connection() {
    let (addr, peer) = flaky_peer(1);
    let mut client = Client::connect(addr).unwrap();
    // The first connection is already dead; the Report must transparently
    // reconnect and succeed.
    let stats = client.report().expect("reconnect-on-EOF");
    assert_eq!(stats.instances, 0);
    assert_eq!(peer.join().unwrap(), 1);
}

#[test]
fn submit_on_a_dropped_connection_reports_reply_lost_not_retry() {
    let (addr, peer) = flaky_peer(1);
    let mut client = Client::connect(addr.clone()).unwrap();
    match client.submit("T", 5) {
        Err(ClientError::ReplyLost) => {}
        other => panic!("expected ReplyLost, got {other:?}"),
    }
    // The client is still usable: an explicit follow-up goes through on
    // a fresh connection.
    let stats = client.report().expect("explicit retry after ReplyLost");
    assert_eq!(stats.committed, 0);
    assert_eq!(peer.join().unwrap(), 1);
}
