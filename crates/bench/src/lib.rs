//! # ddlf-bench — experiment harness
//!
//! One module per experiment (E1–E11 in DESIGN.md / EXPERIMENTS.md). Each
//! returns a [`Table`] so the `paper-tables` binary, the integration
//! tests, and EXPERIMENTS.md all draw from the same code.

#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use experiments::*;
pub use table::Table;
