//! Regenerates every experiment table (E1–E11) as markdown.
//!
//! Usage:
//!   paper-tables [--quick] [--exp e4] [--json]
//!
//! With no arguments, runs all experiments at full size and prints
//! markdown (the content embedded in EXPERIMENTS.md). `--quick` uses
//! smaller sample sizes; `--exp eN` runs one experiment; `--json` emits
//! machine-readable output.

use ddlf_bench::experiments as exp;
use ddlf_bench::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let which: Option<String> = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_lowercase());

    let tables: Vec<Table> = match which.as_deref() {
        None => exp::all_experiments(quick),
        Some("e1") => vec![exp::e1_fig1()],
        Some("e2") => vec![exp::e2_fig2()],
        Some("e3") => vec![exp::e3_fig3()],
        Some("e4") => vec![exp::e4_theorem2(if quick { 4 } else { 12 })],
        Some("e5") => vec![exp::e5_theorem3(if quick { 10 } else { 40 })],
        Some("e6") => vec![exp::e6_theorem4()],
        Some("e7") => vec![exp::e7_copies()],
        Some("e8") => vec![exp::e8_theorem1(if quick { 10 } else { 40 })],
        Some("e9") => vec![exp::e9_runtime(if quick { 3 } else { 20 })],
        Some("e10") => vec![exp::e10_scaling()],
        Some("e11") => vec![exp::e11_local_detection(if quick { 5 } else { 20 })],
        Some(other) => {
            eprintln!("unknown experiment {other:?}; use e1..e11");
            std::process::exit(2);
        }
    };

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&tables).expect("serializable")
        );
    } else {
        for t in &tables {
            println!("{}", t.to_markdown());
        }
    }
}
