//! One-shot audit timing at a given instance count — the companion to
//! the `audit_scale` criterion group for sizes where the **batch** audit
//! is too slow to repeat (at 20k instances it runs for minutes; the
//! criterion harness would multiply that by its sample count).
//!
//! ```text
//! cargo run --release -p ddlf-bench --bin audit-oneshot -- 20480 [--skip-batch]
//! ```
//!
//! Prints one line per path with wall-clock seconds; the numbers behind
//! `BENCH_audit.json` come from here (batch) and from `cargo bench --
//! audit` (incremental + recovery medians).

use ddlf_model::incremental::StreamingAuditor;
use ddlf_model::{Database, EntityId, NodeId, Op, Transaction, TransactionSystem, TxnId};
use ddlf_sim::{History, HistoryEvent, SimTime};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20_480);
    let skip_batch = args.any(|a| a == "--skip-batch");

    let db = Database::one_entity_per_site(2);
    let t = Transaction::from_total_order(
        "T",
        &[
            Op::lock(EntityId(0)),
            Op::lock(EntityId(1)),
            Op::unlock(EntityId(0)),
            Op::unlock(EntityId(1)),
        ],
        &db,
    )
    .unwrap();
    let sys = TransactionSystem::new(db, vec![t]).unwrap();
    let events: Vec<(u32, NodeId)> = (0..n)
        .flat_map(|i| (0..4).map(move |node| (i as u32, NodeId(node))))
        .collect();

    let started = Instant::now();
    let mut auditor = StreamingAuditor::new(&sys);
    for gid in 0..n as u32 {
        auditor.admit(gid, TxnId(0));
        auditor.commit(gid, 0);
    }
    for &(gid, node) in &events {
        auditor.event(gid, 0, node);
    }
    assert_eq!(auditor.seal(), Some(true));
    println!(
        "incremental n={n}: {:.3} s ({} arcs)",
        started.elapsed().as_secs_f64(),
        auditor.arc_count()
    );

    if skip_batch {
        return;
    }
    let started = Instant::now();
    let tmpl = sys.txn(TxnId(0));
    let txns: Vec<Transaction> = (0..n)
        .map(|i| tmpl.clone().with_name(format!("T#{i}")))
        .collect();
    let audit_sys = TransactionSystem::new(sys.db().clone(), txns).unwrap();
    let mut history = History::new();
    for (time, &(txn, node)) in events.iter().enumerate() {
        history.record(HistoryEvent {
            time: SimTime(time as u64),
            txn: TxnId(txn),
            attempt: 0,
            node,
        });
    }
    let committed: Vec<Option<u32>> = vec![Some(0); n];
    assert!(history.audit(&audit_sys, &committed).unwrap());
    println!(
        "batch       n={n}: {:.3} s",
        started.elapsed().as_secs_f64()
    );
}
