//! The E1–E11 experiments (see DESIGN.md §4). Each regenerates one of the
//! paper's figures/claims as a table, with timings measured on this
//! machine.

use crate::table::{dur_us, f2, Table};
use ddlf_core::{
    certify_safe_and_deadlock_free, check_deadlock_prefix, copies_safe_df, lu_pair_deadlock_prefix,
    many_safe_df, pairwise_safe_df, pairwise_safe_df_minimal_prefix, tirri_two_entity_pattern,
    CertifyOptions, Explorer, ManyOptions, SatReduction,
};
use ddlf_model::{linear_extensions, Schedule, TransactionSystem, TxnId};
use ddlf_sat::{generate_batch, solve, Cnf};
use ddlf_sim::{run as sim_run, DeadlockPolicy, SimConfig};
use ddlf_workloads as wl;
use std::time::Instant;

fn time_us<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed().as_secs_f64() * 1e6)
}

/// E1 — Figure 1: the worked deadlock-prefix example.
pub fn e1_fig1() -> Table {
    let mut t = Table::new(
        "E1 — Figure 1: deadlock prefix and its reduction-graph cycle",
        "The paper's §3 example: three transactions over two sites whose prefix \
         {L¹y, L²x, L³z} has a schedule and a cyclic reduction graph \
         (cycle L¹z → U¹y → L²y → U²x → L³x → U³z). We rebuild it and verify \
         both conditions of the deadlock-prefix definition.",
        &["check", "paper", "measured"],
    );
    let (sys, prefix, _) = wl::fig1();
    let dp = check_deadlock_prefix(&sys, &prefix, 1_000_000);
    t.row(&[
        "prefix has a schedule".into(),
        "yes".into(),
        if dp.is_some() {
            "yes".into()
        } else {
            "no".into()
        },
    ]);
    let cyclic = ddlf_core::ReductionGraph::build(&sys, &prefix).is_cyclic();
    t.row(&[
        "reduction graph cyclic".into(),
        "yes".into(),
        if cyclic { "yes".into() } else { "no".into() },
    ]);
    if let Some(dp) = &dp {
        let txns: std::collections::HashSet<_> = dp.cycle.iter().map(|g| g.txn).collect();
        t.row(&[
            "cycle spans transactions".into(),
            "3 (T1, T2, T3)".into(),
            format!("{}", txns.len()),
        ]);
        let ents: std::collections::HashSet<_> = dp
            .cycle
            .iter()
            .map(|g| sys.txn(g.txn).op(g.node).entity)
            .collect();
        t.row(&[
            "cycle spans entities".into(),
            "3 (x, y, z)".into(),
            format!("{}", ents.len()),
        ]);
    }
    let (v, us) = time_us(|| Explorer::new(&sys, 5_000_000).find_deadlock().0.violated());
    t.row(&[
        "operational deadlock reachable".into(),
        "yes".into(),
        format!("{} ({})", if v { "yes" } else { "no" }, dur_us(us)),
    ]);
    t
}

/// E2 — Figure 2: the Tirri counterexample.
pub fn e2_fig2() -> Table {
    let mut t = Table::new(
        "E2 — Figure 2: two-entity detectors are unsound (Tirri counterexample)",
        "Two copies of the Fig. 2 dag (entities v,t,z,w; arcs Lv→Ut, Lt→Uz, Lz→Uw, \
         Lw→Uv). The paper: no pair of entities shows the hold-and-wait pattern, \
         yet the prefix {L²v, L¹t, L²z, L¹w} is a deadlock prefix with a 9-node \
         reduction cycle through all four entities.",
        &["detector", "verdict", "time"],
    );
    let (sys, prefix) = wl::fig2();
    let (tirri, us) = time_us(|| tirri_two_entity_pattern(sys.txn(TxnId(0)), sys.txn(TxnId(1))));
    t.row(&[
        "Tirri two-entity pattern [T]".into(),
        format!(
            "{} (FALSE NEGATIVE)",
            if tirri.is_some() {
                "deadlock"
            } else {
                "deadlock-free"
            }
        ),
        dur_us(us),
    ]);
    let (lu, us) = time_us(|| lu_pair_deadlock_prefix(&sys, 10_000_000).unwrap());
    t.row(&[
        "reduction-graph cycle search (ours)".into(),
        format!(
            "deadlock prefix, cycle of {} nodes",
            lu.as_ref().map(|w| w.cycle.len()).unwrap_or(0)
        ),
        dur_us(us),
    ]);
    let (ex, us) = time_us(|| Explorer::new(&sys, 10_000_000).find_deadlock().0.violated());
    t.row(&[
        "exhaustive state search [SM]".into(),
        (if ex { "deadlock" } else { "deadlock-free" }).to_string(),
        dur_us(us),
    ]);
    let dp = check_deadlock_prefix(&sys, &prefix, 1_000_000).expect("paper prefix");
    t.row(&[
        "paper's stated prefix {L²v, L¹t, L²z, L¹w}".into(),
        format!("deadlock prefix, cycle of {} nodes", dp.cycle.len()),
        "—".into(),
    ]);
    t
}

/// E3 — Figure 3: partial orders vs their linear extensions.
pub fn e3_fig3() -> Table {
    let mut t = Table::new(
        "E3 — Figure 3: deadlock-freedom does not reduce to linear extensions",
        "The Fig. 3 dag (two parallel lock/unlock pairs). As partial orders the \
         two copies are deadlock-free; specific linear extensions (t₁ = Lx Ly Ux Uy, \
         t₂ = Ly Lx Ux Uy) deadlock. Safety reduces to extensions [KP2]; \
         deadlock-freedom does not.",
        &["system", "paper", "measured"],
    );
    let sys = wl::fig3();
    let ex = Explorer::new(&sys, 1_000_000);
    t.row(&[
        "{T1, T2} as partial orders".into(),
        "deadlock-free".into(),
        if ex.find_deadlock().0.holds() {
            "deadlock-free".into()
        } else {
            "deadlock!".into()
        },
    ]);
    let exts = wl::fig3_deadlocking_extensions();
    let ex2 = Explorer::new(&exts, 1_000_000);
    t.row(&[
        "{t1, t2} chosen extensions".into(),
        "deadlock".into(),
        if ex2.find_deadlock().0.violated() {
            "deadlock".into()
        } else {
            "deadlock-free".into()
        },
    ]);
    // Census over all extension pairs: how many deadlock?
    let t1 = sys.txn(TxnId(0));
    let all = linear_extensions(t1, 1000);
    let mut deadlocking = 0;
    let mut total = 0;
    for e1 in &all {
        for e2 in &all {
            // Build centralized total orders from the extensions.
            let db = ddlf_model::Database::one_entity_per_site(2);
            let mk = |name: &str, ext: &[ddlf_model::NodeId]| {
                let ops: Vec<ddlf_model::Op> = ext.iter().map(|&n| t1.op(n)).collect();
                ddlf_model::Transaction::from_total_order(name, &ops, &db).unwrap()
            };
            let pair = TransactionSystem::new(db.clone(), vec![mk("a", e1), mk("b", e2)]).unwrap();
            total += 1;
            if Explorer::new(&pair, 100_000).find_deadlock().0.violated() {
                deadlocking += 1;
            }
        }
    }
    t.row(&[
        "extension-pair census".into(),
        "some pairs deadlock".into(),
        format!("{deadlocking}/{total} pairs deadlock"),
    ]);
    t
}

/// E4 — Theorem 2: 3SAT′ ⟺ deadlock prefix, end to end.
pub fn e4_theorem2(instances_per_n: usize) -> Table {
    let mut t = Table::new(
        "E4 — Theorem 2: 3SAT′ satisfiability ⟺ gadget deadlock",
        "For each random 3SAT′ formula, satisfiability is decided by an \
         independent DPLL solver and deadlock-prefix existence by cycle search \
         on the two-transaction gadget. The theorem demands exact agreement \
         (satisfiable ⟺ not deadlock-free). Includes the paper's worked \
         example (x₁∨x₂)(x₁∨¬x₂)(¬x₁∨x₂).",
        &[
            "n vars",
            "instances",
            "SAT",
            "deadlock",
            "agreement",
            "gadget nodes/txn",
            "avg decide time",
        ],
    );

    // Paper's worked example first.
    {
        let f = Cnf::paper_example();
        let red = SatReduction::build(&f).unwrap();
        let sat = solve(&f).is_sat();
        let (dl, us) = time_us(|| red.has_deadlock_prefix(100_000_000).unwrap().is_some());
        t.row(&[
            "paper ex.".into(),
            "1".into(),
            format!("{}", sat as u8),
            format!("{}", dl as u8),
            if sat == dl {
                "1/1".into()
            } else {
                "MISMATCH".into()
            },
            format!("{}", red.sys.txn(TxnId(0)).node_count()),
            dur_us(us),
        ]);
    }

    for n in 1..=8u32 {
        let batch = generate_batch(n, 0xE4_000 + n as u64, instances_per_n);
        let mut sat_n = 0;
        let mut dl_n = 0;
        let mut agree = 0;
        let mut nodes = 0;
        let mut total_us = 0.0;
        for f in &batch {
            let red = SatReduction::build(f).unwrap();
            nodes = red.sys.txn(TxnId(0)).node_count();
            let sat = solve(f).is_sat();
            let (dl, us) = time_us(|| red.has_deadlock_prefix(2_000_000_000).unwrap().is_some());
            total_us += us;
            sat_n += sat as usize;
            dl_n += dl as usize;
            agree += (sat == dl) as usize;
        }
        t.row(&[
            format!("{n}"),
            format!("{}", batch.len()),
            format!("{sat_n}"),
            format!("{dl_n}"),
            format!("{agree}/{}", batch.len()),
            format!("{nodes}"),
            dur_us(total_us / batch.len() as f64),
        ]);
    }
    t
}

/// E5 — Theorem 3: the `O(n²)` pairwise test.
pub fn e5_theorem3(trials: usize) -> Table {
    let mut t = Table::new(
        "E5 — Theorem 3: pairwise safe+deadlock-free test",
        "Correctness: on random small pairs the O(n²) test, the O(n³) \
         minimal-prefix variant, and the exhaustive Lemma 1 ground truth must \
         agree. Scaling: time of both polynomial tests as transaction size n \
         grows (ordered-2PL pairs, which exercise the full coverage loop).",
        &[
            "n (ops/txn)",
            "certified",
            "violated",
            "agree(O(n²),O(n³))",
            "agree(ground)",
            "t O(n²)",
            "t O(n³)",
        ],
    );

    // Correctness on random small pairs, mixed disciplines.
    use wl::{LockDiscipline, SystemGen};
    for (label, disc, n_e) in [
        ("rand-legal 3e", LockDiscipline::RandomLegal, 3),
        ("rand-2PL 3e", LockDiscipline::RandomTwoPhase, 3),
        ("lu-shaped 3e", LockDiscipline::LockUnlockShaped, 3),
    ] {
        let mut cert = 0;
        let mut viol = 0;
        let mut agree23 = 0;
        let mut agree_g = 0;
        let mut t2_us = 0.0;
        let mut t3_us = 0.0;
        for seed in 0..trials as u64 {
            let sys = SystemGen {
                n_sites: n_e,
                entities_per_site: 1,
                n_txns: 2,
                entities_per_txn: n_e,
                discipline: disc,
                seed: 0xE5_000 + seed,
            }
            .generate();
            let (a, ua) =
                time_us(|| pairwise_safe_df(sys.txn(TxnId(0)), sys.txn(TxnId(1))).is_ok());
            let (b, ub) = time_us(|| {
                pairwise_safe_df_minimal_prefix(sys.txn(TxnId(0)), sys.txn(TxnId(1))).is_ok()
            });
            t2_us += ua;
            t3_us += ub;
            let g = Explorer::new(&sys, 3_000_000)
                .find_conflict_cycle()
                .0
                .holds();
            cert += a as usize;
            viol += !a as usize;
            agree23 += (a == b) as usize;
            agree_g += (a == g) as usize;
        }
        t.row(&[
            label.into(),
            format!("{cert}"),
            format!("{viol}"),
            format!("{agree23}/{trials}"),
            format!("{agree_g}/{trials}"),
            dur_us(t2_us / trials as f64),
            dur_us(t3_us / trials as f64),
        ]);
    }

    // Scaling sweep.
    for n in [16usize, 32, 64, 128, 256] {
        let sys = wl::scaling_pair(n, LockDiscipline::OrderedTwoPhase, 7);
        let reps = 5;
        let (_, u2) = time_us(|| {
            for _ in 0..reps {
                let _ = pairwise_safe_df(sys.txn(TxnId(0)), sys.txn(TxnId(1)));
            }
        });
        let (_, u3) = time_us(|| {
            for _ in 0..reps {
                let _ = pairwise_safe_df_minimal_prefix(sys.txn(TxnId(0)), sys.txn(TxnId(1)));
            }
        });
        t.row(&[
            format!("{n}"),
            "1".into(),
            "0".into(),
            "—".into(),
            "—".into(),
            dur_us(u2 / reps as f64),
            dur_us(u3 / reps as f64),
        ]);
    }
    t
}

/// E6 — Theorem 4: many transactions via interaction-graph cycles.
pub fn e6_theorem4() -> Table {
    let mut t = Table::new(
        "E6 — Theorem 4: fixed number of transactions",
        "Ring systems (interaction graph = d-cycle, the classic distributed \
         deadlock) must be rejected with a normal-form witness; star systems \
         (shared root lock) must certify. Time is polynomial in the number of \
         interaction-graph cycles.",
        &["system", "d", "cycles", "verdict", "paper", "time"],
    );
    for d in [3usize, 4, 5, 6, 8] {
        let sys = wl::ring_system(d);
        let (r, us) = time_us(|| many_safe_df(&sys, ManyOptions::default()));
        let cycles = match &r {
            Ok(c) => c.cycles_checked.to_string(),
            Err(_) => "≥1".into(),
        };
        t.row(&[
            "ring".into(),
            format!("{d}"),
            cycles,
            if r.is_ok() {
                "certified".into()
            } else {
                "violation (cycle witness)".into()
            },
            "violation".into(),
            dur_us(us),
        ]);
    }
    for d in [3usize, 4, 5, 6, 8] {
        let sys = wl::star_system(d);
        let (r, us) = time_us(|| many_safe_df(&sys, ManyOptions::default()));
        t.row(&[
            "star".into(),
            format!("{d}"),
            match &r {
                Ok(c) => c.cycles_checked.to_string(),
                Err(_) => "?".into(),
            },
            if r.is_ok() {
                "certified".into()
            } else {
                "violation".into()
            },
            "certified".into(),
            dur_us(us),
        ]);
    }
    t
}

/// E7 — Corollary 3 / Theorem 5 and Figure 6: systems of copies.
pub fn e7_copies() -> Table {
    let mut t = Table::new(
        "E7 — copies: Corollary 3 / Theorem 5 vs the Fig. 6 separation",
        "For safe+DF, d copies reduce to 2 copies (Theorem 5): the Corollary 3 \
         test must agree with Theorem 4 run on d copies. For deadlock-freedom \
         ALONE the reduction fails: Fig. 6's transaction deadlocks with 3 copies \
         but never with 2.",
        &[
            "transaction",
            "d",
            "safe+DF (Thm 4)",
            "Cor. 3 (2 copies)",
            "deadlock reachable",
            "paper",
        ],
    );
    // A certifiable 2PL transaction.
    let db = ddlf_model::Database::one_entity_per_site(3);
    let good = wl::two_phase_total_order(
        &db,
        "2PL",
        &[
            ddlf_model::EntityId(0),
            ddlf_model::EntityId(1),
            ddlf_model::EntityId(2),
        ],
    );
    let cor3_good = copies_safe_df(&good).is_ok();
    for d in [2usize, 3, 4] {
        let sys = TransactionSystem::copies(db.clone(), &good, d).unwrap();
        let many = many_safe_df(&sys, ManyOptions::default()).is_ok();
        let dl = Explorer::new(&sys, 3_000_000).find_deadlock().0.violated();
        t.row(&[
            "strict-2PL".into(),
            format!("{d}"),
            if many { "yes".into() } else { "no".into() },
            if cor3_good { "yes".into() } else { "no".into() },
            if dl { "yes".into() } else { "no".into() },
            "safe+DF for all d".into(),
        ]);
    }
    // Fig. 6.
    let db6 = ddlf_model::Database::one_entity_per_site(3);
    let fig6 = wl::fig6_transaction(&db6, "fig6");
    let cor3_f6 = copies_safe_df(&fig6).is_ok();
    for d in [2usize, 3] {
        let sys = wl::fig6(d);
        let many = many_safe_df(&sys, ManyOptions::default()).is_ok();
        let dl = Explorer::new(&sys, 10_000_000).find_deadlock().0.violated();
        t.row(&[
            "Fig. 6".into(),
            format!("{d}"),
            if many { "yes".into() } else { "no".into() },
            if cor3_f6 { "yes".into() } else { "no".into() },
            if dl { "yes".into() } else { "no".into() },
            if d == 2 {
                "no deadlock (but not safe+DF)".into()
            } else {
                "deadlock".into()
            },
        ]);
    }
    t
}

/// E8 — Theorem 1: stuck-state search ≡ deadlock-prefix search.
pub fn e8_theorem1(trials: usize) -> Table {
    let mut t = Table::new(
        "E8 — Theorem 1: deadlock ⟺ deadlock prefix",
        "On random systems, the operational checker (reachable stuck state) and \
         the structural checker (reachable prefix with cyclic reduction graph) \
         must return the same verdict — that equivalence is Theorem 1.",
        &[
            "workload",
            "trials",
            "deadlocking",
            "deadlock-free",
            "agreement",
        ],
    );
    use wl::{LockDiscipline, SystemGen};
    for (label, disc, d, n_e) in [
        (
            "2 txns, rand-legal",
            LockDiscipline::RandomLegal,
            2usize,
            3usize,
        ),
        ("3 txns, rand-2PL", LockDiscipline::RandomTwoPhase, 3, 3),
        ("2 txns, lu-shaped", LockDiscipline::LockUnlockShaped, 2, 4),
    ] {
        let mut dl = 0;
        let mut free = 0;
        let mut agree = 0;
        for seed in 0..trials as u64 {
            let sys = SystemGen {
                n_sites: n_e,
                entities_per_site: 1,
                n_txns: d,
                entities_per_txn: n_e,
                discipline: disc,
                seed: 0xE8_000 + seed,
            }
            .generate();
            let ex = Explorer::new(&sys, 5_000_000);
            let a = ex.find_deadlock().0.violated();
            let b = ex.find_deadlock_prefix().0.violated();
            agree += (a == b) as usize;
            dl += a as usize;
            free += !a as usize;
        }
        t.row(&[
            label.into(),
            format!("{trials}"),
            format!("{dl}"),
            format!("{free}"),
            format!("{agree}/{trials}"),
        ]);
    }
    t
}

/// E9 — runtime: certification vs dynamic policies.
pub fn e9_runtime(seeds: u64) -> Table {
    let mut t = Table::new(
        "E9 — runtime: certified workloads need no deadlock machinery",
        "The banking workload under the DES runtime. Certified (canonically \
         ordered) transfers run to commit with NO deadlock handling and zero \
         aborts; greedy (source-side-first) transfers deadlock without a \
         policy and pay aborts under every dynamic scheme. All committed \
         histories pass the D(S) serializability audit.",
        &[
            "workload",
            "policy",
            "committed",
            "deadlocked runs",
            "aborts",
            "avg msgs",
            "avg sim time",
            "serializable",
        ],
    );
    let bank = wl::Bank::new(4, 4);
    let routes = [
        ((0usize, 0usize), (1usize, 0usize)),
        ((1, 1), (2, 1)),
        ((2, 2), (3, 2)),
        ((3, 3), (0, 3)),
        ((1, 2), (0, 1)),
        ((3, 0), (2, 3)),
    ];
    let mk = |greedy: bool| -> TransactionSystem {
        let txns = routes
            .iter()
            .enumerate()
            .map(|(i, &(from, to))| {
                if greedy {
                    bank.transfer_greedy(&format!("t{i}"), from, to)
                } else {
                    bank.transfer_ordered(&format!("t{i}"), from, to)
                }
            })
            .collect();
        TransactionSystem::new(bank.db.clone(), txns).unwrap()
    };
    let ordered = mk(false);
    let greedy = mk(true);
    assert!(certify_safe_and_deadlock_free(&ordered, CertifyOptions::default()).is_ok());
    assert!(certify_safe_and_deadlock_free(&greedy, CertifyOptions::default()).is_err());

    let policies = [
        ("Nothing", DeadlockPolicy::Nothing),
        ("Detect 5ms", DeadlockPolicy::Detect { period_us: 5_000 }),
        ("WoundWait", DeadlockPolicy::WoundWait),
        ("WaitDie", DeadlockPolicy::WaitDie),
    ];
    for (wname, sys) in [("certified", &ordered), ("greedy", &greedy)] {
        for (pname, policy) in policies {
            let mut committed = 0usize;
            let mut stalls = 0usize;
            let mut aborts = 0usize;
            let mut msgs = 0u64;
            let mut end = 0u64;
            let mut all_serial = true;
            for seed in 0..seeds {
                let r = sim_run(
                    sys,
                    SimConfig {
                        policy,
                        seed,
                        ..Default::default()
                    },
                );
                committed += r.committed;
                stalls += usize::from(!r.stalled.is_empty());
                aborts += r.aborted_attempts;
                msgs += r.messages;
                end += r.end_time.micros();
                if r.serializable == Some(false) {
                    all_serial = false;
                }
            }
            t.row(&[
                wname.into(),
                pname.into(),
                format!("{committed}/{}", sys.len() * seeds as usize),
                format!("{stalls}/{seeds}"),
                format!("{aborts}"),
                format!("{}", msgs / seeds),
                dur_us(end as f64 / seeds as f64),
                if all_serial {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
    }
    t
}

/// A certified pair whose reachable state space is exponential in `k`:
/// two copies of "lock x first and hold it to the very end, then run `k`
/// parallel lock/unlock branches". Each branch contributes three states,
/// so the explorer visits Θ(3ᵏ) states while Theorem 3 answers in O(k²).
pub fn parallel_branch_copy_pair(k: usize) -> TransactionSystem {
    use ddlf_model::{Database, EntityId, Transaction};
    let db = Database::one_entity_per_site(k + 1);
    let mut b = Transaction::builder("T");
    let lx = b.lock(EntityId(0));
    let ux = b.unlock(EntityId(0));
    for i in 1..=k {
        let (ly, uy) = b.lock_unlock(EntityId(i as u32));
        b.arc(lx, ly);
        b.arc(uy, ux);
    }
    b.arc(lx, ux);
    let t = b.build(&db).unwrap();
    TransactionSystem::copies(db, &t, 2).unwrap()
}

/// E10 — the coNP wall: exhaustive vs polynomial scaling.
pub fn e10_scaling() -> Table {
    let mut t = Table::new(
        "E10 — exhaustive vs polynomial: where the coNP wall sits",
        "Deciding safe+DF by exhaustive state search ([SM]) explodes with the \
         width of the transactions' partial orders (Θ(3ᵏ) states for k parallel \
         branches), while the Theorem 3 test stays polynomial — the gap \
         Theorems 3–4 exist to close. Both pairs are certified (x locked first, \
         held across every branch).",
        &[
            "k (parallel branches)",
            "exhaustive states",
            "t exhaustive",
            "t Theorem 3",
            "speedup",
        ],
    );
    for k in [3usize, 5, 7, 9, 11] {
        let sys = parallel_branch_copy_pair(k);
        let ex = Explorer::new(&sys, 50_000_000);
        let (res, u_ex) = time_us(|| ex.find_conflict_cycle());
        let states = res.1.states;
        debug_assert!(res.0.holds());
        let (_, u_p) = time_us(|| {
            pairwise_safe_df(sys.txn(TxnId(0)), sys.txn(TxnId(1))).expect("certified");
        });
        t.row(&[
            format!("{k}"),
            format!("{states}"),
            dur_us(u_ex),
            dur_us(u_p),
            format!("{}×", f2(u_ex / u_p.max(0.01))),
        ]);
    }
    t
}

/// E11 — local vs global deadlock detection (why "distributed" matters).
pub fn e11_local_detection(seeds: u64) -> Table {
    use ddlf_model::{Database, EntityId, Op, Transaction};
    let mut t = Table::new(
        "E11 — per-site detectors miss cross-site deadlock cycles",
        "The same opposite-order transaction pair run twice: entities split \
         across two sites vs co-resident on one site. A detector that inspects \
         each site's wait-for graph in isolation resolves the centralized cycle \
         but is blind to the distributed one — the operational face of the \
         paper's \"in a distributed database the issues become more \
         complicated\" and the reason §5's *static* certification matters.",
        &[
            "database",
            "policy",
            "committed",
            "deadlocked runs",
            "cycles detected",
        ],
    );
    let mk = |db: Database| {
        let (x, y) = (EntityId(0), EntityId(1));
        let t1 = Transaction::from_total_order(
            "T1",
            &[Op::lock(x), Op::lock(y), Op::unlock(x), Op::unlock(y)],
            &db,
        )
        .unwrap();
        let t2 = Transaction::from_total_order(
            "T2",
            &[Op::lock(y), Op::lock(x), Op::unlock(y), Op::unlock(x)],
            &db,
        )
        .unwrap();
        TransactionSystem::new(db, vec![t1, t2]).unwrap()
    };
    let distributed = mk(ddlf_model::Database::one_entity_per_site(2));
    let centralized = mk(ddlf_model::Database::centralized(2));
    for (dbname, sys) in [("two sites", &distributed), ("one site", &centralized)] {
        for (pname, policy) in [
            (
                "DetectLocal 1ms",
                DeadlockPolicy::DetectLocal { period_us: 1_000 },
            ),
            (
                "Detect 1ms (global)",
                DeadlockPolicy::Detect { period_us: 1_000 },
            ),
        ] {
            let mut committed = 0;
            let mut stalls = 0;
            let mut cycles = 0;
            for seed in 0..seeds {
                let r = sim_run(
                    sys,
                    SimConfig {
                        policy,
                        seed,
                        ..Default::default()
                    },
                );
                committed += r.committed;
                stalls += usize::from(!r.stalled.is_empty());
                cycles += r.deadlocks_detected;
            }
            t.row(&[
                dbname.into(),
                pname.into(),
                format!("{committed}/{}", 2 * seeds),
                format!("{stalls}/{seeds}"),
                format!("{cycles}"),
            ]);
        }
    }
    t
}

/// Runs every experiment with default sizes (used by `paper-tables` and
/// smoke-tested in CI).
pub fn all_experiments(quick: bool) -> Vec<Table> {
    let (e4_n, e5_n, e8_n, e9_n) = if quick {
        (4, 10, 10, 3)
    } else {
        (12, 40, 40, 20)
    };
    vec![
        e1_fig1(),
        e2_fig2(),
        e3_fig3(),
        e4_theorem2(e4_n),
        e5_theorem3(e5_n),
        e6_theorem4(),
        e7_copies(),
        e8_theorem1(e8_n),
        e9_runtime(e9_n),
        e10_scaling(),
        e11_local_detection(if quick { 5 } else { 20 }),
    ]
}

/// Validates the witness structures of a Theorem 4 violation end to end
/// (helper shared by tests).
pub fn verify_cycle_witness(sys: &TransactionSystem, w: &ddlf_core::CycleWitness) -> bool {
    let Ok(v) = w.schedule.validate(sys) else {
        return false;
    };
    let cg: ddlf_model::ConflictGraph = w.schedule.conflict_digraph(sys, &v);
    !cg.is_acyclic()
}

/// Convenience used in docs/tests: the classic two-transaction deadlock.
pub fn classic_pair() -> TransactionSystem {
    let db = ddlf_model::Database::one_entity_per_site(2);
    let (x, y) = (ddlf_model::EntityId(0), ddlf_model::EntityId(1));
    let t1 = ddlf_model::Transaction::from_total_order(
        "T1",
        &[
            ddlf_model::Op::lock(x),
            ddlf_model::Op::lock(y),
            ddlf_model::Op::unlock(x),
            ddlf_model::Op::unlock(y),
        ],
        &db,
    )
    .unwrap();
    let t2 = ddlf_model::Transaction::from_total_order(
        "T2",
        &[
            ddlf_model::Op::lock(y),
            ddlf_model::Op::lock(x),
            ddlf_model::Op::unlock(y),
            ddlf_model::Op::unlock(x),
        ],
        &db,
    )
    .unwrap();
    TransactionSystem::new(db, vec![t1, t2]).unwrap()
}

/// A complete serial schedule of `sys` (helper for benches).
pub fn any_serial_schedule(sys: &TransactionSystem) -> Schedule {
    let order: Vec<TxnId> = (0..sys.len()).map(TxnId::from_index).collect();
    Schedule::serial(sys, &order)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiments_run_and_agree() {
        for table in all_experiments(true) {
            let md = table.to_markdown();
            assert!(!table.rows.is_empty(), "{} produced no rows", table.title);
            assert!(
                !md.contains("MISMATCH"),
                "{} reported a mismatch:\n{md}",
                table.title
            );
        }
    }

    #[test]
    fn e8_agreement_is_total() {
        let t = e8_theorem1(15);
        for row in &t.rows {
            let agreement = row.last().unwrap();
            let (a, b) = agreement.split_once('/').unwrap();
            assert_eq!(a, b, "Theorem 1 agreement broken: {row:?}");
        }
    }

    #[test]
    fn e4_agreement_is_total() {
        let t = e4_theorem2(6);
        for row in &t.rows {
            let agreement = &row[4];
            if let Some((a, b)) = agreement.split_once('/') {
                assert_eq!(a, b, "Theorem 2 agreement broken: {row:?}");
            }
        }
    }
}
