//! Minimal markdown table rendering for experiment reports.

use serde::Serialize;

/// A rendered experiment: a title, commentary, and a markdown table.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Experiment id ("E4") and title.
    pub title: String,
    /// One-paragraph explanation of what the table shows and what the
    /// paper claims.
    pub note: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, note: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            note: note.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n{}\n\n", self.title, self.note));
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        out
    }
}

/// Convenience macro-ish helper: formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a duration in microseconds adaptively.
pub fn dur_us(us: f64) -> String {
    if us >= 1_000_000.0 {
        format!("{:.2}s", us / 1_000_000.0)
    } else if us >= 1_000.0 {
        format!("{:.1}ms", us / 1_000.0)
    } else {
        format!("{us:.1}µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("E0 smoke", "demo", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### E0 smoke"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("x", "y", &["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(dur_us(1.5), "1.5µs");
        assert_eq!(dur_us(1500.0), "1.5ms");
        assert_eq!(dur_us(2_500_000.0), "2.50s");
        assert_eq!(f2(1.234), "1.23");
    }
}
