//! E12: engine throughput — certified no-detector execution vs the
//! wait-die fallback, on the banking and warehouse workloads.
//!
//! The interesting comparison is the same *certified* workload run (a)
//! trusting the certificate (no detector, no timeouts, no aborts) and
//! (b) distrusting it (wait-die anyway): the delta is the pure runtime
//! cost of not doing the paper's static analysis. The greedy variant
//! shows the additional price of a workload that *cannot* certify.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddlf_engine::{Engine, EngineConfig, TemplateRegistry};
use ddlf_model::TransactionSystem;
use ddlf_workloads::{bank_greedy_pair, bank_ordered_pair, Warehouse};

fn quick_cfg(instances: usize, force_fallback: bool) -> EngineConfig {
    EngineConfig {
        threads: 4,
        instances,
        force_fallback,
        ..Default::default()
    }
}

fn bench_banking(c: &mut Criterion) {
    let (_, ordered) = bank_ordered_pair();
    let (_, greedy) = bank_greedy_pair();
    let mut g = c.benchmark_group("engine_banking");
    g.sample_size(10);
    for &n in &[16usize, 64] {
        g.bench_with_input(
            BenchmarkId::new("certified_no_detector", n),
            &(&ordered, n),
            |b, (sys, n)| {
                b.iter(|| Engine::new((*sys).clone(), quick_cfg(*n, false)).run().committed)
            },
        );
        g.bench_with_input(
            BenchmarkId::new("certified_but_wait_die", n),
            &(&ordered, n),
            |b, (sys, n)| {
                b.iter(|| Engine::new((*sys).clone(), quick_cfg(*n, true)).run().committed)
            },
        );
        g.bench_with_input(
            BenchmarkId::new("uncertified_wait_die", n),
            &(&greedy, n),
            |b, (sys, n)| {
                b.iter(|| Engine::new((*sys).clone(), quick_cfg(*n, false)).run().committed)
            },
        );
    }
    g.finish();
}

fn warehouse_system() -> TransactionSystem {
    let wh = Warehouse::new(3, 2);
    let t1 = wh.order_with_ticket("order_a", &[(0, 0), (1, 1)]);
    let t2 = wh.order_with_ticket("order_b", &[(1, 0), (2, 1)]);
    let t3 = wh.order_with_ticket("order_c", &[(0, 1), (2, 0)]);
    TransactionSystem::new(wh.db.clone(), vec![t1, t2, t3]).unwrap()
}

fn bench_warehouse(c: &mut Criterion) {
    let sys = warehouse_system();
    let reg = TemplateRegistry::register(sys.clone());
    assert!(
        reg.verdict().is_certified(),
        "ticketed orders must certify: {}",
        reg.verdict()
    );
    let mut g = c.benchmark_group("engine_warehouse");
    g.sample_size(10);
    for &n in &[24usize, 96] {
        g.bench_with_input(
            BenchmarkId::new("certified_no_detector", n),
            &n,
            |b, &n| b.iter(|| Engine::new(sys.clone(), quick_cfg(n, false)).run().committed),
        );
        g.bench_with_input(
            BenchmarkId::new("certified_but_wait_die", n),
            &n,
            |b, &n| b.iter(|| Engine::new(sys.clone(), quick_cfg(n, true)).run().committed),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_banking, bench_warehouse);
criterion_main!(benches);
