//! E12: engine throughput — certified no-detector execution vs the
//! wait-die fallback, on the banking and warehouse workloads.
//!
//! The interesting comparison is the same *certified* workload run (a)
//! trusting the certificate (no detector, no timeouts, no aborts) and
//! (b) distrusting it (wait-die anyway): the delta is the pure runtime
//! cost of not doing the paper's static analysis. The greedy variant
//! shows the additional price of a workload that *cannot* certify.
//!
//! E13 (`engine_inflation`): the payoff of certified k-inflation — the
//! same Theorem 5-certifiable single-template workload behind a k = 1
//! gate, behind a certified k = 4 gate, and on wait-die at the same
//! multiprogramming level.
//!
//! E14 (`engine_wal`): the write-ahead-durability tax — the certified
//! banking workload with no WAL (the default hot path, which must not
//! regress) against the same run logging every write, commit decision,
//! and history event to per-shard log files (snapshot: BENCH_wal.json).
//!
//! E15 (`engine_group_commit`): the amortization matrix — the
//! WAL-logging pipelined banking run (Theorem 5 certifies unbounded
//! copies, so k = 32 gives the leader a real cohort) with per-commit
//! decisions vs leader-flushed group commit (batched admission riding
//! along), in buffered mode and in fsync-per-decision sync mode. The
//! sync column is the headline: one fsync per *group* instead of per
//! commit (snapshot: BENCH_group.json).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddlf_engine::{AdmissionOptions, Engine, EngineConfig, Inflation, TemplateRegistry};
use ddlf_model::{EntityId, TransactionSystem};
use ddlf_workloads::{bank_greedy_pair, bank_ordered_pair, bank_uniform_transfer, Warehouse};
use std::time::Duration;

fn quick_cfg(instances: usize, force_fallback: bool) -> EngineConfig {
    EngineConfig {
        threads: 4,
        instances,
        force_fallback,
        ..Default::default()
    }
}

fn bench_banking(c: &mut Criterion) {
    let (_, ordered) = bank_ordered_pair();
    let (_, greedy) = bank_greedy_pair();
    let mut g = c.benchmark_group("engine_banking");
    g.sample_size(10);
    for &n in &[16usize, 64] {
        g.bench_with_input(
            BenchmarkId::new("certified_no_detector", n),
            &(&ordered, n),
            |b, (sys, n)| {
                b.iter(|| {
                    Engine::new((*sys).clone(), quick_cfg(*n, false))
                        .run()
                        .committed
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("certified_but_wait_die", n),
            &(&ordered, n),
            |b, (sys, n)| {
                b.iter(|| {
                    Engine::new((*sys).clone(), quick_cfg(*n, true))
                        .run()
                        .committed
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("uncertified_wait_die", n),
            &(&greedy, n),
            |b, (sys, n)| {
                b.iter(|| {
                    Engine::new((*sys).clone(), quick_cfg(*n, false))
                        .run()
                        .committed
                })
            },
        );
    }
    g.finish();
}

fn warehouse_system() -> TransactionSystem {
    let wh = Warehouse::new(3, 2);
    let t1 = wh.order_with_ticket("order_a", &[(0, 0), (1, 1)]);
    let t2 = wh.order_with_ticket("order_b", &[(1, 0), (2, 1)]);
    let t3 = wh.order_with_ticket("order_c", &[(0, 1), (2, 0)]);
    TransactionSystem::new(wh.db.clone(), vec![t1, t2, t3]).unwrap()
}

fn bench_warehouse(c: &mut Criterion) {
    let sys = warehouse_system();
    let reg = TemplateRegistry::register(sys.clone());
    assert!(
        reg.verdict().is_certified(),
        "ticketed orders must certify: {}",
        reg.verdict()
    );
    let mut g = c.benchmark_group("engine_warehouse");
    g.sample_size(10);
    for &n in &[24usize, 96] {
        g.bench_with_input(BenchmarkId::new("certified_no_detector", n), &n, |b, &n| {
            b.iter(|| {
                Engine::new(sys.clone(), quick_cfg(n, false))
                    .run()
                    .committed
            })
        });
        g.bench_with_input(
            BenchmarkId::new("certified_but_wait_die", n),
            &n,
            |b, &n| b.iter(|| Engine::new(sys.clone(), quick_cfg(n, true)).run().committed),
        );
    }
    g.finish();
}

/// Runs the single-template pipelined-transfer workload once under the
/// given inflation request / fallback switch and returns commits.
fn run_inflated(sys: &TransactionSystem, inflate: Inflation, n: usize, fallback: bool) -> usize {
    let engine = Engine::with_admission(
        sys.clone(),
        AdmissionOptions {
            inflate,
            ..Default::default()
        },
        EngineConfig {
            threads: 4,
            instances: n,
            force_fallback: fallback,
            // Per-lock work makes the pipeline visible: with k = 1 the
            // chain is idle while one instance works, with k = 4 four
            // instances occupy four chain positions.
            work: Duration::from_micros(20),
            ..Default::default()
        },
    );
    engine.run().committed
}

fn bench_inflation(c: &mut Criterion) {
    let (_, sys) = bank_uniform_transfer();
    let mut g = c.benchmark_group("engine_inflation");
    g.sample_size(10);
    let n = 64usize;
    g.bench_with_input(BenchmarkId::new("certified_k1", n), &n, |b, &n| {
        b.iter(|| run_inflated(&sys, Inflation::None, n, false))
    });
    g.bench_with_input(BenchmarkId::new("certified_k4", n), &n, |b, &n| {
        b.iter(|| run_inflated(&sys, Inflation::Uniform(4), n, false))
    });
    g.bench_with_input(BenchmarkId::new("wait_die_k4", n), &n, |b, &n| {
        b.iter(|| run_inflated(&sys, Inflation::Uniform(4), n, true))
    });
    g.finish();
}

fn bench_wal(c: &mut Criterion) {
    let (_, ordered) = bank_ordered_pair();
    let mut g = c.benchmark_group("engine_wal");
    g.sample_size(10);
    let n = 64usize;
    g.bench_with_input(BenchmarkId::new("wal_off", n), &n, |b, &n| {
        b.iter(|| {
            Engine::new(ordered.clone(), quick_cfg(n, false))
                .run()
                .committed
        })
    });
    let dir = std::env::temp_dir().join("ddlf-bench-wal");
    g.bench_with_input(BenchmarkId::new("wal_on", n), &n, |b, &n| {
        b.iter(|| {
            // Engine construction rotates the directory, so every
            // iteration logs a fresh generation.
            Engine::new(
                ordered.clone(),
                EngineConfig {
                    wal_dir: Some(dir.clone()),
                    ..quick_cfg(n, false)
                },
            )
            .run()
            .committed
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(std::env::temp_dir().join("ddlf-bench-wal"));
}

fn bench_group_commit(c: &mut Criterion) {
    // The single-template pipelined transfer certifies unbounded copies
    // (Theorem 5), so a high certified k gives the group committer real
    // company: with per-commit fsync every committer serializes on the
    // shared history/decision files, while the leader amortizes one
    // data-sync + one decision fsync over the whole parked cohort. The
    // worker count deliberately exceeds the cores — commits here are
    // fsync-latency-bound, not CPU-bound.
    let (_, sys) = bank_uniform_transfer();
    let mut g = c.benchmark_group("engine_group_commit");
    g.sample_size(10);
    let n = 256usize;
    let dir = std::env::temp_dir().join("ddlf-bench-group");
    // (label, fsync every decision?, group commit + batched admission?)
    let variants = [
        ("nosync_per_commit", false, false),
        ("nosync_group", false, true),
        ("sync_per_commit", true, false),
        ("sync_group", true, true),
    ];
    for (label, sync, group) in variants {
        g.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
            b.iter(|| {
                Engine::with_admission(
                    sys.clone(),
                    AdmissionOptions {
                        inflate: Inflation::Uniform(32),
                        ..Default::default()
                    },
                    EngineConfig {
                        threads: 32,
                        instances: n,
                        wal_dir: Some(dir.clone()),
                        wal_sync: sync,
                        group_commit: group.then_some(64),
                        admission_batch: if group { 4 } else { 1 },
                        ..Default::default()
                    },
                )
                .run()
                .committed
            })
        });
    }
    g.finish();
    let _ = std::fs::remove_dir_all(dir);
}

fn bench_ro_snapshot(c: &mut Criterion) {
    // E16 (`ro_snapshot`): read scalability of the multiversion path —
    // a fixed budget of whole-database snapshot reads split across R
    // reader threads against a chain-populated store. The lock-free
    // rows should show wall time *dropping* as R grows (readers share
    // nothing but atomics); the locked-oracle rows read the same cut
    // through the `store.mvcc` mutex, so they serialize and cannot
    // scale. The database is deliberately wide (256 entities): the
    // scan itself must be the work, not reader-slot registration, and
    // the mutex hold time must be long enough that serializing on it
    // is visible. Snapshot: BENCH_snapshot.json.
    use ddlf_model::{Database, Op, Transaction};
    let db = Database::one_entity_per_site(256);
    let (x, y) = (EntityId(0), EntityId(1));
    let ops = [Op::lock(x), Op::lock(y), Op::unlock(y), Op::unlock(x)];
    let txns = vec![
        Transaction::from_total_order("T1", &ops, &db).unwrap(),
        Transaction::from_total_order("T2", &ops, &db).unwrap(),
    ];
    let sys = TransactionSystem::new(db, txns).unwrap();
    let engine = Engine::new(sys, quick_cfg(64, false));
    assert_eq!(engine.run().committed, 64, "populate the version chains");
    let entities: Vec<EntityId> = engine.store().db().entities().collect();

    const TOTAL_SCANS: usize = 2_048;
    let mut g = c.benchmark_group("ro_snapshot");
    g.sample_size(10);
    for &readers in &[1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("lock_free", readers),
            &readers,
            |b, &readers| {
                b.iter(|| {
                    std::thread::scope(|s| {
                        for _ in 0..readers {
                            s.spawn(|| {
                                let mut sum = 0u128;
                                for _ in 0..TOTAL_SCANS / readers {
                                    sum += engine.run_read_only(&entities).sum_int();
                                }
                                sum
                            });
                        }
                    })
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("locked_oracle", readers),
            &readers,
            |b, &readers| {
                b.iter(|| {
                    std::thread::scope(|s| {
                        for _ in 0..readers {
                            s.spawn(|| {
                                let mut sum = 0u128;
                                for _ in 0..TOTAL_SCANS / readers {
                                    sum += engine
                                        .store()
                                        .snapshot()
                                        .iter()
                                        .filter_map(|(_, v)| v.datum.as_int())
                                        .map(u128::from)
                                        .sum::<u128>();
                                }
                                sum
                            });
                        }
                    })
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_banking,
    bench_warehouse,
    bench_inflation,
    bench_wal,
    bench_group_commit,
    bench_ro_snapshot
);
criterion_main!(benches);
