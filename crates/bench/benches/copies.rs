//! E7 scaling: the Corollary 3 identical-copies test as transaction size
//! grows, vs running Theorem 4 on d explicit copies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddlf_core::{copies_safe_df, many_safe_df, ManyOptions};
use ddlf_model::{Database, EntityId, TransactionSystem};
use ddlf_workloads::two_phase_total_order;

fn bench_copies(c: &mut Criterion) {
    let mut g = c.benchmark_group("corollary3_copies");
    for n in [8usize, 32, 128] {
        let db = Database::one_entity_per_site(n);
        let order: Vec<EntityId> = (0..n as u32).map(EntityId).collect();
        let t = two_phase_total_order(&db, "T", &order);
        g.bench_with_input(BenchmarkId::new("corollary3", n), &n, |b, _| {
            b.iter(|| copies_safe_df(&t).is_ok())
        });
    }
    g.finish();

    let mut g = c.benchmark_group("theorem5_vs_theorem4");
    let db = Database::one_entity_per_site(6);
    let order: Vec<EntityId> = (0..6u32).map(EntityId).collect();
    let t = two_phase_total_order(&db, "T", &order);
    for d in [2usize, 3, 4] {
        let sys = TransactionSystem::copies(db.clone(), &t, d).unwrap();
        g.bench_with_input(BenchmarkId::new("theorem4_on_copies", d), &d, |b, _| {
            b.iter(|| many_safe_df(&sys, ManyOptions::default()).is_ok())
        });
    }
    g.bench_function("corollary3_once", |b| b.iter(|| copies_safe_df(&t).is_ok()));
    g.finish();
}

criterion_group!(benches, bench_copies);
criterion_main!(benches);
