//! E15: `telemetry_overhead` — the cost of observing the engine.
//!
//! The same certified banking run three ways: telemetry disabled (the
//! library default and the baseline every other bench measures),
//! histograms on (seven phase histograms + counters + gauges, the
//! `ddlf-audit run`/`serve` default), and histograms plus lifecycle
//! tracing sampled at 1 instance in 64. The acceptance bar for the
//! telemetry layer is histograms-on ≤ 5% over disabled at 20k
//! instances (snapshot: BENCH_telemetry.json; CI enforces a 10%
//! wall-clock budget on the 20k CLI run).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddlf_engine::{Engine, EngineConfig};
use ddlf_telemetry::{Telemetry, TelemetryConfig};
use ddlf_workloads::bank_ordered_pair;

fn cfg(instances: usize, telemetry: Telemetry) -> EngineConfig {
    EngineConfig {
        threads: 4,
        instances,
        telemetry,
        ..Default::default()
    }
}

fn bench_overhead(c: &mut Criterion) {
    let (_, ordered) = bank_ordered_pair();
    let mut g = c.benchmark_group("telemetry_overhead");
    g.sample_size(10);
    for &n in &[256usize, 2048] {
        g.bench_with_input(BenchmarkId::new("off", n), &n, |b, &n| {
            b.iter(|| {
                Engine::new(ordered.clone(), cfg(n, Telemetry::disabled()))
                    .run()
                    .committed
            })
        });
        g.bench_with_input(BenchmarkId::new("histograms", n), &n, |b, &n| {
            b.iter(|| {
                Engine::new(ordered.clone(), cfg(n, Telemetry::enabled()))
                    .run()
                    .committed
            })
        });
        g.bench_with_input(BenchmarkId::new("histograms_trace64", n), &n, |b, &n| {
            b.iter(|| {
                let t = Telemetry::new(TelemetryConfig {
                    trace_sample: 64,
                    ..Default::default()
                });
                Engine::new(ordered.clone(), cfg(n, t)).run().committed
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
