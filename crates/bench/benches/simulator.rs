//! E9: runtime policy costs on the banking workload (certified vs greedy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddlf_model::TransactionSystem;
use ddlf_sim::{run, DeadlockPolicy, SimConfig};
use ddlf_workloads::Bank;

fn workload(greedy: bool) -> TransactionSystem {
    let bank = Bank::new(4, 4);
    let routes = [
        ((0usize, 0usize), (1usize, 0usize)),
        ((1, 1), (2, 1)),
        ((2, 2), (3, 2)),
        ((3, 3), (0, 3)),
        ((1, 2), (0, 1)),
        ((3, 0), (2, 3)),
    ];
    let txns = routes
        .iter()
        .enumerate()
        .map(|(i, &(from, to))| {
            if greedy {
                bank.transfer_greedy(&format!("t{i}"), from, to)
            } else {
                bank.transfer_ordered(&format!("t{i}"), from, to)
            }
        })
        .collect();
    TransactionSystem::new(bank.db.clone(), txns).unwrap()
}

fn bench_sim(c: &mut Criterion) {
    let ordered = workload(false);
    let greedy = workload(true);
    let mut g = c.benchmark_group("simulator_policies");
    g.sample_size(20);
    let policies = [
        ("nothing", DeadlockPolicy::Nothing),
        ("detect", DeadlockPolicy::Detect { period_us: 5_000 }),
        ("wound_wait", DeadlockPolicy::WoundWait),
        ("wait_die", DeadlockPolicy::WaitDie),
    ];
    for (name, policy) in policies {
        g.bench_with_input(
            BenchmarkId::new("certified", name),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    run(
                        &ordered,
                        SimConfig {
                            policy,
                            seed: 5,
                            ..Default::default()
                        },
                    )
                    .committed
                })
            },
        );
        if name != "nothing" {
            g.bench_with_input(BenchmarkId::new("greedy", name), &policy, |b, &policy| {
                b.iter(|| {
                    run(
                        &greedy,
                        SimConfig {
                            policy,
                            seed: 5,
                            ..Default::default()
                        },
                    )
                    .committed
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
