//! E16: `lockdep_overhead` — the cost of certifying the engine's own
//! locking.
//!
//! The same certified banking run under the two builds of the vendored
//! shim: the default build, where every hook is an empty `#[inline]`
//! no-op (the acceptance bar: within noise of the uninstrumented
//! BENCH_audit.json numbers), and `--features lockdep`, where each
//! acquisition walks the held-stack and cross-class edges go through
//! the incremental topology (the measured tax, BENCH_lockdep.json).
//! The arm label records which build produced the number, so the two
//! JSON snapshots stay comparable. The `wal_group` arm adds the
//! heaviest hook traffic: WAL classes, per-group fsync blocking
//! regions, and condvar parking in the group queue.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddlf_engine::{Engine, EngineConfig, Telemetry};
use ddlf_workloads::bank_ordered_pair;

const BUILD: &str = if cfg!(feature = "lockdep") {
    "instrumented"
} else {
    "off"
};

fn cfg(instances: usize) -> EngineConfig {
    EngineConfig {
        threads: 4,
        instances,
        telemetry: Telemetry::disabled(),
        ..Default::default()
    }
}

fn bench_overhead(c: &mut Criterion) {
    let (_, ordered) = bank_ordered_pair();
    let mut g = c.benchmark_group("lockdep_overhead");
    g.sample_size(10);
    for &n in &[256usize, 2048] {
        g.bench_with_input(BenchmarkId::new(format!("{BUILD}/run"), n), &n, |b, &n| {
            b.iter(|| Engine::new(ordered.clone(), cfg(n)).run().committed)
        });
        g.bench_with_input(
            BenchmarkId::new(format!("{BUILD}/wal_group"), n),
            &n,
            |b, &n| {
                b.iter(|| {
                    let dir = std::env::temp_dir()
                        .join(format!("ddlf-bench-lockdep-{}", std::process::id()));
                    let committed = Engine::try_with_admission(
                        ordered.clone(),
                        Default::default(),
                        EngineConfig {
                            wal_dir: Some(dir.clone()),
                            group_commit: Some(8),
                            ..cfg(n)
                        },
                    )
                    .unwrap()
                    .run()
                    .committed;
                    let _ = std::fs::remove_dir_all(&dir);
                    committed
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
