//! Micro-benchmarks of the model substrate: transaction building
//! (closure computation), schedule validation, conflict-digraph
//! construction, and linear-extension enumeration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddlf_model::{
    count_linear_extensions, Database, EntityId, Schedule, Transaction, TransactionSystem, TxnId,
};
use ddlf_workloads::{scaling_pair, two_phase_total_order, LockDiscipline};

fn bench_build_closure(c: &mut Criterion) {
    let mut g = c.benchmark_group("transaction_build");
    for n in [16usize, 64, 256, 1024] {
        let db = Database::one_entity_per_site(n);
        let order: Vec<EntityId> = (0..n as u32).map(EntityId).collect();
        g.bench_with_input(BenchmarkId::new("two_phase_chain", n), &n, |b, _| {
            b.iter(|| two_phase_total_order(&db, "T", &order))
        });
    }
    g.finish();
}

fn bench_schedule_validate(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_validate");
    for n in [16usize, 64, 256] {
        let sys = scaling_pair(n, LockDiscipline::OrderedTwoPhase, 3);
        let s = Schedule::serial(&sys, &[TxnId(0), TxnId(1)]);
        g.bench_with_input(BenchmarkId::new("serial_complete", n), &n, |b, _| {
            b.iter(|| s.validate(&sys).unwrap().complete)
        });
        g.bench_with_input(BenchmarkId::new("conflict_digraph", n), &n, |b, _| {
            let v = s.validate(&sys).unwrap();
            b.iter(|| s.conflict_digraph(&sys, &v).is_acyclic())
        });
    }
    g.finish();
}

fn bench_linear_extensions(c: &mut Criterion) {
    let mut g = c.benchmark_group("linear_extensions");
    for k in [3usize, 5, 7] {
        let db = Database::one_entity_per_site(k);
        let mut b = Transaction::builder("T");
        for e in 0..k {
            b.lock_unlock(EntityId(e as u32));
        }
        let t = b.build(&db).unwrap();
        g.bench_with_input(BenchmarkId::new("count_parallel_pairs", k), &k, |bch, _| {
            bch.iter(|| count_linear_extensions(&t, 100_000))
        });
    }
    g.finish();
}

fn bench_interaction_graph(c: &mut Criterion) {
    let mut g = c.benchmark_group("interaction_graph");
    for d in [8usize, 32, 128] {
        let db = Database::one_entity_per_site(d);
        let txns: Vec<Transaction> = (0..d)
            .map(|i| {
                two_phase_total_order(
                    &db,
                    &format!("T{i}"),
                    &[EntityId(i as u32), EntityId(((i + 1) % d) as u32)],
                )
            })
            .collect();
        let sys = TransactionSystem::new(db.clone(), txns).unwrap();
        g.bench_with_input(BenchmarkId::new("ring", d), &d, |b, _| {
            b.iter(|| sys.interaction_graph().edge_count())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_build_closure,
    bench_schedule_validate,
    bench_linear_extensions,
    bench_interaction_graph
);
criterion_main!(benches);
