//! E14: the cost of the wire — loopback TCP round-trips through
//! `ddlf-server` next to the same work on the in-process engine.
//!
//! * `report_rpc` — one framed request/response pair with no execution
//!   behind it: the pure protocol + loopback-socket overhead.
//! * `submit_N` — N certified banking transfers executed per RPC; as N
//!   grows the wire cost amortizes toward the engine-direct time.
//! * `engine_direct_N` — the same N transfers on `Engine::run_mix`
//!   without a socket, the baseline the server wraps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddlf_engine::{Engine, EngineConfig};
use ddlf_model::{SystemSpec, TxnId};
use ddlf_server::{Client, InflateSpec, ServeConfig, Server};
use ddlf_workloads::bank_ordered_pair;

fn bench_wire(c: &mut Criterion) {
    let (_, sys) = bank_ordered_pair();
    let spec = serde_json::to_string(&SystemSpec::from_system(&sys)).expect("spec encodes");

    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    let mut client = Client::connect(&addr).expect("connect");
    let reg = client.register(&spec, InflateSpec::None).expect("register");
    assert!(reg.certified, "{}", reg.verdict);

    let engine = Engine::new(sys, EngineConfig::default());
    let mix: Vec<(TxnId, usize)> = vec![(TxnId(0), 8), (TxnId(1), 8)];

    let mut g = c.benchmark_group("wire_loopback");
    g.sample_size(20);

    g.bench_function("report_rpc", |b| {
        b.iter(|| client.report().expect("report").instances)
    });

    for &n in &[16u32, 64] {
        g.bench_with_input(BenchmarkId::new("submit", n), &n, |b, &n| {
            b.iter(|| {
                let stats = client.submit_all(n).expect("submit");
                assert_eq!(stats.aborted_attempts, 0);
                stats.committed
            })
        });
        g.bench_with_input(BenchmarkId::new("engine_direct", n), &n, |b, &n| {
            b.iter(|| {
                let scaled: Vec<(TxnId, usize)> = mix
                    .iter()
                    .map(|&(t, share)| (t, share * n as usize / 16))
                    .collect();
                engine.run_mix(&scaled).committed
            })
        });
    }
    g.finish();

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
