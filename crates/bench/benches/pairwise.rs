//! E5 scaling: Theorem 3 `O(n²)` test vs the `O(n³)` minimal-prefix
//! variant, as transaction size grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddlf_core::{pairwise_safe_df, pairwise_safe_df_minimal_prefix};
use ddlf_model::TxnId;
use ddlf_workloads::{scaling_pair, LockDiscipline};

fn bench_pairwise(c: &mut Criterion) {
    let mut g = c.benchmark_group("theorem3_pairwise");
    for n in [16usize, 32, 64, 128, 256] {
        let sys = scaling_pair(n, LockDiscipline::OrderedTwoPhase, 7);
        let (t1, t2) = (sys.txn(TxnId(0)), sys.txn(TxnId(1)));
        g.bench_with_input(BenchmarkId::new("quadratic", n), &n, |b, _| {
            b.iter(|| pairwise_safe_df(t1, t2).is_ok())
        });
        if n <= 128 {
            g.bench_with_input(BenchmarkId::new("minimal_prefix_cubic", n), &n, |b, _| {
                b.iter(|| pairwise_safe_df_minimal_prefix(t1, t2).is_ok())
            });
        }
    }
    g.finish();
}

fn bench_pairwise_violating(c: &mut Criterion) {
    // Early-unlock pairs violate condition (2) — measures the fast-reject
    // path.
    let mut g = c.benchmark_group("theorem3_pairwise_reject");
    for n in [32usize, 128] {
        let sys = scaling_pair(n, LockDiscipline::RandomLegal, 3);
        let (t1, t2) = (sys.txn(TxnId(0)), sys.txn(TxnId(1)));
        g.bench_with_input(BenchmarkId::new("random_legal", n), &n, |b, _| {
            b.iter(|| pairwise_safe_df(t1, t2).is_ok())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pairwise, bench_pairwise_violating);
criterion_main!(benches);
