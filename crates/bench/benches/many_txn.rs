//! E6 scaling: Theorem 4 on ring and star systems as the number of
//! transactions grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddlf_core::{many_safe_df, ManyOptions};
use ddlf_workloads::{ring_system, star_system};

fn bench_many(c: &mut Criterion) {
    let mut g = c.benchmark_group("theorem4_many");
    for d in [3usize, 4, 6, 8] {
        let ring = ring_system(d);
        g.bench_with_input(BenchmarkId::new("ring_reject", d), &d, |b, _| {
            b.iter(|| many_safe_df(&ring, ManyOptions::default()).is_err())
        });
        let star = star_system(d);
        g.bench_with_input(BenchmarkId::new("star_certify", d), &d, |b, _| {
            b.iter(|| many_safe_df(&star, ManyOptions::default()).is_ok())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_many);
criterion_main!(benches);
