//! E16 (`audit_scale` / `audit_recovery`): the incremental streaming
//! `D(S)` audit against the post-hoc batch audit.
//!
//! The batch audit is `Θ(n²)` in committed instances — the full `D(S)`
//! carries an arc per ordered locker pair of every entity — so it falls
//! off a cliff right where the engine got interesting (multi-thousand
//! instance runs, WAL recoveries). The streaming auditor maintains the
//! same verdict with per-entity adjacency chains and Pearce–Kelly
//! incremental topological ordering at amortized near-constant cost per
//! event.
//!
//! * `audit_scale` — the same synthetic committed history (every
//!   instance conflicts on two shared entities: the dense-conflict worst
//!   case for the batch graph) audited both ways at growing sizes. Batch
//!   sizes stop at 4096 because the quadratic arc set dominates memory
//!   and minutes beyond that — which is the point.
//! * `audit_recovery` — a real 20k-instance WAL directory (written by a
//!   certified banking run) replayed end to end through `wal::recover`,
//!   whose audit is the streaming path. Snapshot: `BENCH_audit.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddlf_engine::{Engine, EngineConfig};
use ddlf_model::incremental::StreamingAuditor;
use ddlf_model::{Database, EntityId, NodeId, Op, Transaction, TransactionSystem, TxnId};
use ddlf_sim::{History, HistoryEvent, SimTime};
use ddlf_workloads::bank_ordered_pair;
use std::time::Duration;

/// One two-phase template over two shared entities: every instance
/// conflicts with every other on both — the densest batch graph per
/// instance count.
fn shared_pair_system() -> TransactionSystem {
    let db = Database::one_entity_per_site(2);
    let t = Transaction::from_total_order(
        "T",
        &[
            Op::lock(EntityId(0)),
            Op::lock(EntityId(1)),
            Op::unlock(EntityId(0)),
            Op::unlock(EntityId(1)),
        ],
        &db,
    )
    .unwrap();
    TransactionSystem::new(db, vec![t]).unwrap()
}

/// The committed history of `n` instances run serially (instance `i`
/// fully before `i + 1`): `(txn, node)` in time order, all attempt 0.
fn serial_history(n: usize) -> Vec<(u32, NodeId)> {
    let mut events = Vec::with_capacity(n * 4);
    for i in 0..n {
        for node in 0..4 {
            events.push((i as u32, NodeId(node)));
        }
    }
    events
}

/// The batch path exactly as the engine ran it pre-incremental: clone a
/// per-instance audit system, materialize the committed projection, and
/// validate + rebuild the conflict digraph from scratch.
fn batch_audit(sys: &TransactionSystem, events: &[(u32, NodeId)], n: usize) -> bool {
    let tmpl = sys.txn(TxnId(0));
    let txns: Vec<Transaction> = (0..n)
        .map(|i| tmpl.clone().with_name(format!("T#{i}")))
        .collect();
    let audit_sys = TransactionSystem::new(sys.db().clone(), txns).unwrap();
    let mut history = History::new();
    for (time, &(txn, node)) in events.iter().enumerate() {
        history.record(HistoryEvent {
            time: SimTime(time as u64),
            txn: TxnId(txn),
            attempt: 0,
            node,
        });
    }
    let committed: Vec<Option<u32>> = vec![Some(0); n];
    history.audit(&audit_sys, &committed).unwrap()
}

/// The streaming path: admit + commit each instance, feed the events,
/// seal. No per-instance system is ever built.
fn incremental_audit(sys: &TransactionSystem, events: &[(u32, NodeId)], n: usize) -> bool {
    let mut auditor = StreamingAuditor::new(sys);
    for gid in 0..n as u32 {
        auditor.admit(gid, TxnId(0));
        auditor.commit(gid, 0);
    }
    for &(gid, node) in events {
        auditor.event(gid, 0, node);
    }
    auditor.seal().expect("clean serial history")
}

fn bench_audit_scale(c: &mut Criterion) {
    let sys = shared_pair_system();
    let mut g = c.benchmark_group("audit_scale");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(500));
    for &n in &[1024usize, 4096] {
        let events = serial_history(n);
        g.bench_with_input(BenchmarkId::new("batch", n), &n, |b, &n| {
            b.iter(|| batch_audit(&sys, &events, n));
        });
    }
    for &n in &[1024usize, 4096, 20480] {
        let events = serial_history(n);
        g.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, &n| {
            b.iter(|| incremental_audit(&sys, &events, n));
        });
    }
    g.finish();
}

fn bench_audit_recovery(c: &mut Criterion) {
    // A real WAL: a certified banking run of 20k instances (every commit
    // appends its writes, decision, and history events), then replay it
    // — recovery is dominated by the audit for large logs, which is
    // exactly what went incremental.
    let dir = std::env::temp_dir().join(format!("ddlf-bench-audit-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (_, sys) = bank_ordered_pair();
    let engine = Engine::new(
        sys,
        EngineConfig {
            threads: 8,
            instances: 20_000,
            wal_dir: Some(dir.clone()),
            ..Default::default()
        },
    );
    let report = engine.run();
    assert!(report.all_committed() && report.serializable == Some(true));
    drop(engine);

    let mut g = c.benchmark_group("audit_recovery");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    g.bench_function("recover_20k", |b| {
        b.iter(|| {
            let rec = ddlf_engine::recover(&dir).expect("recoverable");
            assert_eq!(rec.serializable, Some(true));
            rec.committed
        });
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_audit_scale, bench_audit_recovery);
criterion_main!(benches);
