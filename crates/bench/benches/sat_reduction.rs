//! E4: Theorem 2 gadget — construction cost and deadlock-decision cost as
//! formula size grows, against the DPLL baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddlf_core::SatReduction;
use ddlf_sat::{solve, Cnf, ThreeSatPrimeGen};

fn instance(n: u32, seed: u64) -> Cnf {
    ThreeSatPrimeGen { n_vars: n, seed }.generate()
}

fn bench_reduction(c: &mut Criterion) {
    let mut g = c.benchmark_group("theorem2_gadget");
    g.sample_size(20);
    for n in [1u32, 2, 4, 6, 8] {
        let f = instance(n, 0xBE);
        g.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| SatReduction::build(&f).unwrap())
        });
        let red = SatReduction::build(&f).unwrap();
        g.bench_with_input(BenchmarkId::new("decide_deadlock", n), &n, |b, _| {
            b.iter(|| red.has_deadlock_prefix(2_000_000_000).unwrap().is_some())
        });
        g.bench_with_input(BenchmarkId::new("dpll_baseline", n), &n, |b, _| {
            b.iter(|| solve(&f).is_sat())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_reduction);
criterion_main!(benches);
