//! E2: the (unsound but fast) Tirri two-entity pattern vs the exact
//! lock→unlock cycle search vs exhaustive state search, on Fig. 2.

use criterion::{criterion_group, criterion_main, Criterion};
use ddlf_core::{lu_pair_deadlock_prefix, tirri_two_entity_pattern, Explorer};
use ddlf_model::TxnId;
use ddlf_workloads::fig2;

fn bench_detectors(c: &mut Criterion) {
    let (sys, _) = fig2();
    let mut g = c.benchmark_group("fig2_detectors");
    g.bench_function("tirri_two_entity", |b| {
        b.iter(|| tirri_two_entity_pattern(sys.txn(TxnId(0)), sys.txn(TxnId(1))))
    });
    g.bench_function("lu_cycle_search", |b| {
        b.iter(|| lu_pair_deadlock_prefix(&sys, 10_000_000).unwrap().is_some())
    });
    g.sample_size(10);
    g.bench_function("exhaustive_state_search", |b| {
        b.iter(|| Explorer::new(&sys, 10_000_000).find_deadlock().0.violated())
    });
    g.finish();
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
