//! E10: the coNP wall — exhaustive state-space checking vs the
//! polynomial certifier on certified pairs whose state space grows as
//! Θ(3ᵏ) (k parallel lock/unlock branches under a root lock).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddlf_bench::experiments::parallel_branch_copy_pair;
use ddlf_core::{pairwise_safe_df, Explorer};
use ddlf_model::TxnId;

fn bench_wall(c: &mut Criterion) {
    let mut g = c.benchmark_group("exhaustive_vs_poly");
    g.sample_size(10);
    for k in [3usize, 5, 7, 9] {
        let sys = parallel_branch_copy_pair(k);
        g.bench_with_input(BenchmarkId::new("exhaustive_lemma1", k), &k, |b, _| {
            b.iter(|| {
                Explorer::new(&sys, 50_000_000)
                    .find_conflict_cycle()
                    .0
                    .holds()
            })
        });
        let (t1, t2) = (sys.txn(TxnId(0)), sys.txn(TxnId(1)));
        g.bench_with_input(BenchmarkId::new("theorem3", k), &k, |b, _| {
            b.iter(|| pairwise_safe_df(t1, t2).is_ok())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_wall);
criterion_main!(benches);
