//! §3 machinery: reduction-graph construction and cycle detection cost on
//! prefixes of growing systems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddlf_core::ReductionGraph;
use ddlf_model::{Prefix, SystemPrefix, TxnId};
use ddlf_workloads::{fig2, scaling_pair, LockDiscipline};

fn bench_reduction_graph(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduction_graph");

    let (sys, prefix) = fig2();
    g.bench_function("fig2_build_and_cycle", |b| {
        b.iter(|| {
            let rg = ReductionGraph::build(&sys, &prefix);
            rg.is_cyclic()
        })
    });

    for n in [16usize, 64, 256] {
        let sys = scaling_pair(n, LockDiscipline::OrderedTwoPhase, 3);
        // Prefix: T1 executed its first half (holds ~n/2 locks), T2 empty.
        let t1 = sys.txn(TxnId(0));
        let half: Vec<_> = t1.any_total_order().into_iter().take(n).collect();
        let p = SystemPrefix::new(vec![
            Prefix::from_nodes(t1, half).unwrap(),
            Prefix::empty(sys.txn(TxnId(1))),
        ]);
        g.bench_with_input(BenchmarkId::new("halfway_prefix", n), &n, |b, _| {
            b.iter(|| ReductionGraph::build(&sys, &p).is_cyclic())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_reduction_graph);
criterion_main!(benches);
