//! The deterministic discrete-event simulator.
//!
//! Sites own lock tables; transaction coordinators walk their partial
//! orders; every cross-site interaction is a [`Message`] delivered with
//! randomized (seeded) latency. Four deadlock-handling policies are
//! provided:
//!
//! * [`DeadlockPolicy::Nothing`] — locks queue forever; a wait cycle
//!   stalls the run (the fate static certification prevents);
//! * [`DeadlockPolicy::Detect`] — a periodic detector snapshots the
//!   global wait-for graph and aborts the youngest transaction on a
//!   cycle (detect-and-resolve, the paper's "detect and eliminate");
//! * [`DeadlockPolicy::WoundWait`] and [`DeadlockPolicy::WaitDie`] — the
//!   Rosenkrantz–Stearns–Lewis timestamp prevention schemes `[RSL]`,
//!   the classic alternatives the paper positions itself against.
//!
//! Every run records a [`crate::History`] whose
//! committed projection is audited with the model's `D(S)` test, closing
//! the loop between runtime and theory.

use crate::history::{History, HistoryEvent};
use crate::lockmgr::{Acquire, LockTable};
use crate::metrics::SimReport;
use crate::msg::Message;
use crate::time::{EventQueue, SimTime};
use ddlf_model::{EntityId, NodeId, Prefix, SiteId, TransactionSystem, TxnId};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::HashMap;

/// Deadlock handling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlockPolicy {
    /// No handling: a wait cycle stalls the run.
    Nothing,
    /// Periodic global wait-for-graph detection; youngest victim aborts.
    Detect {
        /// Detector period in simulated microseconds.
        period_us: u64,
    },
    /// Periodic **per-site** wait-for-graph detection: each site inspects
    /// only its own lock table. Deadlock cycles spanning multiple sites
    /// are invisible to it — the textbook reason distributed deadlock
    /// detection needs a global (or probe-based) view. Kept as an
    /// instructive *broken* baseline for experiment E11.
    DetectLocal {
        /// Detector period in simulated microseconds.
        period_us: u64,
    },
    /// Wound-wait prevention: an older requester aborts the younger
    /// holder; a younger requester waits.
    WoundWait,
    /// Wait-die prevention: an older requester waits; a younger requester
    /// aborts itself.
    WaitDie,
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Deadlock policy.
    pub policy: DeadlockPolicy,
    /// RNG seed; runs are fully deterministic given config + system.
    pub seed: u64,
    /// Minimum one-way message latency (µs).
    pub min_latency_us: u64,
    /// Maximum one-way message latency (µs).
    pub max_latency_us: u64,
    /// Local work time after each granted lock (µs).
    pub work_us: u64,
    /// Backoff before restarting an aborted attempt (µs, jittered).
    pub restart_backoff_us: u64,
    /// Per-transaction attempt limit; exceeding it marks the transaction
    /// stalled rather than looping forever.
    pub max_attempts: u32,
    /// Engine event budget (safety valve).
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            policy: DeadlockPolicy::Detect { period_us: 5_000 },
            seed: 0,
            min_latency_us: 50,
            max_latency_us: 250,
            work_us: 100,
            restart_backoff_us: 2_000,
            max_attempts: 64,
            max_events: 10_000_000,
        }
    }
}

#[derive(Debug)]
enum Event {
    /// A message arrives at a site.
    AtSite(SiteId, Message),
    /// A message arrives at a transaction coordinator.
    AtCoord(TxnId, Message),
    /// Local work after a lock grant finished; the node is executed.
    NodeDone {
        txn: TxnId,
        attempt: u32,
        node: NodeId,
    },
    /// (Re)start an attempt.
    Start { txn: TxnId, attempt: u32 },
    /// Periodic deadlock detector.
    DetectorTick,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeStatus {
    NotIssued,
    Requested,
    Working,
    Done,
}

struct TxnState {
    attempt: u32,
    node_status: Vec<NodeStatus>,
    executed: Prefix,
    /// Entities granted in the current attempt (lock held).
    held: Vec<EntityId>,
    /// Entity → lock node currently requested (in flight or queued).
    waiting: HashMap<EntityId, NodeId>,
    committed: Option<u32>,
    failed: bool,
    /// Timestamp for wound-wait / wait-die: smaller = older. Stable
    /// across restarts (required for liveness of both schemes).
    ts: u32,
}

/// The simulator.
pub struct Simulator<'a> {
    sys: &'a TransactionSystem,
    cfg: SimConfig,
    rng: StdRng,
    now: SimTime,
    queue: EventQueue<Event>,
    sites: Vec<LockTable>,
    txns: Vec<TxnState>,
    history: History,
    report: SimReport,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for one run.
    pub fn new(sys: &'a TransactionSystem, cfg: SimConfig) -> Self {
        let txns = sys
            .iter()
            .map(|(i, t)| TxnState {
                attempt: 0,
                node_status: vec![NodeStatus::NotIssued; t.node_count()],
                executed: Prefix::empty(t),
                held: Vec::new(),
                waiting: HashMap::new(),
                committed: None,
                failed: false,
                ts: i.0,
            })
            .collect();
        Self {
            sys,
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            sites: vec![LockTable::new(); sys.db().site_count()],
            txns,
            history: History::new(),
            report: SimReport::default(),
        }
    }

    /// Runs to completion (all committed), quiescence (deadlock/stall), or
    /// the event budget. Returns the report.
    pub fn run(mut self) -> SimReport {
        // An abort's Release messages must reach the sites before the
        // restarted attempt can re-request the same entities; otherwise a
        // straggling old-attempt Release could cancel the new attempt's
        // queued request (lost wakeup).
        assert!(
            self.cfg.restart_backoff_us > self.cfg.max_latency_us,
            "restart_backoff_us must exceed max_latency_us"
        );
        for (t, _) in self.sys.iter() {
            let jitter = self.rng.gen_range(0..=self.cfg.min_latency_us);
            self.queue
                .push(SimTime(jitter), Event::Start { txn: t, attempt: 0 });
        }
        if let DeadlockPolicy::Detect { period_us } | DeadlockPolicy::DetectLocal { period_us } =
            self.cfg.policy
        {
            self.queue.push(SimTime(period_us), Event::DetectorTick);
        }

        while let Some((t, ev)) = self.queue.pop() {
            self.now = t;
            self.report.events_processed += 1;
            if self.report.events_processed > self.cfg.max_events {
                break;
            }
            self.dispatch(ev);
            if self.all_done() {
                break;
            }
        }

        self.finish()
    }

    fn all_done(&self) -> bool {
        self.txns.iter().all(|s| s.committed.is_some() || s.failed)
    }

    fn finish(mut self) -> SimReport {
        if std::env::var_os("DDLF_SIM_DEBUG").is_some()
            && self.txns.iter().any(|s| s.committed.is_none())
        {
            for (i, st) in self.txns.iter().enumerate() {
                eprintln!(
                    "T{i}: attempt={} committed={:?} failed={} held={:?} waiting={:?} executed={}/{}",
                    st.attempt,
                    st.committed,
                    st.failed,
                    st.held,
                    st.waiting,
                    st.executed.len(),
                    self.sys.txn(TxnId::from_index(i)).node_count()
                );
            }
            for (s, table) in self.sites.iter().enumerate() {
                for e in self.sys.db().entities_at(SiteId::from_index(s)) {
                    if let Some(h) = table.holder(e) {
                        eprintln!(
                            "site {s}: {} held by {h}, waiters {:?}",
                            self.sys.db().name_of(e),
                            table.waiters(e)
                        );
                    }
                }
            }
        }
        self.report.end_time = self.now;
        self.report.committed = self.txns.iter().filter(|s| s.committed.is_some()).count();
        self.report.stalled = self
            .txns
            .iter()
            .enumerate()
            .filter(|(_, s)| s.committed.is_none())
            .map(|(i, _)| TxnId::from_index(i))
            .collect();
        self.report.history_len = self.history.len();
        if self.report.stalled.is_empty() {
            let committed: Vec<Option<u32>> = self.txns.iter().map(|s| s.committed).collect();
            self.report.serializable = self.history.audit(self.sys, &committed).ok();
        }
        self.report
    }

    fn latency(&mut self) -> u64 {
        self.rng
            .gen_range(self.cfg.min_latency_us..=self.cfg.max_latency_us)
    }

    fn send_to_site(&mut self, site: SiteId, msg: Message) {
        let lat = self.latency();
        self.report.messages += 1;
        // Wire-encode and decode: the site only sees the byte form.
        let wire = msg.encode();
        let msg = Message::decode(wire).expect("self-encoded message decodes");
        self.queue.push(self.now + lat, Event::AtSite(site, msg));
    }

    fn send_to_coord(&mut self, txn: TxnId, msg: Message) {
        let lat = self.latency();
        self.report.messages += 1;
        let wire = msg.encode();
        let msg = Message::decode(wire).expect("self-encoded message decodes");
        self.queue.push(self.now + lat, Event::AtCoord(txn, msg));
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::Start { txn, attempt } => self.on_start(txn, attempt),
            Event::NodeDone { txn, attempt, node } => self.on_node_done(txn, attempt, node),
            Event::AtSite(site, msg) => self.on_site_msg(site, msg),
            Event::AtCoord(txn, msg) => self.on_coord_msg(txn, msg),
            Event::DetectorTick => self.on_detector_tick(),
        }
    }

    fn on_start(&mut self, txn: TxnId, attempt: u32) {
        let st = &mut self.txns[txn.index()];
        if st.attempt != attempt || st.committed.is_some() || st.failed {
            return;
        }
        self.advance(txn);
    }

    /// Issues every ready, not-yet-issued operation of the transaction.
    fn advance(&mut self, txn: TxnId) {
        let t = self.sys.txn(txn);
        loop {
            let st = &self.txns[txn.index()];
            if st.committed.is_some() || st.failed {
                return;
            }
            let ready: Vec<NodeId> = st
                .executed
                .ready_nodes(t)
                .into_iter()
                .filter(|&n| st.node_status[n.index()] == NodeStatus::NotIssued)
                .collect();
            if ready.is_empty() {
                break;
            }
            let mut progressed = false;
            for n in ready {
                let op = t.op(n);
                if op.is_lock() {
                    let st = &mut self.txns[txn.index()];
                    st.node_status[n.index()] = NodeStatus::Requested;
                    st.waiting.insert(op.entity, n);
                    let attempt = st.attempt;
                    let site = self.sys.db().site_of(op.entity);
                    self.send_to_site(
                        site,
                        Message::LockReq {
                            txn,
                            attempt,
                            entity: op.entity,
                        },
                    );
                } else {
                    // Unlock: effective immediately from the coordinator's
                    // viewpoint; the release message propagates to the
                    // site asynchronously.
                    let st = &mut self.txns[txn.index()];
                    st.node_status[n.index()] = NodeStatus::Done;
                    st.executed.push(n);
                    st.held.retain(|&e| e != op.entity);
                    let attempt = st.attempt;
                    self.history.record(HistoryEvent {
                        time: self.now,
                        txn,
                        attempt,
                        node: n,
                    });
                    let site = self.sys.db().site_of(op.entity);
                    self.send_to_site(
                        site,
                        Message::Release {
                            txn,
                            entity: op.entity,
                        },
                    );
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        // Commit check.
        let st = &mut self.txns[txn.index()];
        if st.committed.is_none() && st.executed.is_complete(self.sys.txn(txn)) {
            st.committed = Some(st.attempt);
        }
    }

    fn on_node_done(&mut self, txn: TxnId, attempt: u32, node: NodeId) {
        {
            let st = &mut self.txns[txn.index()];
            if st.attempt != attempt || st.committed.is_some() || st.failed {
                return;
            }
            if st.node_status[node.index()] != NodeStatus::Working {
                return;
            }
            st.node_status[node.index()] = NodeStatus::Done;
            st.executed.push(node);
        }
        self.advance(txn);
    }

    fn on_site_msg(&mut self, site: SiteId, msg: Message) {
        match msg {
            Message::LockReq {
                txn,
                attempt,
                entity,
            } => {
                // Stale request from an aborted attempt: drop.
                if self.txns[txn.index()].attempt != attempt {
                    return;
                }
                match self.sites[site.index()].acquire(txn, entity) {
                    Acquire::Granted => self.grant_cascade(site, txn, entity),
                    Acquire::Queued { holder } => self.on_conflict(site, txn, holder, entity),
                }
            }
            Message::Release { txn, entity } => {
                if let Some(next) = self.sites[site.index()].release(txn, entity) {
                    self.grant_cascade(site, next, entity);
                }
            }
            _ => {}
        }
    }

    /// Settles a grant decided at the site. A queue entry can be *stale*:
    /// its transaction aborted (its Release is in flight) or even
    /// restarted without re-requesting this entity yet — granting to it
    /// would record a lock event its committed attempt never asked for.
    /// Such vanished waiters are skipped and the lock cascades to the
    /// next one; a valid grantee is recorded at site time, notified, and
    /// the remaining queue re-checked against the prevention policy
    /// (without the re-check, an old transaction queued behind a younger
    /// promoted holder would wait forever under wound-wait/wait-die).
    fn grant_cascade(&mut self, site: SiteId, first: TxnId, entity: EntityId) {
        let mut grantee = Some(first);
        while let Some(txn) = grantee {
            let st = &self.txns[txn.index()];
            let valid = st.waiting.contains_key(&entity) && st.committed.is_none() && !st.failed;
            if valid {
                let attempt = st.attempt;
                let node = self.sys.txn(txn).lock_node_of(entity).expect("accessed");
                self.history.record(HistoryEvent {
                    time: self.now,
                    txn,
                    attempt,
                    node,
                });
                self.send_to_coord(
                    txn,
                    Message::LockGrant {
                        txn,
                        attempt,
                        entity,
                    },
                );
                self.apply_policy_to_queue(site, entity, txn);
                return;
            }
            grantee = self.sites[site.index()].release(txn, entity);
        }
    }

    fn on_conflict(&mut self, _site: SiteId, requester: TxnId, holder: TxnId, entity: EntityId) {
        match self.cfg.policy {
            DeadlockPolicy::Nothing
            | DeadlockPolicy::Detect { .. }
            | DeadlockPolicy::DetectLocal { .. } => {
                // Queued; nothing else to do.
            }
            DeadlockPolicy::WoundWait => {
                let r_ts = self.txns[requester.index()].ts;
                let h_ts = self.txns[holder.index()].ts;
                if r_ts < h_ts {
                    // Older wounds younger holder.
                    self.report.wounds += 1;
                    self.send_to_coord(holder, Message::AbortOrder { victim: holder });
                }
                let _ = entity;
            }
            DeadlockPolicy::WaitDie => {
                let r_ts = self.txns[requester.index()].ts;
                let h_ts = self.txns[holder.index()].ts;
                if r_ts > h_ts {
                    // Younger requester dies.
                    self.report.dies += 1;
                    self.send_to_coord(requester, Message::AbortOrder { victim: requester });
                }
            }
        }
    }

    /// Applies the prevention policy between a freshly-promoted holder
    /// and the waiters still queued behind it.
    fn apply_policy_to_queue(&mut self, site: SiteId, entity: EntityId, holder: TxnId) {
        let waiters = self.sites[site.index()].waiters(entity);
        if waiters.is_empty() {
            return;
        }
        let h_ts = self.txns[holder.index()].ts;
        match self.cfg.policy {
            DeadlockPolicy::WoundWait => {
                // The oldest waiter wounds a younger holder (once).
                let oldest = waiters
                    .iter()
                    .copied()
                    .min_by_key(|w| self.txns[w.index()].ts)
                    .expect("nonempty");
                if self.txns[oldest.index()].ts < h_ts {
                    self.report.wounds += 1;
                    self.send_to_coord(holder, Message::AbortOrder { victim: holder });
                }
            }
            DeadlockPolicy::WaitDie => {
                // Waiters younger than the new holder die.
                for w in waiters {
                    if self.txns[w.index()].ts > h_ts {
                        self.report.dies += 1;
                        self.send_to_coord(w, Message::AbortOrder { victim: w });
                    }
                }
            }
            _ => {}
        }
    }

    fn on_coord_msg(&mut self, to: TxnId, msg: Message) {
        match msg {
            Message::LockGrant {
                txn,
                attempt,
                entity,
            } => {
                debug_assert_eq!(to, txn);
                let st = &mut self.txns[txn.index()];
                if st.attempt != attempt || st.committed.is_some() || st.failed {
                    // Grant for a dead attempt. The abort path already sent
                    // a Release for every entity the attempt held or
                    // waited on (the entity was in `waiting` or `held` at
                    // abort time), so the lock is — or is about to be —
                    // freed at the site. Sending another Release here
                    // would be a double release that can cancel the *new*
                    // attempt's queued request: a lost wakeup.
                    return;
                }
                let Some(node) = st.waiting.remove(&entity) else {
                    return;
                };
                st.node_status[node.index()] = NodeStatus::Working;
                st.held.push(entity);
                let work = self.cfg.work_us + self.rng.gen_range(0..=self.cfg.work_us / 2 + 1);
                self.queue
                    .push(self.now + work, Event::NodeDone { txn, attempt, node });
            }
            Message::AbortOrder { victim } => {
                debug_assert_eq!(to, victim);
                self.abort(victim);
            }
            _ => {}
        }
    }

    /// Aborts the victim's current attempt: releases everything it holds
    /// or waits for, resets its state, and schedules a restart.
    fn abort(&mut self, victim: TxnId) {
        let t = self.sys.txn(victim);
        let st = &mut self.txns[victim.index()];
        if st.committed.is_some() || st.failed {
            return;
        }
        self.report.aborted_attempts += 1;
        let held = std::mem::take(&mut st.held);
        let waiting: Vec<EntityId> = st.waiting.drain().map(|(e, _)| e).collect();
        st.attempt += 1;
        st.executed = Prefix::empty(t);
        st.node_status.fill(NodeStatus::NotIssued);
        if st.attempt >= self.cfg.max_attempts {
            st.failed = true;
        }
        let attempt = st.attempt;
        let failed = st.failed;
        for e in held.into_iter().chain(waiting) {
            let site = self.sys.db().site_of(e);
            self.send_to_site(
                site,
                Message::Release {
                    txn: victim,
                    entity: e,
                },
            );
        }
        if !failed {
            let backoff =
                self.cfg.restart_backoff_us + self.rng.gen_range(0..=self.cfg.restart_backoff_us);
            self.queue.push(
                self.now + backoff,
                Event::Start {
                    txn: victim,
                    attempt,
                },
            );
        }
    }

    fn on_detector_tick(&mut self) {
        let d = self.sys.len();
        let local_only = matches!(self.cfg.policy, DeadlockPolicy::DetectLocal { .. });
        let mut aborted_any = false;
        if local_only {
            // Each site inspects only its own table: cross-site cycles
            // are invisible.
            for s in 0..self.sites.len() {
                let mut adj = vec![Vec::new(); d];
                for (w, h) in self.sites[s].wait_for_edges() {
                    adj[w.index()].push(h.index());
                }
                if let Some(cycle) = find_cycle(&adj) {
                    let victim = cycle
                        .iter()
                        .max_by_key(|&&v| self.txns[v].ts)
                        .copied()
                        .expect("cycle nonempty");
                    self.report.deadlocks_detected += 1;
                    self.abort(TxnId::from_index(victim));
                    aborted_any = true;
                }
            }
        } else {
            // Global wait-for graph snapshot across all sites.
            let mut adj = vec![Vec::new(); d];
            for table in &self.sites {
                for (w, h) in table.wait_for_edges() {
                    adj[w.index()].push(h.index());
                }
            }
            if let Some(cycle) = find_cycle(&adj) {
                // Victim: youngest (largest timestamp) on the cycle.
                let victim = cycle
                    .iter()
                    .max_by_key(|&&v| self.txns[v].ts)
                    .copied()
                    .expect("cycle nonempty");
                self.report.deadlocks_detected += 1;
                self.abort(TxnId::from_index(victim));
                aborted_any = true;
            }
        }
        // Re-arm while work remains; if the system has quiesced (no other
        // events in flight) and the detector cannot break anything, give
        // up and report the stall — the fate of a local-only detector
        // facing a cross-site cycle.
        if !self.all_done() && (aborted_any || !self.queue.is_empty()) {
            if let DeadlockPolicy::Detect { period_us }
            | DeadlockPolicy::DetectLocal { period_us } = self.cfg.policy
            {
                self.queue.push(self.now + period_us, Event::DetectorTick);
            }
        }
    }
}

/// DFS cycle finder over adjacency lists; returns the cycle's vertices.
fn find_cycle(adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    #[derive(Clone, Copy, PartialEq)]
    enum C {
        White,
        Gray,
        Black,
    }
    let n = adj.len();
    let mut color = vec![C::White; n];
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for s in 0..n {
        if color[s] != C::White {
            continue;
        }
        color[s] = C::Gray;
        stack.push((s, 0));
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if *i < adj[v].len() {
                let w = adj[v][*i];
                *i += 1;
                match color[w] {
                    C::White => {
                        color[w] = C::Gray;
                        stack.push((w, 0));
                    }
                    C::Gray => {
                        let pos = stack.iter().position(|&(x, _)| x == w).expect("on stack");
                        return Some(stack[pos..].iter().map(|&(x, _)| x).collect());
                    }
                    C::Black => {}
                }
            } else {
                color[v] = C::Black;
                stack.pop();
            }
        }
    }
    None
}

/// Convenience: runs one simulation.
pub fn run(sys: &TransactionSystem, cfg: SimConfig) -> SimReport {
    Simulator::new(sys, cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddlf_model::{Database, Op, Transaction};

    fn classic_deadlock_pair() -> TransactionSystem {
        let db = Database::one_entity_per_site(2);
        let (x, y) = (EntityId(0), EntityId(1));
        let t1 = Transaction::from_total_order(
            "T1",
            &[Op::lock(x), Op::lock(y), Op::unlock(x), Op::unlock(y)],
            &db,
        )
        .unwrap();
        let t2 = Transaction::from_total_order(
            "T2",
            &[Op::lock(y), Op::lock(x), Op::unlock(y), Op::unlock(x)],
            &db,
        )
        .unwrap();
        TransactionSystem::new(db, vec![t1, t2]).unwrap()
    }

    fn same_order_pair() -> TransactionSystem {
        let db = Database::one_entity_per_site(2);
        let (x, y) = (EntityId(0), EntityId(1));
        let ops = [Op::lock(x), Op::lock(y), Op::unlock(x), Op::unlock(y)];
        let t1 = Transaction::from_total_order("T1", &ops, &db).unwrap();
        let t2 = Transaction::from_total_order("T2", &ops, &db).unwrap();
        TransactionSystem::new(db, vec![t1, t2]).unwrap()
    }

    #[test]
    fn safe_pair_runs_to_commit_without_policy() {
        let sys = same_order_pair();
        let r = run(
            &sys,
            SimConfig {
                policy: DeadlockPolicy::Nothing,
                seed: 1,
                ..Default::default()
            },
        );
        assert!(r.all_committed(2), "report: {r:?}");
        assert_eq!(r.serializable, Some(true));
        assert_eq!(r.aborted_attempts, 0);
    }

    #[test]
    fn deadlock_pair_stalls_without_policy() {
        // Some seed must drive the pair into the cross-wait; with lock
        // steps separated by work time, most seeds do.
        let sys = classic_deadlock_pair();
        let mut stalled_seen = false;
        for seed in 0..10 {
            let r = run(
                &sys,
                SimConfig {
                    policy: DeadlockPolicy::Nothing,
                    seed,
                    ..Default::default()
                },
            );
            if !r.stalled.is_empty() {
                stalled_seen = true;
                assert_eq!(r.stalled.len(), 2, "both block");
            }
        }
        assert!(stalled_seen, "no seed produced the deadlock");
    }

    /// E11: a per-site detector cannot see a cycle whose entities live on
    /// different sites — the same workload on a single site is caught.
    #[test]
    fn local_detector_misses_cross_site_deadlocks() {
        // Distributed version: x and y on different sites.
        let distributed = classic_deadlock_pair();
        // Centralized version: both entities on one site (total orders
        // are the same transactions).
        let db = Database::centralized(2);
        let (x, y) = (EntityId(0), EntityId(1));
        let t1 = Transaction::from_total_order(
            "T1",
            &[Op::lock(x), Op::lock(y), Op::unlock(x), Op::unlock(y)],
            &db,
        )
        .unwrap();
        let t2 = Transaction::from_total_order(
            "T2",
            &[Op::lock(y), Op::lock(x), Op::unlock(y), Op::unlock(x)],
            &db,
        )
        .unwrap();
        let centralized = TransactionSystem::new(db, vec![t1, t2]).unwrap();

        let mut missed = 0;
        let mut caught = 0;
        for seed in 0..10 {
            let cfg = SimConfig {
                policy: DeadlockPolicy::DetectLocal { period_us: 1_000 },
                seed,
                ..Default::default()
            };
            let rd = run(&distributed, cfg);
            if !rd.stalled.is_empty() {
                missed += 1;
                assert_eq!(
                    rd.deadlocks_detected, 0,
                    "local detector cannot have seen the cross-site cycle"
                );
            }
            let rc = run(&centralized, cfg);
            assert!(
                rc.all_committed(2),
                "single-site cycle must be caught: {rc:?}"
            );
            caught += usize::from(rc.deadlocks_detected > 0);
        }
        assert!(
            missed > 0,
            "some timing must produce the cross-site deadlock"
        );
        assert!(caught > 0, "the same timing on one site must be detected");
    }

    #[test]
    fn detector_resolves_deadlock() {
        let sys = classic_deadlock_pair();
        for seed in 0..10 {
            let r = run(
                &sys,
                SimConfig {
                    policy: DeadlockPolicy::Detect { period_us: 1_000 },
                    seed,
                    ..Default::default()
                },
            );
            assert!(r.all_committed(2), "seed {seed}: {r:?}");
            assert_eq!(r.serializable, Some(true), "seed {seed}");
        }
    }

    #[test]
    fn wound_wait_resolves_deadlock() {
        let sys = classic_deadlock_pair();
        for seed in 0..10 {
            let r = run(
                &sys,
                SimConfig {
                    policy: DeadlockPolicy::WoundWait,
                    seed,
                    ..Default::default()
                },
            );
            assert!(r.all_committed(2), "seed {seed}: {r:?}");
            assert_eq!(r.serializable, Some(true), "seed {seed}");
        }
    }

    #[test]
    fn wait_die_resolves_deadlock() {
        let sys = classic_deadlock_pair();
        for seed in 0..10 {
            let r = run(
                &sys,
                SimConfig {
                    policy: DeadlockPolicy::WaitDie,
                    seed,
                    ..Default::default()
                },
            );
            assert!(r.all_committed(2), "seed {seed}: {r:?}");
            assert_eq!(r.serializable, Some(true), "seed {seed}");
        }
    }

    /// Regression: prevention policies must re-check the queue at grant
    /// handoff. Six greedy cross-branch transfers over four sites drive an
    /// old transaction behind a younger promoted holder; before the
    /// handoff re-check, wound-wait stalled on seeds 7 and 17.
    #[test]
    fn prevention_policies_never_stall_on_contended_transfers() {
        use ddlf_model::Database;
        // Reconstruct the banking-shaped workload inline (sim cannot
        // depend on workloads).
        let mut b = Database::builder();
        let mut accounts = Vec::new();
        for br in 0..4 {
            let site = b.add_site();
            accounts.push(
                (0..4)
                    .map(|a| b.add_entity(format!("acct{br}_{a}"), site))
                    .collect::<Vec<_>>(),
            );
        }
        let hq = b.add_site();
        let ledgers: Vec<EntityId> = (0..4)
            .map(|br| b.add_entity(format!("ledger{br}"), hq))
            .collect();
        let db = b.build();
        let routes = [
            ((0usize, 0usize), (1usize, 0usize)),
            ((1, 1), (2, 1)),
            ((2, 2), (3, 2)),
            ((3, 3), (0, 3)),
            ((1, 2), (0, 1)),
            ((3, 0), (2, 3)),
        ];
        let txns: Vec<Transaction> = routes
            .iter()
            .enumerate()
            .map(|(i, &(from, to))| {
                let order = [
                    accounts[from.0][from.1],
                    ledgers[from.0],
                    accounts[to.0][to.1],
                    ledgers[to.0],
                ];
                let ops: Vec<Op> = order
                    .iter()
                    .map(|&e| Op::lock(e))
                    .chain(order.iter().rev().map(|&e| Op::unlock(e)))
                    .collect();
                Transaction::from_total_order(format!("T{i}"), &ops, &db).unwrap()
            })
            .collect();
        let sys = TransactionSystem::new(db, txns).unwrap();
        for policy in [DeadlockPolicy::WoundWait, DeadlockPolicy::WaitDie] {
            for seed in 0..40 {
                let r = run(
                    &sys,
                    SimConfig {
                        policy,
                        seed,
                        ..Default::default()
                    },
                );
                assert!(r.all_committed(6), "{policy:?} seed {seed} stalled: {r:?}");
                assert_eq!(r.serializable, Some(true), "{policy:?} seed {seed}");
            }
        }
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let sys = classic_deadlock_pair();
        let cfg = SimConfig {
            policy: DeadlockPolicy::Detect { period_us: 1_000 },
            seed: 42,
            ..Default::default()
        };
        let a = run(&sys, cfg);
        let b = run(&sys, cfg);
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.aborted_attempts, b.aborted_attempts);
        assert_eq!(a.events_processed, b.events_processed);
    }

    #[test]
    fn single_transaction_commits() {
        let db = Database::one_entity_per_site(1);
        let t = Transaction::from_total_order(
            "T",
            &[Op::lock(EntityId(0)), Op::unlock(EntityId(0))],
            &db,
        )
        .unwrap();
        let sys = TransactionSystem::new(db, vec![t]).unwrap();
        let r = run(&sys, SimConfig::default());
        assert!(r.all_committed(1));
        assert_eq!(r.serializable, Some(true));
    }

    #[test]
    fn empty_system_finishes() {
        let db = Database::one_entity_per_site(1);
        let sys = TransactionSystem::new(db, vec![]).unwrap();
        let r = run(&sys, SimConfig::default());
        assert!(r.all_committed(0));
    }

    #[test]
    fn partial_order_transaction_executes_in_parallel_branches() {
        // x ∥ y branches execute without artificial serialization.
        let db = Database::one_entity_per_site(2);
        let mut b = Transaction::builder("T");
        b.lock_unlock(EntityId(0));
        b.lock_unlock(EntityId(1));
        let t = b.build(&db).unwrap();
        let sys = TransactionSystem::new(db, vec![t]).unwrap();
        let r = run(&sys, SimConfig::default());
        assert!(r.all_committed(1));
    }
}
