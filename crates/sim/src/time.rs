//! Simulated time and the discrete-event queue.

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::ops::Add;

/// Simulated time in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Microsecond count.
    #[inline]
    pub fn micros(self) -> u64 {
        self.0
    }

    /// Construct from microseconds.
    #[inline]
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}µs", self.0)
    }
}

/// A deterministic discrete-event queue: events fire in `(time, seq)`
/// order, where `seq` is the insertion sequence number — ties are broken
/// by insertion order, making runs reproducible.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, EventBox<E>)>>,
    seq: u64,
}

/// Wrapper that exempts the payload from ordering.
#[derive(Debug)]
struct EventBox<E>(E);

impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        self.heap.push(Reverse((time, self.seq, EventBox(event))));
        self.seq += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse((t, _, EventBox(e)))| (t, e))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_same_time() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), "b");
        q.push(SimTime(5), "c");
        q.push(SimTime(1), "a");
        assert_eq!(q.pop(), Some((SimTime(1), "a")));
        assert_eq!(q.pop(), Some((SimTime(5), "b")));
        assert_eq!(q.pop(), Some((SimTime(5), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_micros(10) + 5;
        assert_eq!(t.micros(), 15);
        assert_eq!(t.to_string(), "15µs");
        assert!(SimTime::ZERO < t);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime(1), 1);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
