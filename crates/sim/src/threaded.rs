//! A real-threads runtime: sites and transaction coordinators as OS
//! threads exchanging crossbeam channel messages.
//!
//! This is the "production-shaped" counterpart of the deterministic
//! discrete-event engine in [`crate::des`]: each site thread owns its
//! lock table, each transaction runs in its own coordinator thread, and
//! deadlocks are broken by lock-wait timeouts with randomized backoff —
//! the pragmatic scheme real systems fall back to when they neither
//! certify statically nor run a global detector.
//!
//! The global history is appended under a `parking_lot` mutex at the
//! moment each grant/unlock becomes effective, so the committed
//! projection can be audited with the model's `D(S)` test exactly like a
//! simulated run.

use crate::history::SharedHistory;
use crate::lockmgr::{Acquire, LockTable};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use ddlf_model::{EntityId, NodeId, Prefix, TransactionSystem, TxnId};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::sync::Arc;
use std::time::Duration;

/// Configuration of the threaded runtime.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedConfig {
    /// How long a coordinator waits on a lock before aborting its attempt.
    pub lock_timeout: Duration,
    /// Maximum attempts per transaction.
    pub max_attempts: u32,
    /// Simulated per-lock work (kept tiny in tests).
    pub work: Duration,
    /// Base restart backoff (jittered per attempt).
    pub backoff: Duration,
    /// RNG seed for jitter.
    pub seed: u64,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        Self {
            lock_timeout: Duration::from_millis(25),
            max_attempts: 200,
            work: Duration::from_micros(200),
            backoff: Duration::from_millis(2),
            seed: 0,
        }
    }
}

/// Outcome of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedReport {
    /// Transactions that committed.
    pub committed: usize,
    /// Aborted attempts across all transactions.
    pub aborted_attempts: usize,
    /// Transactions that exhausted their attempt budget.
    pub failed: Vec<TxnId>,
    /// `D(S)` audit of the committed projection (`None` if any failed).
    pub serializable: Option<bool>,
    /// Recorded history length.
    pub history_len: usize,
}

enum SiteMsg {
    Acquire {
        txn: TxnId,
        entity: EntityId,
        attempt: u32,
        reply: Sender<(EntityId, u32)>,
    },
    Release {
        txn: TxnId,
        entity: EntityId,
    },
    Shutdown,
}

fn site_thread(rx: Receiver<SiteMsg>, shared: Arc<SharedHistory>, sys: Arc<TransactionSystem>) {
    let mut table = LockTable::new();
    // Pending reply channels: (txn, entity) → (reply, attempt).
    type Waiters = std::collections::HashMap<(TxnId, EntityId), (Sender<(EntityId, u32)>, u32)>;
    let mut waiters: Waiters = Waiters::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            SiteMsg::Acquire {
                txn,
                entity,
                attempt,
                reply,
            } => match table.acquire(txn, entity) {
                Acquire::Granted => {
                    let node = sys.txn(txn).lock_node_of(entity).expect("accessed");
                    shared.record(txn, attempt, node);
                    let _ = reply.send((entity, attempt));
                }
                Acquire::Queued { .. } => {
                    waiters.insert((txn, entity), (reply, attempt));
                }
            },
            SiteMsg::Release { txn, entity } => {
                waiters.remove(&(txn, entity));
                if let Some(next) = table.release(txn, entity) {
                    if let Some((reply, attempt)) = waiters.remove(&(next, entity)) {
                        let node = sys.txn(next).lock_node_of(entity).expect("accessed");
                        shared.record(next, attempt, node);
                        let _ = reply.send((entity, attempt));
                    } else {
                        // The waiter vanished (aborted attempt whose
                        // Release already passed); free the lock again.
                        table.release(next, entity);
                    }
                }
            }
            SiteMsg::Shutdown => break,
        }
    }
}

struct WorkerOutcome {
    committed_attempt: Option<u32>,
    aborted: u32,
}

#[allow(clippy::too_many_arguments)]
fn worker_thread(
    txn: TxnId,
    sys: Arc<TransactionSystem>,
    sites: Vec<Sender<SiteMsg>>,
    shared: Arc<SharedHistory>,
    cfg: ThreadedConfig,
) -> WorkerOutcome {
    let t = sys.txn(txn);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (txn.0 as u64) << 32 | 0x5DEECE66D);
    let mut aborted = 0u32;

    for attempt in 0..cfg.max_attempts {
        let (reply_tx, reply_rx) = unbounded::<(EntityId, u32)>();
        let mut executed = Prefix::empty(t);
        let mut issued: Vec<bool> = vec![false; t.node_count()];
        let mut requested: Vec<EntityId> = Vec::new();
        let ok;

        'attempt: loop {
            // Issue all ready, unissued ops.
            let mut waiting_for_grant = false;
            loop {
                let ready: Vec<NodeId> = executed
                    .ready_nodes(t)
                    .into_iter()
                    .filter(|&n| !issued[n.index()])
                    .collect();
                if ready.is_empty() {
                    break;
                }
                let mut unlocked_any = false;
                for n in ready {
                    let op = t.op(n);
                    issued[n.index()] = true;
                    let site = sys.db().site_of(op.entity);
                    if op.is_lock() {
                        requested.push(op.entity);
                        let _ = sites[site.index()].send(SiteMsg::Acquire {
                            txn,
                            entity: op.entity,
                            attempt,
                            reply: reply_tx.clone(),
                        });
                        waiting_for_grant = true;
                    } else {
                        shared.record(txn, attempt, n);
                        executed.push(n);
                        requested.retain(|&e| e != op.entity);
                        let _ = sites[site.index()].send(SiteMsg::Release {
                            txn,
                            entity: op.entity,
                        });
                        unlocked_any = true;
                    }
                }
                if !unlocked_any {
                    break;
                }
            }

            if executed.is_complete(t) {
                return WorkerOutcome {
                    committed_attempt: Some(attempt),
                    aborted,
                };
            }

            // Await a grant (there must be at least one outstanding lock,
            // otherwise the transaction would be complete).
            debug_assert!(waiting_for_grant || !requested.is_empty());
            match reply_rx.recv_timeout(cfg.lock_timeout) {
                Ok((entity, granted_attempt)) => {
                    if granted_attempt != attempt {
                        continue 'attempt; // stale; cannot happen with per-attempt channels
                    }
                    if !cfg.work.is_zero() {
                        std::thread::sleep(cfg.work);
                    }
                    let node = t.lock_node_of(entity).expect("accessed");
                    executed.push(node);
                }
                Err(RecvTimeoutError::Timeout) => {
                    ok = false;
                    break 'attempt;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    ok = false;
                    break 'attempt;
                }
            }
        }

        if !ok {
            // Abort: release everything we hold or queue for.
            aborted += 1;
            for &e in &requested {
                let site = sys.db().site_of(e);
                let _ = sites[site.index()].send(SiteMsg::Release { txn, entity: e });
            }
            // Also release entities we locked but did not unlock yet.
            for &e in t.entities() {
                let l = t.lock_node_of(e).expect("accessed");
                let u = t.unlock_node_of(e).expect("accessed");
                if executed.contains(l) && !executed.contains(u) {
                    let site = sys.db().site_of(e);
                    let _ = sites[site.index()].send(SiteMsg::Release { txn, entity: e });
                }
            }
            drop(reply_rx);
            let jitter = rng.gen_range(0..=cfg.backoff.as_micros() as u64);
            std::thread::sleep(
                cfg.backoff + Duration::from_micros(jitter * (1 + attempt as u64 % 4)),
            );
        }
    }

    WorkerOutcome {
        committed_attempt: None,
        aborted,
    }
}

/// Runs the system on real threads. Blocks until every transaction
/// commits or exhausts its attempts.
pub fn run_threaded(sys: &TransactionSystem, cfg: ThreadedConfig) -> ThreadedReport {
    let sys = Arc::new(sys.clone());
    let shared = Arc::new(SharedHistory::new());

    let mut site_txs = Vec::new();
    let mut site_handles = Vec::new();
    for _ in 0..sys.db().site_count() {
        let (tx, rx) = unbounded::<SiteMsg>();
        site_txs.push(tx);
        let shared = Arc::clone(&shared);
        let sys = Arc::clone(&sys);
        site_handles.push(std::thread::spawn(move || site_thread(rx, shared, sys)));
    }

    let mut worker_handles = Vec::new();
    for (t, _) in sys.iter() {
        let sys = Arc::clone(&sys);
        let shared = Arc::clone(&shared);
        let sites = site_txs.clone();
        worker_handles.push(std::thread::spawn(move || {
            worker_thread(t, sys, sites, shared, cfg)
        }));
    }

    let outcomes: Vec<WorkerOutcome> = worker_handles
        .into_iter()
        .map(|h| h.join().expect("worker thread panicked"))
        .collect();

    for tx in &site_txs {
        let _ = tx.send(SiteMsg::Shutdown);
    }
    for h in site_handles {
        let _ = h.join();
    }

    let committed_attempt: Vec<Option<u32>> =
        outcomes.iter().map(|o| o.committed_attempt).collect();
    let failed: Vec<TxnId> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.committed_attempt.is_none())
        .map(|(i, _)| TxnId::from_index(i))
        .collect();
    let history = shared.lock();
    let serializable = if failed.is_empty() {
        history.audit(&sys, &committed_attempt).ok()
    } else {
        None
    };

    ThreadedReport {
        committed: outcomes
            .iter()
            .filter(|o| o.committed_attempt.is_some())
            .count(),
        aborted_attempts: outcomes.iter().map(|o| o.aborted as usize).sum(),
        failed,
        serializable,
        history_len: history.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddlf_model::{Database, Op, Transaction};

    fn quick_cfg() -> ThreadedConfig {
        ThreadedConfig {
            lock_timeout: Duration::from_millis(20),
            max_attempts: 500,
            work: Duration::from_micros(50),
            backoff: Duration::from_millis(1),
            seed: 7,
        }
    }

    #[test]
    fn same_order_pair_commits_without_aborts_needed() {
        let db = Database::one_entity_per_site(2);
        let ops = [
            Op::lock(EntityId(0)),
            Op::lock(EntityId(1)),
            Op::unlock(EntityId(0)),
            Op::unlock(EntityId(1)),
        ];
        let t1 = Transaction::from_total_order("T1", &ops, &db).unwrap();
        let t2 = Transaction::from_total_order("T2", &ops, &db).unwrap();
        let sys = TransactionSystem::new(db, vec![t1, t2]).unwrap();
        let r = run_threaded(&sys, quick_cfg());
        assert_eq!(r.committed, 2, "{r:?}");
        assert_eq!(r.serializable, Some(true));
    }

    #[test]
    fn opposite_order_pair_commits_via_timeouts() {
        let db = Database::one_entity_per_site(2);
        let (x, y) = (EntityId(0), EntityId(1));
        let t1 = Transaction::from_total_order(
            "T1",
            &[Op::lock(x), Op::lock(y), Op::unlock(x), Op::unlock(y)],
            &db,
        )
        .unwrap();
        let t2 = Transaction::from_total_order(
            "T2",
            &[Op::lock(y), Op::lock(x), Op::unlock(y), Op::unlock(x)],
            &db,
        )
        .unwrap();
        let sys = TransactionSystem::new(db, vec![t1, t2]).unwrap();
        let r = run_threaded(&sys, quick_cfg());
        assert_eq!(r.committed, 2, "{r:?}");
        assert_eq!(r.serializable, Some(true), "{r:?}");
    }

    #[test]
    fn many_transactions_on_shared_hotspot() {
        let db = Database::one_entity_per_site(3);
        let ops = [
            Op::lock(EntityId(0)),
            Op::lock(EntityId(1)),
            Op::lock(EntityId(2)),
            Op::unlock(EntityId(2)),
            Op::unlock(EntityId(1)),
            Op::unlock(EntityId(0)),
        ];
        let t = Transaction::from_total_order("T", &ops, &db).unwrap();
        let sys = TransactionSystem::copies(db, &t, 6).unwrap();
        let r = run_threaded(&sys, quick_cfg());
        assert_eq!(r.committed, 6, "{r:?}");
        assert_eq!(r.serializable, Some(true), "{r:?}");
    }
}
