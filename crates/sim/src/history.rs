//! Execution histories and the serializability audits over them.
//!
//! The simulator records the *effective* order of lock/unlock events as
//! decided by the sites. For committed transactions this trace is a
//! model [`Schedule`] audited with the paper's `D(S)` test — connecting
//! the runtime back to the static theory. Two audit paths exist:
//!
//! * the **incremental streaming audit**
//!   ([`ddlf_model::incremental::StreamingAuditor`], fed live through
//!   [`SharedHistory::with_streaming_audit`]) is the primary path: it
//!   maintains the verdict at amortized near-constant cost per event,
//!   so live reports and WAL recovery stay linear in history size;
//! * the **batch audit** ([`History::audit`]) re-validates and rebuilds
//!   the full conflict digraph from scratch — quadratic in committed
//!   instances — and is kept as the *oracle* the streaming verdict is
//!   proptested (and debug-asserted) against.

use crate::time::SimTime;
use ddlf_model::incremental::StreamingAuditor;
use ddlf_model::{GlobalNode, ModelError, NodeId, Schedule, TransactionSystem, TxnId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One recorded lock-manager event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryEvent {
    /// When the site made the operation effective.
    pub time: SimTime,
    /// The transaction.
    pub txn: TxnId,
    /// The attempt number the event belongs to.
    pub attempt: u32,
    /// The operation node within the transaction.
    pub node: NodeId,
}

/// The full event history of a run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct History {
    events: Vec<HistoryEvent>,
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event (times must be non-decreasing; the engine
    /// guarantees it).
    pub fn record(&mut self, ev: HistoryEvent) {
        debug_assert!(self
            .events
            .last()
            .map(|last| last.time <= ev.time)
            .unwrap_or(true));
        self.events.push(ev);
    }

    /// All events.
    pub fn events(&self) -> &[HistoryEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Projects the history onto the *committing* attempts: given the
    /// attempt number each transaction committed with, keeps only that
    /// attempt's events, in time order, as a model [`Schedule`].
    ///
    /// Events of aborted attempts carry no information flow in the pure
    /// locking model (no action was made durable), so excluding them
    /// preserves the conflict structure of the committed execution.
    ///
    /// This materialized projection backs the **batch** audit path; the
    /// primary (streaming) path never materializes it — a
    /// [`StreamingAuditor`] performs the same projection online by
    /// buffering events per attempt until the commit/abort decision.
    pub fn committed_schedule(&self, committed_attempt: &[Option<u32>]) -> Schedule {
        let steps = self
            .events
            .iter()
            .filter(|e| committed_attempt[e.txn.index()] == Some(e.attempt))
            .map(|e| GlobalNode::new(e.txn, e.node))
            .collect();
        Schedule::from_steps(steps)
    }

    /// The **batch** `D(S)` audit: validates the committed schedule step
    /// by step and rebuilds the full conflict digraph from scratch.
    /// Returns `Ok(serializable)` or the validation error (which would
    /// indicate an engine bug, not a workload property).
    ///
    /// This is `Θ(instances²)` (the full `D(S)` carries an arc per
    /// ordered locker pair) and is **no longer the primary path**: the
    /// engine and `wal::recover` maintain the verdict incrementally via
    /// [`StreamingAuditor`] at amortized near-constant cost per event.
    /// The batch form stays as the independent *oracle* — proptests
    /// drive random certified and wait-die histories through both and
    /// assert verdict equality, and debug builds cross-check every
    /// engine run.
    pub fn audit(
        &self,
        sys: &TransactionSystem,
        committed_attempt: &[Option<u32>],
    ) -> Result<bool, ModelError> {
        let sched = self.committed_schedule(committed_attempt);
        let v = sched.validate(sys)?;
        Ok(sched.conflict_digraph(sys, &v).is_acyclic())
    }
}

/// A thread-shared [`History`] with logical timestamps.
///
/// Concurrent runtimes (the threaded simulator, the engine's worker
/// pool) append through [`record`](Self::record), which stamps each
/// event with the event count *inside* the history critical section —
/// the subtle part: deriving the timestamp outside the lock lets two
/// threads append out of timestamp order, violating
/// [`History::record`]'s monotonicity contract.
///
/// An optional **sink** observes every event from inside the same
/// critical section, so a durable copy (the engine's `history.wal`)
/// sees events in exactly timestamp order.
pub struct SharedHistory {
    history: Mutex<History>,
    sink: Option<EventSink>,
}

impl Default for SharedHistory {
    // Manual (not derived) so the mutex lands in the `history.shared`
    // lock-discipline class on every construction path.
    fn default() -> Self {
        Self {
            history: Mutex::new_named("history.shared", History::new()),
            sink: None,
        }
    }
}

/// The observer type [`SharedHistory::with_sink`] installs.
pub type EventSink = Box<dyn Fn(&HistoryEvent) + Send + Sync>;

impl std::fmt::Debug for SharedHistory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedHistory")
            .field("history", &self.history)
            .field("sink", &self.sink.as_ref().map(|_| "Fn(&HistoryEvent)"))
            .finish()
    }
}

impl SharedHistory {
    /// An empty shared history.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty shared history whose every recorded event is also handed
    /// to `sink`, inside the timestamp critical section (write-ahead
    /// logging hangs off this).
    pub fn with_sink(sink: EventSink) -> Self {
        Self {
            history: Mutex::new_named("history.shared", History::new()),
            sink: Some(sink),
        }
    }

    /// The **streaming-audit sink mode**: every recorded event is fed —
    /// inside the timestamp critical section, so the auditor sees
    /// exactly timestamp order — to `auditor` as instance
    /// `base + event.txn`, plus optionally to `extra` (the engine stacks
    /// its WAL sink here). The caller keeps the `Arc` to admit
    /// instances, report commit/abort decisions, and read the live
    /// verdict; `base` translates the run-local `TxnId`s into the
    /// auditor's global instance-id space (the WAL gid space when
    /// logging, 0 otherwise).
    pub fn with_streaming_audit(
        auditor: Arc<Mutex<StreamingAuditor>>,
        base: u32,
        extra: Option<EventSink>,
    ) -> Self {
        Self::with_sink(Box::new(move |ev: &HistoryEvent| {
            if let Some(extra) = &extra {
                extra(ev);
            }
            auditor.lock().event(base + ev.txn.0, ev.attempt, ev.node);
        }))
    }

    /// Appends an event stamped with the next logical time.
    pub fn record(&self, txn: TxnId, attempt: u32, node: NodeId) {
        let mut history = self.history.lock();
        let t = history.len() as u64;
        let ev = HistoryEvent {
            time: SimTime(t),
            txn,
            attempt,
            node,
        };
        if let Some(sink) = &self.sink {
            sink(&ev);
        }
        history.record(ev);
    }

    /// Appends a batch of events for one `(txn, attempt)` under a
    /// *single* timestamp critical section, stamping them with
    /// consecutive logical times (and feeding each to the sink, in
    /// order, from inside the lock). Equivalent to calling
    /// [`record`](Self::record) once per node back to back with no
    /// interleaving — callers batch events whose relative order against
    /// other transactions is already fixed (e.g. lock grants the caller
    /// still holds), amortizing the per-event lock acquisition.
    pub fn record_batch(&self, txn: TxnId, attempt: u32, nodes: &[NodeId]) {
        if nodes.is_empty() {
            return;
        }
        let mut history = self.history.lock();
        for &node in nodes {
            let t = history.len() as u64;
            let ev = HistoryEvent {
                time: SimTime(t),
                txn,
                attempt,
                node,
            };
            if let Some(sink) = &self.sink {
                sink(&ev);
            }
            history.record(ev);
        }
    }

    /// Locks and exposes the history (audits, length checks).
    pub fn lock(&self) -> parking_lot::MutexGuard<'_, History> {
        self.history.lock()
    }

    /// Consumes the wrapper, returning the recorded history.
    pub fn into_inner(self) -> History {
        self.history.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddlf_model::{Database, EntityId, Op, Transaction};

    fn sys() -> TransactionSystem {
        let db = Database::one_entity_per_site(1);
        let t = Transaction::from_total_order(
            "T",
            &[Op::lock(EntityId(0)), Op::unlock(EntityId(0))],
            &db,
        )
        .unwrap();
        TransactionSystem::new(db, vec![t.clone(), t.with_name("T2")]).unwrap()
    }

    #[test]
    fn committed_projection_filters_attempts() {
        let sys = sys();
        let mut h = History::new();
        // T0 attempt 0 aborted after locking; attempt 1 commits; T1
        // commits attempt 0 in between.
        h.record(HistoryEvent {
            time: SimTime(1),
            txn: TxnId(0),
            attempt: 0,
            node: NodeId(0),
        });
        h.record(HistoryEvent {
            time: SimTime(2),
            txn: TxnId(0),
            attempt: 0,
            node: NodeId(1),
        });
        h.record(HistoryEvent {
            time: SimTime(3),
            txn: TxnId(1),
            attempt: 0,
            node: NodeId(0),
        });
        h.record(HistoryEvent {
            time: SimTime(4),
            txn: TxnId(1),
            attempt: 0,
            node: NodeId(1),
        });
        h.record(HistoryEvent {
            time: SimTime(5),
            txn: TxnId(0),
            attempt: 1,
            node: NodeId(0),
        });
        h.record(HistoryEvent {
            time: SimTime(6),
            txn: TxnId(0),
            attempt: 1,
            node: NodeId(1),
        });
        let committed = vec![Some(1), Some(0)];
        let sched = h.committed_schedule(&committed);
        assert_eq!(sched.len(), 4);
        assert!(h.audit(&sys, &committed).unwrap());
    }

    #[test]
    fn empty_history_audits_fine() {
        let sys = sys();
        let h = History::new();
        assert!(h.audit(&sys, &[None, None]).unwrap());
        assert!(h.is_empty());
    }

    #[test]
    fn streaming_audit_sink_matches_batch_audit() {
        let sys = sys();
        let auditor = Arc::new(Mutex::new(StreamingAuditor::new(&sys)));
        {
            let mut a = auditor.lock();
            a.admit(0, TxnId(0));
            a.admit(1, TxnId(1));
        }
        let shared = SharedHistory::with_streaming_audit(Arc::clone(&auditor), 0, None);
        // T0 attempt 0 dies after locking; attempt 1 commits; T1 commits.
        shared.record(TxnId(0), 0, NodeId(0));
        shared.record(TxnId(1), 0, NodeId(0));
        shared.record(TxnId(1), 0, NodeId(1));
        shared.record(TxnId(0), 1, NodeId(0));
        shared.record(TxnId(0), 1, NodeId(1));
        let streaming = {
            let mut a = auditor.lock();
            a.abort(0, 0);
            a.commit(0, 1);
            a.commit(1, 0);
            a.seal()
        };
        // Attempt 0 of T0 locked e0 and never unlocked before T1's lock,
        // but that attempt *aborted*, so the committed projection is
        // clean — and the batch oracle agrees.
        let history = shared.into_inner();
        let committed = vec![Some(1), Some(0)];
        assert_eq!(streaming, history.audit(&sys, &committed).ok());
        assert_eq!(streaming, Some(true));
    }

    #[test]
    fn record_batch_matches_back_to_back_records() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let shared = SharedHistory::with_sink(Box::new(move |ev: &HistoryEvent| {
            seen2.lock().push(*ev);
        }));
        shared.record(TxnId(1), 0, NodeId(7));
        shared.record_batch(TxnId(0), 2, &[NodeId(0), NodeId(1), NodeId(2)]);
        shared.record_batch(TxnId(0), 2, &[]);
        let history = shared.into_inner();
        assert_eq!(history.len(), 4);
        let times: Vec<u64> = history.events().iter().map(|e| e.time.0).collect();
        assert_eq!(times, vec![0, 1, 2, 3]);
        assert_eq!(
            history.events()[1..]
                .iter()
                .map(|e| (e.txn, e.attempt, e.node))
                .collect::<Vec<_>>(),
            vec![
                (TxnId(0), 2, NodeId(0)),
                (TxnId(0), 2, NodeId(1)),
                (TxnId(0), 2, NodeId(2)),
            ]
        );
        // The sink saw every batched event, in timestamp order, from
        // inside the critical section.
        assert_eq!(&*seen.lock(), history.events());
    }

    #[test]
    fn sink_sees_events_in_timestamp_order_under_threads() {
        use std::sync::Arc;
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let shared = Arc::new(SharedHistory::with_sink(Box::new(move |ev| {
            seen2.lock().push(ev.time);
        })));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for a in 0..100 {
                        shared.record(TxnId(t), a, NodeId(0));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let seen = seen.lock();
        assert_eq!(seen.len(), 400);
        assert!(
            seen.windows(2).all(|w| w[0] < w[1]),
            "sink order = time order"
        );
    }

    #[test]
    fn shared_history_timestamps_monotone_under_threads() {
        use std::sync::Arc;
        let shared = Arc::new(SharedHistory::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for a in 0..200 {
                        shared.record(TxnId(t), a, NodeId(0));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let history = Arc::try_unwrap(shared).unwrap().into_inner();
        assert_eq!(history.len(), 800);
        let times: Vec<_> = history.events().iter().map(|e| e.time).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }
}
