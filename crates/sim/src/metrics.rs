//! Run metrics and reports.

use crate::time::SimTime;
use ddlf_model::TxnId;
use serde::{Deserialize, Serialize};

/// Counters and outcomes of one simulated run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimReport {
    /// Transactions that ran to commit.
    pub committed: usize,
    /// Aborted attempts (restarts) across all transactions.
    pub aborted_attempts: usize,
    /// Deadlock cycles resolved by the detector.
    pub deadlocks_detected: usize,
    /// Holders aborted by wound-wait.
    pub wounds: usize,
    /// Requesters aborted by wait-die.
    pub dies: usize,
    /// Network messages delivered. **Sim-only**: counted by the
    /// discrete-event simulator's message fabric (`des.rs`); the real
    /// engine has no message fabric — its shards are mutexes, not
    /// mailboxes — so engine-derived reports leave this 0. Engine-side
    /// observability lives in `ddlf-telemetry` (phase histograms, the
    /// `wal_bytes` gauge) instead.
    pub messages: u64,
    /// Simulated completion (or quiescence) time.
    pub end_time: SimTime,
    /// Transactions still unfinished at quiescence — nonempty means the
    /// run deadlocked (under `Nothing`) or gave up (attempt limit).
    pub stalled: Vec<TxnId>,
    /// Post-hoc `D(S)` audit of the committed schedule; `None` when not
    /// all transactions committed.
    pub serializable: Option<bool>,
    /// Number of history events recorded.
    pub history_len: usize,
    /// Events popped off the simulator's event queue. **Sim-only** like
    /// [`SimReport::messages`]: the engine executes on real threads with
    /// no event loop, so this stays 0 on the engine path; the engine's
    /// equivalent counters are `Report::history_len` and the
    /// `ddlf-telemetry` phase histogram counts.
    pub events_processed: u64,
}

impl SimReport {
    /// Whether every transaction committed.
    pub fn all_committed(&self, total: usize) -> bool {
        self.committed == total && self.stalled.is_empty()
    }

    /// Committed transactions per simulated second.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.end_time.micros() == 0 {
            return 0.0;
        }
        self.committed as f64 / (self.end_time.micros() as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_computation() {
        let r = SimReport {
            committed: 10,
            end_time: SimTime::from_micros(2_000_000),
            ..Default::default()
        };
        assert!((r.throughput_per_sec() - 5.0).abs() < 1e-9);
        assert!(r.all_committed(10));
        assert!(!r.all_committed(11));
    }

    #[test]
    fn zero_time_throughput_is_zero() {
        let r = SimReport::default();
        assert_eq!(r.throughput_per_sec(), 0.0);
    }
}
