//! # ddlf-sim — the distributed-database runtime substrate
//!
//! Wolfson & Yannakakis analyze locked transactions *statically*; this
//! crate supplies the distributed database those transactions would run
//! on, so the paper's guarantees can be observed (and their absence
//! punished) at runtime:
//!
//! * [`des`] — a deterministic discrete-event simulator: sites with
//!   FIFO exclusive lock tables, message passing with seeded latency,
//!   coordinators walking transaction partial orders, and four deadlock
//!   policies (nothing / periodic detection / wound-wait / wait-die);
//! * [`threaded`] — the same protocol on real OS threads with crossbeam
//!   channels and lock-wait timeouts;
//! * [`history`] — every run records the effective lock/unlock order and
//!   replays its committed projection through the model's `D(S)`
//!   serializability audit;
//! * [`msg`] — the binary wire format messages travel in, plus the
//!   length-prefixed stream framing ([`msg::frame`]) that `ddlf-server`
//!   ships it over real TCP with;
//! * [`lockmgr`] — the per-site exclusive lock table.
//!
//! The headline property (experiment E9, validated by integration tests):
//! a system certified by `ddlf_core::certify_safe_and_deadlock_free` runs
//! to commit under the **`Nothing`** policy — no detector, no timeouts,
//! no aborts — and every run is serializable; uncertified systems stall
//! or burn aborts.

#![warn(missing_docs)]

pub mod des;
pub mod history;
pub mod lockmgr;
pub mod metrics;
pub mod msg;
pub mod threaded;
pub mod time;

pub use des::{run, DeadlockPolicy, SimConfig, Simulator};
pub use history::{EventSink, History, HistoryEvent, SharedHistory};
pub use lockmgr::{Acquire, LockTable};
pub use metrics::SimReport;
pub use msg::Message;
pub use threaded::{run_threaded, ThreadedConfig, ThreadedReport};
pub use time::{EventQueue, SimTime};
