//! Per-site lock manager: exclusive locks with FIFO wait queues.

use ddlf_model::{EntityId, TxnId};
use std::collections::{HashMap, VecDeque};

/// Outcome of a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquire {
    /// The lock was free (or re-requested by its holder) and is now held.
    Granted,
    /// Another transaction holds the lock; the request was queued.
    Queued {
        /// The current holder (prevention policies decide against it).
        holder: TxnId,
    },
}

/// The lock table of one site (or of the whole database in centralized
/// mode): exclusive locks, FIFO grant order.
#[derive(Debug, Clone, Default)]
pub struct LockTable {
    locks: HashMap<EntityId, LockState>,
}

#[derive(Debug, Clone)]
struct LockState {
    holder: TxnId,
    queue: VecDeque<TxnId>,
}

impl LockTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests the exclusive lock on `entity` for `txn`.
    pub fn acquire(&mut self, txn: TxnId, entity: EntityId) -> Acquire {
        match self.locks.get_mut(&entity) {
            None => {
                self.locks.insert(
                    entity,
                    LockState {
                        holder: txn,
                        queue: VecDeque::new(),
                    },
                );
                Acquire::Granted
            }
            Some(st) if st.holder == txn => Acquire::Granted,
            Some(st) => {
                if !st.queue.contains(&txn) {
                    st.queue.push_back(txn);
                }
                Acquire::Queued { holder: st.holder }
            }
        }
    }

    /// Releases `entity` if held by `txn` (granting the next waiter), or
    /// removes `txn` from the entity's queue. Returns the transaction now
    /// granted the lock, if any.
    pub fn release(&mut self, txn: TxnId, entity: EntityId) -> Option<TxnId> {
        let st = self.locks.get_mut(&entity)?;
        if st.holder == txn {
            if let Some(next) = st.queue.pop_front() {
                st.holder = next;
                Some(next)
            } else {
                self.locks.remove(&entity);
                None
            }
        } else {
            st.queue.retain(|&t| t != txn);
            None
        }
    }

    /// Drops every hold and queued request of `txn` (abort path). Returns
    /// the `(entity, granted)` pairs for waiters promoted to holders.
    pub fn purge(&mut self, txn: TxnId) -> Vec<(EntityId, TxnId)> {
        let entities: Vec<EntityId> = self.locks.keys().copied().collect();
        let mut grants = Vec::new();
        for e in entities {
            if let Some(st) = self.locks.get(&e) {
                if st.holder == txn {
                    if let Some(next) = self.release(txn, e) {
                        grants.push((e, next));
                    }
                } else {
                    self.locks
                        .get_mut(&e)
                        .expect("present")
                        .queue
                        .retain(|&t| t != txn);
                }
            }
        }
        grants
    }

    /// The holder of `entity`, if locked.
    pub fn holder(&self, entity: EntityId) -> Option<TxnId> {
        self.locks.get(&entity).map(|s| s.holder)
    }

    /// The queued waiters on `entity`, in grant order.
    pub fn waiters(&self, entity: EntityId) -> Vec<TxnId> {
        self.locks
            .get(&entity)
            .map(|s| s.queue.iter().copied().collect())
            .unwrap_or_default()
    }

    /// All `(waiter, holder)` wait-for pairs in this table — the edges of
    /// the classic wait-for graph.
    pub fn wait_for_edges(&self) -> Vec<(TxnId, TxnId)> {
        let mut out = Vec::new();
        for st in self.locks.values() {
            for &w in &st.queue {
                out.push((w, st.holder));
            }
        }
        out
    }

    /// Entities currently held by `txn`.
    pub fn held_by(&self, txn: TxnId) -> Vec<EntityId> {
        let mut v: Vec<EntityId> = self
            .locks
            .iter()
            .filter(|(_, s)| s.holder == txn)
            .map(|(&e, _)| e)
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: TxnId = TxnId(0);
    const T1: TxnId = TxnId(1);
    const T2: TxnId = TxnId(2);
    const X: EntityId = EntityId(0);
    const Y: EntityId = EntityId(1);

    #[test]
    fn grant_queue_release_cycle() {
        let mut lt = LockTable::new();
        assert_eq!(lt.acquire(T0, X), Acquire::Granted);
        assert_eq!(lt.acquire(T1, X), Acquire::Queued { holder: T0 });
        assert_eq!(lt.acquire(T2, X), Acquire::Queued { holder: T0 });
        assert_eq!(lt.holder(X), Some(T0));
        assert_eq!(lt.waiters(X), vec![T1, T2]);
        // FIFO grant.
        assert_eq!(lt.release(T0, X), Some(T1));
        assert_eq!(lt.holder(X), Some(T1));
        assert_eq!(lt.release(T1, X), Some(T2));
        assert_eq!(lt.release(T2, X), None);
        assert_eq!(lt.holder(X), None);
    }

    #[test]
    fn reacquire_by_holder_is_granted() {
        let mut lt = LockTable::new();
        lt.acquire(T0, X);
        assert_eq!(lt.acquire(T0, X), Acquire::Granted);
    }

    #[test]
    fn duplicate_queue_entries_suppressed() {
        let mut lt = LockTable::new();
        lt.acquire(T0, X);
        lt.acquire(T1, X);
        lt.acquire(T1, X);
        assert_eq!(lt.waiters(X), vec![T1]);
    }

    #[test]
    fn release_of_queued_request_cancels() {
        let mut lt = LockTable::new();
        lt.acquire(T0, X);
        lt.acquire(T1, X);
        assert_eq!(lt.release(T1, X), None);
        assert_eq!(lt.waiters(X), Vec::<TxnId>::new());
        assert_eq!(lt.holder(X), Some(T0));
    }

    #[test]
    fn purge_releases_everything() {
        let mut lt = LockTable::new();
        lt.acquire(T0, X);
        lt.acquire(T0, Y);
        lt.acquire(T1, X);
        lt.acquire(T1, Y);
        let grants = lt.purge(T0);
        assert_eq!(grants.len(), 2);
        assert!(grants.contains(&(X, T1)) && grants.contains(&(Y, T1)));
        assert_eq!(lt.held_by(T0), vec![]);
        assert_eq!(lt.held_by(T1), vec![X, Y]);
    }

    #[test]
    fn purge_removes_queued_requests_too() {
        let mut lt = LockTable::new();
        lt.acquire(T0, X);
        lt.acquire(T1, X);
        assert!(lt.purge(T1).is_empty());
        assert!(lt.waiters(X).is_empty());
    }

    #[test]
    fn wait_for_edges_reported() {
        let mut lt = LockTable::new();
        lt.acquire(T0, X);
        lt.acquire(T1, X);
        lt.acquire(T1, Y);
        lt.acquire(T0, Y);
        let mut edges = lt.wait_for_edges();
        edges.sort();
        assert_eq!(edges, vec![(T0, T1), (T1, T0)]);
    }
}
