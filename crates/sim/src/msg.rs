//! Network messages between transaction coordinators and sites, with a
//! compact binary wire encoding.
//!
//! The simulator routes every cross-site interaction through these
//! messages so that the unit of concurrency is exactly what a distributed
//! database would ship over the network; the `bytes` encoding keeps the
//! message layer honest (sites only ever see the encoded form).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use ddlf_model::{EntityId, TxnId};
use serde::{Deserialize, Serialize};

/// A message on the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Message {
    /// Coordinator → site: request the exclusive lock on `entity`.
    LockReq {
        /// Requesting transaction.
        txn: TxnId,
        /// The transaction's attempt number (messages from aborted
        /// attempts are discarded by the receiver).
        attempt: u32,
        /// Requested entity.
        entity: EntityId,
    },
    /// Site → coordinator: the lock was granted.
    LockGrant {
        /// Transaction being granted.
        txn: TxnId,
        /// Attempt the grant belongs to.
        attempt: u32,
        /// Granted entity.
        entity: EntityId,
    },
    /// Coordinator → site: release a held lock, or cancel a queued
    /// request.
    Release {
        /// Releasing transaction.
        txn: TxnId,
        /// Released entity.
        entity: EntityId,
    },
    /// Site → coordinator: abort order produced by a prevention policy
    /// (wound-wait) or the detector.
    AbortOrder {
        /// The victim transaction.
        victim: TxnId,
    },
}

const TAG_LOCK_REQ: u8 = 1;
const TAG_LOCK_GRANT: u8 = 2;
const TAG_RELEASE: u8 = 3;
const TAG_ABORT: u8 = 4;

impl Message {
    /// Encodes to the wire format:
    /// a 1-byte tag followed by little-endian `u32` fields.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(13);
        match *self {
            Message::LockReq {
                txn,
                attempt,
                entity,
            } => {
                b.put_u8(TAG_LOCK_REQ);
                b.put_u32_le(txn.0);
                b.put_u32_le(attempt);
                b.put_u32_le(entity.0);
            }
            Message::LockGrant {
                txn,
                attempt,
                entity,
            } => {
                b.put_u8(TAG_LOCK_GRANT);
                b.put_u32_le(txn.0);
                b.put_u32_le(attempt);
                b.put_u32_le(entity.0);
            }
            Message::Release { txn, entity } => {
                b.put_u8(TAG_RELEASE);
                b.put_u32_le(txn.0);
                b.put_u32_le(entity.0);
            }
            Message::AbortOrder { victim } => {
                b.put_u8(TAG_ABORT);
                b.put_u32_le(victim.0);
            }
        }
        b.freeze()
    }

    /// Decodes from the wire format. Returns `None` on malformed input.
    pub fn decode(mut buf: Bytes) -> Option<Message> {
        if buf.remaining() < 1 {
            return None;
        }
        let tag = buf.get_u8();
        let need = match tag {
            TAG_LOCK_REQ | TAG_LOCK_GRANT => 12,
            TAG_RELEASE => 8,
            TAG_ABORT => 4,
            _ => return None,
        };
        if buf.remaining() < need {
            return None;
        }
        Some(match tag {
            TAG_LOCK_REQ => Message::LockReq {
                txn: TxnId(buf.get_u32_le()),
                attempt: buf.get_u32_le(),
                entity: EntityId(buf.get_u32_le()),
            },
            TAG_LOCK_GRANT => Message::LockGrant {
                txn: TxnId(buf.get_u32_le()),
                attempt: buf.get_u32_le(),
                entity: EntityId(buf.get_u32_le()),
            },
            TAG_RELEASE => Message::Release {
                txn: TxnId(buf.get_u32_le()),
                entity: EntityId(buf.get_u32_le()),
            },
            TAG_ABORT => Message::AbortOrder {
                victim: TxnId(buf.get_u32_le()),
            },
            _ => unreachable!("tag validated above"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        let msgs = [
            Message::LockReq {
                txn: TxnId(3),
                attempt: 7,
                entity: EntityId(9),
            },
            Message::LockGrant {
                txn: TxnId(0),
                attempt: 0,
                entity: EntityId(u32::MAX),
            },
            Message::Release {
                txn: TxnId(1),
                entity: EntityId(2),
            },
            Message::AbortOrder { victim: TxnId(5) },
        ];
        for m in msgs {
            let enc = m.encode();
            assert_eq!(Message::decode(enc), Some(m));
        }
    }

    #[test]
    fn malformed_rejected() {
        assert_eq!(Message::decode(Bytes::new()), None);
        assert_eq!(Message::decode(Bytes::from_static(&[99])), None);
        assert_eq!(Message::decode(Bytes::from_static(&[1, 0, 0])), None);
    }

    #[test]
    fn encoding_is_compact() {
        let m = Message::LockReq {
            txn: TxnId(1),
            attempt: 2,
            entity: EntityId(3),
        };
        assert_eq!(m.encode().len(), 13);
        assert_eq!(
            Message::AbortOrder { victim: TxnId(0) }.encode().len(),
            5
        );
    }
}
