//! Network messages between transaction coordinators and sites, with a
//! compact binary wire encoding.
//!
//! The simulator routes every cross-site interaction through these
//! messages so that the unit of concurrency is exactly what a distributed
//! database would ship over the network; the `bytes` encoding keeps the
//! message layer honest (sites only ever see the encoded form).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use ddlf_model::{EntityId, TxnId};
use serde::{Deserialize, Serialize};

pub mod codec {
    //! Checked binary-codec primitives shared by every consumer of the
    //! `ddlf_sim::msg` conventions (1-byte tags, little-endian
    //! fixed-width integers, length-prefixed strings/byte vectors):
    //! the wire protocol in `ddlf-server` and the WAL record format in
    //! `ddlf-engine`. One implementation means one place to harden —
    //! every reader bounds-checks before consuming, so a hostile or
    //! truncated buffer yields `None`, never a panic or a misread.

    use bytes::{Buf, BufMut, Bytes, BytesMut};

    /// Reads one byte, if present.
    pub fn get_u8(b: &mut Bytes) -> Option<u8> {
        (b.remaining() >= 1).then(|| Buf::get_u8(b))
    }

    /// Reads a little-endian `u32`, if present.
    pub fn get_u32(b: &mut Bytes) -> Option<u32> {
        (b.remaining() >= 4).then(|| Buf::get_u32_le(b))
    }

    /// Reads a little-endian `u64`, if present.
    pub fn get_u64(b: &mut Bytes) -> Option<u64> {
        (b.remaining() >= 8).then(|| Buf::get_u64_le(b))
    }

    /// Reads a `0`/`1` boolean; any other byte is malformed.
    pub fn get_bool(b: &mut Bytes) -> Option<bool> {
        match get_u8(b)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// Reads a `u32`-length-prefixed byte vector, if fully present.
    pub fn get_bytes(b: &mut Bytes) -> Option<Vec<u8>> {
        let len = get_u32(b)? as usize;
        if b.remaining() < len {
            return None;
        }
        let out = b.chunk()[..len].to_vec();
        b.advance(len);
        Some(out)
    }

    /// Writes a `u32`-length-prefixed byte vector.
    ///
    /// # Panics
    /// Panics if `bytes` exceeds `u32::MAX` (nothing that large fits a
    /// frame anyway).
    pub fn put_bytes(b: &mut BytesMut, bytes: &[u8]) {
        b.put_u32_le(u32::try_from(bytes.len()).expect("byte vector fits a frame"));
        b.put_slice(bytes);
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn get_str(b: &mut Bytes) -> Option<String> {
        let bytes = get_bytes(b)?;
        String::from_utf8(bytes).ok()
    }

    /// Writes a `u32`-length-prefixed UTF-8 string.
    ///
    /// # Panics
    /// Panics if `s` exceeds `u32::MAX` bytes.
    pub fn put_str(b: &mut BytesMut, s: &str) {
        put_bytes(b, s.as_bytes());
    }

    /// `Some(v)` iff the buffer was fully consumed — decoded messages
    /// with trailing bytes reject.
    pub fn finished<T>(b: &Bytes, v: T) -> Option<T> {
        b.is_empty().then_some(v)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn primitives_roundtrip_and_reject_short_buffers() {
            let mut b = BytesMut::new();
            b.put_u8(7);
            b.put_u32_le(9);
            b.put_u64_le(u64::MAX);
            put_bytes(&mut b, &[1, 2, 3]);
            put_str(&mut b, "héllo");
            let mut r = b.freeze();
            assert_eq!(get_u8(&mut r), Some(7));
            assert_eq!(get_u32(&mut r), Some(9));
            assert_eq!(get_u64(&mut r), Some(u64::MAX));
            assert_eq!(get_bytes(&mut r), Some(vec![1, 2, 3]));
            assert_eq!(get_str(&mut r).as_deref(), Some("héllo"));
            assert_eq!(finished(&r, ()), Some(()));

            let mut short: Bytes = {
                let mut b = BytesMut::new();
                b.put_u32_le(100); // promises 100 bytes, delivers none
                b.freeze()
            };
            assert_eq!(get_bytes(&mut short), None);
            assert_eq!(get_u64(&mut Bytes::new()), None);
            assert_eq!(get_bool(&mut Bytes::from_static(&[2])), None);
        }

        #[test]
        fn hostile_length_prefix_allocates_nothing() {
            // A length prefix of u32::MAX with a tiny payload must be
            // rejected by the bounds check before any allocation.
            let mut b = BytesMut::new();
            b.put_u32_le(u32::MAX);
            b.put_u8(1);
            let mut r = b.freeze();
            assert_eq!(get_bytes(&mut r), None);
        }
    }
}

pub mod frame {
    //! Length-prefixed framing for binary messages over byte streams.
    //!
    //! (Canonical system-wide description — this framing, the
    //! [`codec`](super::codec) conventions, and the WAL record grammar
    //! built on both — in `ARCHITECTURE.md` at the repository root.)
    //!
    //! The in-memory encodings in this module ([`Message`](super::Message),
    //! and the `ddlf-server` request/response protocol built on the same
    //! conventions) are self-describing only given their length, so a
    //! stream transport needs a frame boundary. The format is minimal and
    //! symmetric:
    //!
    //! ```text
    //!   ┌────────────────┬──────────────────────┐
    //!   │ u32 LE: length │ length payload bytes │
    //!   └────────────────┴──────────────────────┘
    //! ```
    //!
    //! The same framing carries byte *streams* beyond sockets: the
    //! `ddlf-server` wire protocol frames its requests/responses, and
    //! `ddlf-engine`'s write-ahead log files (`wal/commit.wal`,
    //! `wal/history.wal`, `wal/shard-<k>.wal`) are sequences of these
    //! frames, each payload one binary `WalRecord` — see the record
    //! grammar in `ddlf_engine::wal`'s module docs. For log files the
    //! error taxonomy below is what makes crash recovery clean: a torn
    //! final frame (`UnexpectedEof`) *is* the crash point — a torn
    //! append is always a prefix of a valid frame — distinguishable
    //! both from a complete log (`Ok(None)`) and from real corruption
    //! (`InvalidData`: a length prefix that was never validly written).
    //!
    //! [`write_frame`] prepends the prefix; [`read_frame`] strips it and
    //! distinguishes three stream conditions:
    //!
    //! * `Ok(Some(payload))` — one complete frame;
    //! * `Ok(None)` — clean EOF *between* frames (the peer closed after a
    //!   complete exchange);
    //! * `Err(UnexpectedEof)` — EOF *inside* a frame (a torn write), and
    //!   `Err(InvalidData)` — a length prefix above [`MAX_FRAME`]
    //!   (garbage or a hostile header; reading it would OOM the peer).

    use std::io::{self, Read, Write};

    /// Upper bound on a frame's payload length (16 MiB). A prefix above
    /// this is rejected as garbage before any payload allocation.
    pub const MAX_FRAME: usize = 16 << 20;

    /// Writes `payload` as one length-prefixed frame and flushes.
    ///
    /// Prefix and payload go out in a **single** write: two small writes
    /// would land in separate TCP segments, and the Nagle/delayed-ACK
    /// interaction then stalls every round-trip by tens of milliseconds.
    ///
    /// Errors with `InvalidData` when `payload` exceeds [`MAX_FRAME`]
    /// (the peer would reject it anyway), or with the underlying I/O
    /// error.
    pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "frame of {} bytes exceeds MAX_FRAME {MAX_FRAME}",
                    payload.len()
                ),
            ));
        }
        let len = u32::try_from(payload.len()).expect("MAX_FRAME fits u32");
        let mut framed = Vec::with_capacity(4 + payload.len());
        framed.extend_from_slice(&len.to_le_bytes());
        framed.extend_from_slice(payload);
        w.write_all(&framed)?;
        w.flush()
    }

    /// Reads one length-prefixed frame.
    ///
    /// Returns `Ok(None)` on clean EOF before any prefix byte;
    /// `Err(UnexpectedEof)` on EOF mid-prefix or mid-payload;
    /// `Err(InvalidData)` on a prefix above [`MAX_FRAME`].
    pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
        let mut prefix = [0u8; 4];
        // Hand-rolled first read so EOF-at-a-boundary is distinguishable
        // from EOF inside the prefix.
        let mut got = 0;
        while got < prefix.len() {
            match r.read(&mut prefix[got..])? {
                0 if got == 0 => return Ok(None),
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "EOF inside frame length prefix",
                    ))
                }
                n => got += n,
            }
        }
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds MAX_FRAME {MAX_FRAME}"),
            ));
        }
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload)?;
        Ok(Some(payload))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_frames_in_sequence() {
            let mut buf = Vec::new();
            write_frame(&mut buf, b"hello").unwrap();
            write_frame(&mut buf, b"").unwrap();
            write_frame(&mut buf, &[0xAB; 300]).unwrap();
            let mut r = buf.as_slice();
            assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
            assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
            assert_eq!(read_frame(&mut r).unwrap().unwrap(), vec![0xAB; 300]);
            assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
        }

        #[test]
        fn torn_frames_are_errors_not_eof() {
            let mut buf = Vec::new();
            write_frame(&mut buf, b"payload").unwrap();
            // EOF inside the payload.
            let mut r = &buf[..buf.len() - 2];
            assert_eq!(
                read_frame(&mut r).unwrap_err().kind(),
                std::io::ErrorKind::UnexpectedEof
            );
            // EOF inside the prefix itself.
            let mut r = &buf[..2];
            assert_eq!(
                read_frame(&mut r).unwrap_err().kind(),
                std::io::ErrorKind::UnexpectedEof
            );
        }

        #[test]
        fn hostile_length_prefix_rejected_before_allocation() {
            let mut r: &[u8] = &u32::MAX.to_le_bytes();
            assert_eq!(
                read_frame(&mut r).unwrap_err().kind(),
                std::io::ErrorKind::InvalidData
            );
            let mut w = Vec::new();
            assert_eq!(
                write_frame(&mut w, &vec![0u8; MAX_FRAME + 1])
                    .unwrap_err()
                    .kind(),
                std::io::ErrorKind::InvalidData
            );
        }
    }
}

/// A message on the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Message {
    /// Coordinator → site: request the exclusive lock on `entity`.
    LockReq {
        /// Requesting transaction.
        txn: TxnId,
        /// The transaction's attempt number (messages from aborted
        /// attempts are discarded by the receiver).
        attempt: u32,
        /// Requested entity.
        entity: EntityId,
    },
    /// Site → coordinator: the lock was granted.
    LockGrant {
        /// Transaction being granted.
        txn: TxnId,
        /// Attempt the grant belongs to.
        attempt: u32,
        /// Granted entity.
        entity: EntityId,
    },
    /// Coordinator → site: release a held lock, or cancel a queued
    /// request.
    Release {
        /// Releasing transaction.
        txn: TxnId,
        /// Released entity.
        entity: EntityId,
    },
    /// Site → coordinator: abort order produced by a prevention policy
    /// (wound-wait) or the detector.
    AbortOrder {
        /// The victim transaction.
        victim: TxnId,
    },
}

const TAG_LOCK_REQ: u8 = 1;
const TAG_LOCK_GRANT: u8 = 2;
const TAG_RELEASE: u8 = 3;
const TAG_ABORT: u8 = 4;

impl Message {
    /// Encodes to the wire format:
    /// a 1-byte tag followed by little-endian `u32` fields.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(13);
        match *self {
            Message::LockReq {
                txn,
                attempt,
                entity,
            } => {
                b.put_u8(TAG_LOCK_REQ);
                b.put_u32_le(txn.0);
                b.put_u32_le(attempt);
                b.put_u32_le(entity.0);
            }
            Message::LockGrant {
                txn,
                attempt,
                entity,
            } => {
                b.put_u8(TAG_LOCK_GRANT);
                b.put_u32_le(txn.0);
                b.put_u32_le(attempt);
                b.put_u32_le(entity.0);
            }
            Message::Release { txn, entity } => {
                b.put_u8(TAG_RELEASE);
                b.put_u32_le(txn.0);
                b.put_u32_le(entity.0);
            }
            Message::AbortOrder { victim } => {
                b.put_u8(TAG_ABORT);
                b.put_u32_le(victim.0);
            }
        }
        b.freeze()
    }

    /// Decodes from the wire format. Returns `None` on malformed input.
    pub fn decode(mut buf: Bytes) -> Option<Message> {
        if buf.remaining() < 1 {
            return None;
        }
        let tag = buf.get_u8();
        let need = match tag {
            TAG_LOCK_REQ | TAG_LOCK_GRANT => 12,
            TAG_RELEASE => 8,
            TAG_ABORT => 4,
            _ => return None,
        };
        if buf.remaining() < need {
            return None;
        }
        Some(match tag {
            TAG_LOCK_REQ => Message::LockReq {
                txn: TxnId(buf.get_u32_le()),
                attempt: buf.get_u32_le(),
                entity: EntityId(buf.get_u32_le()),
            },
            TAG_LOCK_GRANT => Message::LockGrant {
                txn: TxnId(buf.get_u32_le()),
                attempt: buf.get_u32_le(),
                entity: EntityId(buf.get_u32_le()),
            },
            TAG_RELEASE => Message::Release {
                txn: TxnId(buf.get_u32_le()),
                entity: EntityId(buf.get_u32_le()),
            },
            TAG_ABORT => Message::AbortOrder {
                victim: TxnId(buf.get_u32_le()),
            },
            _ => unreachable!("tag validated above"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        let msgs = [
            Message::LockReq {
                txn: TxnId(3),
                attempt: 7,
                entity: EntityId(9),
            },
            Message::LockGrant {
                txn: TxnId(0),
                attempt: 0,
                entity: EntityId(u32::MAX),
            },
            Message::Release {
                txn: TxnId(1),
                entity: EntityId(2),
            },
            Message::AbortOrder { victim: TxnId(5) },
        ];
        for m in msgs {
            let enc = m.encode();
            assert_eq!(Message::decode(enc), Some(m));
        }
    }

    #[test]
    fn malformed_rejected() {
        assert_eq!(Message::decode(Bytes::new()), None);
        assert_eq!(Message::decode(Bytes::from_static(&[99])), None);
        assert_eq!(Message::decode(Bytes::from_static(&[1, 0, 0])), None);
    }

    #[test]
    fn encoding_is_compact() {
        let m = Message::LockReq {
            txn: TxnId(1),
            attempt: 2,
            entity: EntityId(3),
        };
        assert_eq!(m.encode().len(), 13);
        assert_eq!(Message::AbortOrder { victim: TxnId(0) }.encode().len(), 5);
    }
}
