//! Property tests for the log-bucketed histogram against a
//! sorted-vector oracle, plus merge-algebra and concurrency checks.

use ddlf_telemetry::{bucket_of, Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// The oracle: exact order statistic at quantile `q` over a sorted
/// sample vector, with the same rank convention the histogram uses
/// (rank = ⌈q·n⌉, clamped to [1, n]).
fn oracle_percentile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    /// Every reported percentile is ≥ the true order statistic and in
    /// the same bucket — i.e. within one bucket's relative error
    /// (≤ 25%, exact below 16).
    #[test]
    fn percentile_matches_oracle_within_one_bucket(
        mut values in prop::collection::vec(0u64..=u64::MAX / 2, 1..400),
        qpct in 1u64..=100,
    ) {
        let q = qpct as f64 / 100.0;
        let snap = snapshot_of(&values);
        values.sort_unstable();
        let truth = oracle_percentile(&values, q);
        let got = snap.percentile(q);
        prop_assert!(got >= truth, "histogram {got} below oracle {truth}");
        prop_assert_eq!(
            bucket_of(got), bucket_of(truth),
            "histogram {} left oracle {}'s bucket", got, truth
        );
        // Same-bucket implies the ≤25% relative error bound:
        prop_assert!(got - truth <= truth / 4, "{got} vs {truth}");
    }

    /// count / sum / max / mean are exact, not approximations.
    #[test]
    fn totals_are_exact(values in prop::collection::vec(0u64..=1u64 << 40, 1..200)) {
        let snap = snapshot_of(&values);
        let sum: u64 = values.iter().sum();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, sum);
        prop_assert_eq!(snap.max, *values.iter().max().unwrap());
        prop_assert_eq!(snap.mean(), sum / values.len() as u64);
    }

    /// Merge is associative and commutative, and (a ∪ b ∪ c) equals
    /// recording all three sample sets into a single histogram.
    #[test]
    fn merge_is_associative_and_lossless(
        a in prop::collection::vec(0u64..=1u64 << 48, 0..100),
        b in prop::collection::vec(0u64..=1u64 << 48, 0..100),
        c in prop::collection::vec(0u64..=1u64 << 48, 0..100),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        // (a + b) + c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a + (b + c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // b + a  ==  a + b
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        // Lossless versus one big histogram.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &snapshot_of(&all));
    }

    /// delta(later, earlier) recovers exactly the samples recorded in
    /// between (bucket counters are monotone).
    #[test]
    fn delta_recovers_the_window(
        before in prop::collection::vec(0u64..=1u64 << 32, 0..100),
        during in prop::collection::vec(0u64..=1u64 << 32, 0..100),
    ) {
        let h = Histogram::new();
        for &v in &before {
            h.record(v);
        }
        let t0 = h.snapshot();
        for &v in &during {
            h.record(v);
        }
        let d = h.snapshot().delta(&t0);
        let expected = snapshot_of(&during);
        prop_assert_eq!(d.count, expected.count);
        prop_assert_eq!(d.sum, expected.sum);
        // Bucket-wise equality via percentile spot checks (max differs
        // by design: delta keeps the cumulative high-water mark).
        if !during.is_empty() {
            let mut sorted = during.clone();
            sorted.sort_unstable();
            for q in [0.5, 0.95, 0.99] {
                let truth = oracle_percentile(&sorted, q);
                prop_assert_eq!(bucket_of(d.percentile(q)), bucket_of(truth));
            }
        }
    }
}

/// Concurrent recording from many threads loses no samples and agrees
/// with a single-threaded reference histogram over the same multiset.
#[test]
fn concurrent_recording_loses_nothing() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let shared = Histogram::new();
    let reference = Histogram::new();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let shared = &shared;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // Deterministic spread across many buckets.
                    shared.record((t * PER_THREAD + i) * 37 % 1_000_003);
                }
            });
        }
    });
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            reference.record((t * PER_THREAD + i) * 37 % 1_000_003);
        }
    }

    assert_eq!(shared.snapshot(), reference.snapshot());
    assert_eq!(shared.count(), THREADS * PER_THREAD);
}
