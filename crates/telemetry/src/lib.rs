//! # ddlf-telemetry — lock-free observability for the ddlf engine
//!
//! Latency histograms, lifecycle tracing, per-template counters, and
//! gauges for the distributed-locking engine. The crate sits below
//! every other workspace crate (no dependencies at all, not even
//! vendored ones) so the engine, WAL, store, server, and CLI can all
//! share one [`Telemetry`] handle.
//!
//! Three design rules, in priority order:
//!
//! 1. **Disabled means free.** [`Telemetry::disabled`] is an
//!    `Option::None` wrapper: every recording method is a branch on a
//!    niche-optimised `Option<Arc<_>>` and returns immediately —
//!    `Instant::now()` is never even called ([`Telemetry::timer`]
//!    returns `None`). Library users who don't opt in pay one
//!    predictable branch per instrumentation point.
//! 2. **Enabled hot path is lock-free.** Histogram recording, counter
//!    bumps, and gauge updates are relaxed atomic RMWs
//!    ([`Histogram::record`], [`TemplateTable`]). The only lock in the
//!    crate guards the *sampled* trace ring: unsampled instances never
//!    reach it, and the default sample rate is 0 (tracing off).
//! 3. **Aggregation is exact.** Snapshots merge by bucket addition and
//!    diff by bucket subtraction, so percentiles survive cross-worker,
//!    cross-run (`Report::absorb`), and cross-process aggregation
//!    without the "conservative worse-of" compromise the engine's old
//!    `LatencyStats` had to make.
//!
//! Where each phase timer starts and stops in the instance lifecycle,
//! how the trace sampler picks instances, and how the server's `Stats`
//! RPC reads all of this without pausing the engine is documented in
//! `ARCHITECTURE.md` (section "Telemetry dataflow") at the repo root.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod histogram;
mod trace;

pub use histogram::{
    bucket_ceil, bucket_floor, bucket_of, Histogram, HistogramSnapshot, BUCKET_COUNT,
};
pub use trace::{SpanEvent, SpanKind, TraceRing};

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
// Telemetry stays dependency-free (no parking_lot, so attaching it can
// never perturb the lock graph it helps diagnose); its two short
// critical sections leaf-lock by construction. lockdep: allow(std-sync)
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The instrumented phases of an instance's lifecycle, in the order
/// they occur. Each has its own [`Histogram`] of nanosecond timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Waiting on the admission gate's inflate slot.
    GateWait,
    /// Waiting for one entity lock (one sample per acquisition; 0 when
    /// granted immediately).
    LockWait,
    /// One full execution attempt, locks through last write.
    Execute,
    /// Rolling back one aborted attempt (wait-die undo).
    Undo,
    /// Appending one record to a WAL log file.
    WalAppend,
    /// An `fsync` (data sync) of WAL log files.
    Fsync,
    /// Commit: store publish + durable commit record + auditor merge.
    Commit,
    /// One read-only snapshot scan over the lock-free version rings
    /// (registration through last entity read; no lock class, no WAL).
    SnapshotRead,
}

impl Phase {
    /// All phases, in lifecycle order. Index with `as usize`.
    pub const ALL: [Phase; 8] = [
        Phase::GateWait,
        Phase::LockWait,
        Phase::Execute,
        Phase::Undo,
        Phase::WalAppend,
        Phase::Fsync,
        Phase::Commit,
        Phase::SnapshotRead,
    ];

    /// Stable snake_case name used in JSON, Prometheus exposition, and
    /// the wire protocol.
    pub fn name(self) -> &'static str {
        match self {
            Phase::GateWait => "gate_wait",
            Phase::LockWait => "lock_wait",
            Phase::Execute => "execute",
            Phase::Undo => "undo",
            Phase::WalAppend => "wal_append",
            Phase::Fsync => "fsync",
            Phase::Commit => "commit",
            Phase::SnapshotRead => "snapshot_read",
        }
    }
}

/// Per-run snapshot of all eight phase histograms. This is what the
/// engine's `Report` carries in its `phases` field.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseSnapshot {
    histograms: [HistogramSnapshot; 8],
}

impl PhaseSnapshot {
    /// The snapshot for one phase.
    pub fn get(&self, phase: Phase) -> &HistogramSnapshot {
        &self.histograms[phase as usize]
    }

    /// Folds `other` in, phase by phase (exact; see
    /// [`HistogramSnapshot::merge`]).
    pub fn merge(&mut self, other: &PhaseSnapshot) {
        for (a, b) in self.histograms.iter_mut().zip(&other.histograms) {
            a.merge(b);
        }
    }

    /// Phase-wise difference against an earlier snapshot.
    pub fn delta(&self, earlier: &PhaseSnapshot) -> PhaseSnapshot {
        let mut out = PhaseSnapshot::default();
        for (i, h) in out.histograms.iter_mut().enumerate() {
            *h = self.histograms[i].delta(&earlier.histograms[i]);
        }
        out
    }

    /// Total samples across all phases (0 means telemetry was off).
    pub fn total_count(&self) -> u64 {
        self.histograms.iter().map(|h| h.count).sum()
    }
}

/// Outcome counters for one template, bumped with relaxed atomics.
#[derive(Debug, Default)]
struct TemplateCounters {
    committed: AtomicU64,
    aborted: AtomicU64,
    wounds: AtomicU64,
    dies: AtomicU64,
}

/// Per-template outcome counters, indexed by template position in the
/// registry. Installed by [`Telemetry::install_templates`]; workers
/// resolve the `Arc` once per run and bump pure atomics after.
#[derive(Debug, Default)]
pub struct TemplateTable {
    names: Vec<String>,
    counters: Vec<TemplateCounters>,
}

impl TemplateTable {
    fn new(names: &[String]) -> Self {
        Self {
            names: names.to_vec(),
            counters: names.iter().map(|_| TemplateCounters::default()).collect(),
        }
    }

    /// Records a commit for template `idx` (out of range is ignored).
    #[inline]
    pub fn commit(&self, idx: usize) {
        if let Some(c) = self.counters.get(idx) {
            c.committed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one aborted attempt for template `idx`.
    #[inline]
    pub fn abort(&self, idx: usize) {
        if let Some(c) = self.counters.get(idx) {
            c.aborted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a wound-wait wound for template `idx` (sim-only today;
    /// the engine's fallback is wait-die, so it never wounds).
    #[inline]
    pub fn wound(&self, idx: usize) {
        if let Some(c) = self.counters.get(idx) {
            c.wounds.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a wait-die death (requester self-abort) for template
    /// `idx`.
    #[inline]
    pub fn die(&self, idx: usize) {
        if let Some(c) = self.counters.get(idx) {
            c.dies.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn rows(&self) -> Vec<TemplateSnapshot> {
        self.names
            .iter()
            .zip(&self.counters)
            .map(|(name, c)| TemplateSnapshot {
                name: name.clone(),
                committed: c.committed.load(Ordering::Relaxed),
                aborted: c.aborted.load(Ordering::Relaxed),
                wounds: c.wounds.load(Ordering::Relaxed),
                dies: c.dies.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// Point-in-time counters for one template.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TemplateSnapshot {
    /// Template name as registered.
    pub name: String,
    /// Instances committed.
    pub committed: u64,
    /// Attempts aborted (each wait-die retry counts once).
    pub aborted: u64,
    /// Wound-wait wounds (sim-only; always 0 on the engine path).
    pub wounds: u64,
    /// Wait-die deaths.
    pub dies: u64,
}

/// Everything a scrape sees: uptime, gauges, phase histograms, and
/// per-template counters. Produced by [`Telemetry::snapshot`]; the
/// server's `Stats` RPC is a wire rendering of this struct.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Microseconds since the telemetry handle was created.
    pub uptime_us: u64,
    /// Instances currently admitted and executing.
    pub inflight: i64,
    /// Committed-transaction nodes in the streaming auditor's graph.
    pub auditor_nodes: u64,
    /// Conflict arcs in the streaming auditor's graph.
    pub auditor_arcs: u64,
    /// Bytes appended to WAL log files (payload + frame headers).
    pub wal_bytes: u64,
    /// Committed versions currently retained across all entity version
    /// chains (the multiversion store's memory footprint, in entries).
    pub chain_versions: u64,
    /// Length of the longest per-entity version chain.
    pub chain_max_len: u64,
    /// The snapshot low-watermark version-chain GC last truncated to
    /// (the min live read-only snapshot ts, or the commit clock when no
    /// reader was registered).
    pub chain_watermark: u64,
    /// Lifecycle events currently held in the trace ring.
    pub trace_captured: u64,
    /// Trace events evicted because the ring was full.
    pub trace_dropped: u64,
    /// Group-commit flush sizes: one sample per decision frame the
    /// group-commit leader writes, valued at the number of commit
    /// decisions in the frame. `count` = group flushes, `sum` = commits
    /// written through the group path, so `sum / count` is the mean
    /// group size and amortization is observable rather than inferred.
    pub group_size: HistogramSnapshot,
    /// All eight phase histograms (cumulative since handle creation).
    pub phases: PhaseSnapshot,
    /// Per-template outcome counters.
    pub templates: Vec<TemplateSnapshot>,
}

/// Knobs for [`Telemetry::new`].
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Record phase histograms, counters, and gauges.
    pub histograms: bool,
    /// Trace one instance in `trace_sample` (by global id); 0 disables
    /// tracing entirely.
    pub trace_sample: u32,
    /// Maximum lifecycle events held in the trace ring.
    pub trace_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            histograms: true,
            trace_sample: 0,
            trace_capacity: 65_536,
        }
    }
}

#[derive(Debug)]
struct Inner {
    cfg: TelemetryConfig,
    epoch: Instant,
    phases: [Histogram; 8],
    group_size: Histogram,
    templates: Mutex<Arc<TemplateTable>>,
    inflight: AtomicI64,
    auditor_nodes: AtomicU64,
    auditor_arcs: AtomicU64,
    wal_bytes: AtomicU64,
    chain_versions: AtomicU64,
    chain_max_len: AtomicU64,
    chain_watermark: AtomicU64,
    trace: TraceRing,
}

/// The shared observability handle threaded through `EngineConfig`,
/// the store's shards, and the WAL. Cloning is an `Arc` bump; a
/// disabled handle ([`Telemetry::disabled`], also `Default`) makes
/// every method a near-free early return.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// A no-op handle: records nothing, costs one branch per call.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A live handle with the given knobs. `histograms: false` with
    /// `trace_sample > 0` is allowed (trace-only).
    pub fn new(cfg: TelemetryConfig) -> Self {
        let trace_capacity = cfg.trace_capacity;
        Self {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                phases: std::array::from_fn(|_| Histogram::new()),
                group_size: Histogram::new(),
                templates: Mutex::new(Arc::new(TemplateTable::default())),
                inflight: AtomicI64::new(0),
                auditor_nodes: AtomicU64::new(0),
                auditor_arcs: AtomicU64::new(0),
                wal_bytes: AtomicU64::new(0),
                chain_versions: AtomicU64::new(0),
                chain_max_len: AtomicU64::new(0),
                chain_watermark: AtomicU64::new(0),
                trace: TraceRing::new(trace_capacity),
                cfg,
            })),
        }
    }

    /// Live handle with default knobs (histograms on, tracing off).
    pub fn enabled() -> Self {
        Self::new(TelemetryConfig::default())
    }

    /// Whether any recording can happen at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn hist(&self) -> Option<&Inner> {
        match &self.inner {
            Some(i) if i.cfg.histograms => Some(i),
            _ => None,
        }
    }

    /// Starts a phase timer: `Some(now)` when histograms are on, else
    /// `None` — so the disabled path never calls `Instant::now()`.
    /// Pair with [`record_since`](Self::record_since).
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        self.hist().map(|_| Instant::now())
    }

    /// Records the elapsed time of a [`timer`](Self::timer) into
    /// `phase`. A `None` timer is a no-op.
    #[inline]
    pub fn record_since(&self, phase: Phase, start: Option<Instant>) {
        if let (Some(i), Some(t0)) = (self.hist(), start) {
            i.phases[phase as usize].record(t0.elapsed().as_nanos() as u64);
        }
    }

    /// Records an externally measured duration into `phase`.
    #[inline]
    pub fn record(&self, phase: Phase, d: Duration) {
        if let Some(i) = self.hist() {
            i.phases[phase as usize].record(d.as_nanos() as u64);
        }
    }

    /// Installs (replaces) the per-template counter table for the
    /// currently registered system, resetting all counters.
    pub fn install_templates(&self, names: &[String]) {
        if let Some(i) = &self.inner {
            *i.templates.lock().expect("template table poisoned") =
                Arc::new(TemplateTable::new(names));
        }
    }

    /// The live counter table, resolved once per run so workers bump
    /// atomics without re-locking. `None` when disabled.
    pub fn template_table(&self) -> Option<Arc<TemplateTable>> {
        self.inner
            .as_ref()
            .map(|i| i.templates.lock().expect("template table poisoned").clone())
    }

    /// One more instance admitted.
    #[inline]
    pub fn inflight_inc(&self) {
        if let Some(i) = &self.inner {
            i.inflight.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One instance finished (committed or permanently failed).
    #[inline]
    pub fn inflight_dec(&self) {
        if let Some(i) = &self.inner {
            i.inflight.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Publishes the streaming auditor's current graph size.
    #[inline]
    pub fn set_auditor(&self, nodes: u64, arcs: u64) {
        if let Some(i) = &self.inner {
            i.auditor_nodes.store(nodes, Ordering::Relaxed);
            i.auditor_arcs.store(arcs, Ordering::Relaxed);
        }
    }

    /// Adds to the cumulative WAL byte counter.
    #[inline]
    pub fn add_wal_bytes(&self, n: u64) {
        if let Some(i) = &self.inner {
            i.wal_bytes.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Publishes the version-chain gauges: total retained committed
    /// versions, longest per-entity chain, and the low-watermark the
    /// last GC pass truncated against. Called by the store's commit
    /// publication / GC path.
    #[inline]
    pub fn set_chains(&self, versions: u64, max_len: u64, watermark: u64) {
        if let Some(i) = &self.inner {
            i.chain_versions.store(versions, Ordering::Relaxed);
            i.chain_max_len.store(max_len, Ordering::Relaxed);
            i.chain_watermark.store(watermark, Ordering::Relaxed);
        }
    }

    /// Records one group-commit flush of `n` commit decisions into the
    /// group-size histogram (see [`TelemetrySnapshot::group_size`]).
    #[inline]
    pub fn record_group_size(&self, n: u64) {
        if let Some(i) = self.hist() {
            i.group_size.record(n);
        }
    }

    /// Whether instance `gid` is trace-sampled. False when tracing is
    /// off; rate 1 samples everything. Callers cache this per instance.
    #[inline]
    pub fn sampled(&self, gid: u64) -> bool {
        match &self.inner {
            Some(i) => i.cfg.trace_sample != 0 && gid.is_multiple_of(u64::from(i.cfg.trace_sample)),
            None => false,
        }
    }

    /// Nanoseconds since this handle was created (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.epoch.elapsed().as_nanos() as u64)
            .unwrap_or(0)
    }

    /// Pushes one lifecycle event for a sampled instance. The caller
    /// checks [`sampled`](Self::sampled) first; this only guards
    /// against a disabled handle.
    #[inline]
    pub fn trace(&self, ev: SpanEvent) {
        if let Some(i) = &self.inner {
            i.trace.push(ev);
        }
    }

    /// The captured trace as JSON lines, oldest event first.
    pub fn dump_trace_jsonl(&self) -> String {
        self.inner
            .as_ref()
            .map(|i| i.trace.dump_jsonl())
            .unwrap_or_default()
    }

    /// The cumulative phase histograms. Cheap relaxed loads; used by
    /// the engine to compute per-run deltas.
    pub fn phase_snapshot(&self) -> PhaseSnapshot {
        let mut out = PhaseSnapshot::default();
        if let Some(i) = &self.inner {
            for (slot, h) in out.histograms.iter_mut().zip(&i.phases) {
                *slot = h.snapshot();
            }
        }
        out
    }

    /// A full scrape: gauges, phases, templates, trace stats. Reads
    /// only atomics plus two short mutexes (template table pointer,
    /// trace ring length) — never the engine lock, so a `Stats` RPC
    /// answers while a run is executing.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let Some(i) = &self.inner else {
            return TelemetrySnapshot::default();
        };
        TelemetrySnapshot {
            uptime_us: i.epoch.elapsed().as_micros() as u64,
            inflight: i.inflight.load(Ordering::Relaxed),
            auditor_nodes: i.auditor_nodes.load(Ordering::Relaxed),
            auditor_arcs: i.auditor_arcs.load(Ordering::Relaxed),
            wal_bytes: i.wal_bytes.load(Ordering::Relaxed),
            chain_versions: i.chain_versions.load(Ordering::Relaxed),
            chain_max_len: i.chain_max_len.load(Ordering::Relaxed),
            chain_watermark: i.chain_watermark.load(Ordering::Relaxed),
            trace_captured: i.trace.len() as u64,
            trace_dropped: i.trace.dropped(),
            group_size: i.group_size.snapshot(),
            phases: self.phase_snapshot(),
            templates: self.template_table().map(|t| t.rows()).unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        assert!(t.timer().is_none());
        t.record(Phase::Commit, Duration::from_micros(5));
        t.inflight_inc();
        t.add_wal_bytes(100);
        assert!(!t.sampled(0));
        let s = t.snapshot();
        assert_eq!(s, TelemetrySnapshot::default());
        assert_eq!(s.phases.total_count(), 0);
    }

    #[test]
    fn phases_record_and_delta() {
        let t = Telemetry::enabled();
        t.record(Phase::Commit, Duration::from_nanos(1000));
        let before = t.phase_snapshot();
        t.record(Phase::Commit, Duration::from_nanos(3000));
        t.record(Phase::LockWait, Duration::from_nanos(7));
        let run = t.phase_snapshot().delta(&before);
        assert_eq!(run.get(Phase::Commit).count, 1);
        assert_eq!(run.get(Phase::Commit).sum, 3000);
        assert_eq!(run.get(Phase::LockWait).count, 1);
        assert_eq!(run.get(Phase::LockWait).sum, 7);
        assert_eq!(run.get(Phase::Execute).count, 0);
        assert_eq!(run.total_count(), 2);
    }

    #[test]
    fn timer_pairs_with_record_since() {
        let t = Telemetry::enabled();
        let t0 = t.timer();
        assert!(t0.is_some());
        t.record_since(Phase::Execute, t0);
        assert_eq!(t.snapshot().phases.get(Phase::Execute).count, 1);
    }

    #[test]
    fn template_counters_round_trip() {
        let t = Telemetry::enabled();
        t.install_templates(&["transfer".into(), "audit".into()]);
        let table = t.template_table().unwrap();
        table.commit(0);
        table.commit(0);
        table.die(1);
        table.abort(1);
        table.commit(99); // out of range: ignored
        let rows = t.snapshot().templates;
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "transfer");
        assert_eq!(rows[0].committed, 2);
        assert_eq!(rows[1].dies, 1);
        assert_eq!(rows[1].aborted, 1);
        // Re-install resets.
        t.install_templates(&["transfer".into()]);
        assert_eq!(t.snapshot().templates[0].committed, 0);
    }

    #[test]
    fn sampling_rate_selects_every_nth_gid() {
        let t = Telemetry::new(TelemetryConfig {
            trace_sample: 4,
            ..Default::default()
        });
        let picked: Vec<u64> = (0..10).filter(|&g| t.sampled(g)).collect();
        assert_eq!(picked, vec![0, 4, 8]);
        let all = Telemetry::new(TelemetryConfig {
            trace_sample: 1,
            ..Default::default()
        });
        assert!((0..10).all(|g| all.sampled(g)));
    }

    #[test]
    fn gauges_show_up_in_snapshot() {
        let t = Telemetry::enabled();
        t.inflight_inc();
        t.inflight_inc();
        t.inflight_dec();
        t.set_auditor(12, 34);
        t.add_wal_bytes(100);
        t.add_wal_bytes(28);
        let s = t.snapshot();
        assert_eq!(s.inflight, 1);
        assert_eq!(s.auditor_nodes, 12);
        assert_eq!(s.auditor_arcs, 34);
        assert_eq!(s.wal_bytes, 128);
    }

    #[test]
    fn chain_gauges_show_up_in_snapshot() {
        let t = Telemetry::enabled();
        t.set_chains(40, 7, 33);
        let s = t.snapshot();
        assert_eq!(s.chain_versions, 40);
        assert_eq!(s.chain_max_len, 7);
        assert_eq!(s.chain_watermark, 33);
        // Gauges, not counters: a later publication overwrites.
        t.set_chains(12, 3, 38);
        assert_eq!(t.snapshot().chain_versions, 12);
        // Disabled handle records nothing.
        let off = Telemetry::disabled();
        off.set_chains(1, 1, 1);
        assert_eq!(off.snapshot().chain_versions, 0);
    }

    #[test]
    fn snapshot_read_phase_is_last_and_named() {
        assert_eq!(Phase::ALL.len(), 8);
        assert_eq!(Phase::ALL[7], Phase::SnapshotRead);
        assert_eq!(Phase::SnapshotRead.name(), "snapshot_read");
        let t = Telemetry::enabled();
        t.record(Phase::SnapshotRead, Duration::from_nanos(42));
        assert_eq!(t.snapshot().phases.get(Phase::SnapshotRead).count, 1);
    }

    #[test]
    fn group_size_histogram_counts_flushes_and_decisions() {
        let t = Telemetry::enabled();
        t.record_group_size(1);
        t.record_group_size(8);
        t.record_group_size(3);
        let g = t.snapshot().group_size;
        assert_eq!(g.count, 3, "one sample per flush");
        assert_eq!(g.sum, 12, "sum counts decisions");
        assert_eq!(g.max, 8);
        // Disabled handle records nothing.
        let off = Telemetry::disabled();
        off.record_group_size(5);
        assert_eq!(off.snapshot().group_size.count, 0);
    }

    #[test]
    fn histograms_off_trace_on_still_traces() {
        let t = Telemetry::new(TelemetryConfig {
            histograms: false,
            trace_sample: 1,
            trace_capacity: 16,
        });
        assert!(t.timer().is_none());
        t.record(Phase::Commit, Duration::from_nanos(5));
        assert_eq!(t.snapshot().phases.total_count(), 0);
        assert!(t.sampled(3));
        t.trace(SpanEvent {
            ts_ns: t.now_ns(),
            gid: 3,
            template: 0,
            attempt: 1,
            kind: SpanKind::Admit,
            entity: u32::MAX,
            dur_ns: 0,
            n: 0,
        });
        assert_eq!(t.snapshot().trace_captured, 1);
        assert!(t.dump_trace_jsonl().contains("\"gid\":3"));
    }
}
