//! Log-bucketed latency histograms over atomic `u64` buckets.
//!
//! The bucket layout trades memory for bounded *relative* error:
//! values `0..=15` get one exact bucket each, and every larger value
//! lands in one of four sub-buckets per power of two — so a reported
//! percentile is never more than 25% above the true sample (and never
//! below it). 256 buckets cover the whole `u64` range in 2 KiB of
//! atomics, and recording is one `fetch_add` per counter: no locks, no
//! allocation, safe to call from every engine worker concurrently.
//!
//! Two types split the hot and cold paths: [`Histogram`] is the shared
//! atomic recorder, [`HistogramSnapshot`] is a plain-data copy that can
//! be merged (cross-worker or cross-run aggregation — this is what lets
//! `Report::absorb` combine percentiles *exactly* instead of taking the
//! conservative worse-of), diffed against an earlier snapshot, and
//! queried for percentiles.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: 16 exact singletons + 60 octaves × 4 sub-buckets.
pub const BUCKET_COUNT: usize = 256;

/// The bucket index of `v` (nanoseconds). Values `0..=15` map to
/// themselves; `v ≥ 16` maps to octave `o = floor(log2 v)` with four
/// sub-buckets, so each bucket spans at most a quarter of its floor.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v < 16 {
        return v as usize;
    }
    let o = 63 - v.leading_zeros() as usize; // ≥ 4
    let sub = ((v >> (o - 2)) & 3) as usize;
    16 + (o - 4) * 4 + sub
}

/// The smallest value mapping to bucket `i`.
#[inline]
pub fn bucket_floor(i: usize) -> u64 {
    if i < 16 {
        return i as u64;
    }
    let k = i - 16;
    let (o, sub) = (4 + k / 4, (k % 4) as u64);
    (4 + sub) << (o - 2)
}

/// The largest value mapping to bucket `i`.
#[inline]
pub fn bucket_ceil(i: usize) -> u64 {
    if i < 16 {
        return i as u64;
    }
    let k = i - 16;
    let (o, sub) = (4 + k / 4, (k % 4) as u64);
    if i == BUCKET_COUNT - 1 {
        return u64::MAX;
    }
    ((5 + sub) << (o - 2)) - 1
}

/// A concurrent log-bucketed histogram of `u64` samples (nanoseconds by
/// convention). All methods take `&self`; recording is lock-free.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample: three relaxed `fetch_add`s and a `fetch_max`.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A plain-data copy for querying, merging, and diffing. Buckets are
    /// read individually (relaxed), so a snapshot taken under concurrent
    /// recording is a consistent-enough view: every sample is in at most
    /// one bucket, never half-counted.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]: mergeable, diffable,
/// queryable. `Default` is the empty distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (mean = `sum / count`).
    pub sum: u64,
    /// Largest sample observed. After [`delta`](Self::delta) this is the
    /// *cumulative* high-water mark, an upper bound for the window.
    pub max: u64,
    buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            max: 0,
            buckets: vec![0; BUCKET_COUNT],
        }
    }
}

impl HistogramSnapshot {
    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`0 < q ≤ 1`): the ceiling of the bucket holding
    /// the rank-`⌈q·count⌉` sample, clamped to the observed max — so the
    /// result is `≥` the true order statistic and at most 25% above it
    /// (exact below 16). Returns 0 on an empty distribution.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_ceil(i).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Folds `other` in: buckets, counts, and sums add; max takes the
    /// larger. Exact (associative and commutative) — the reason the
    /// engine reports histograms instead of pre-reduced percentiles.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The samples recorded *since* `earlier` (bucket-wise subtraction —
    /// buckets are monotone counters, so the difference is exact).
    /// `max` keeps the later cumulative high-water mark.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_the_u64_range() {
        for i in 0..BUCKET_COUNT {
            let (lo, hi) = (bucket_floor(i), bucket_ceil(i));
            assert!(lo <= hi, "bucket {i}");
            assert_eq!(bucket_of(lo), i, "floor of {i}");
            assert_eq!(bucket_of(hi), i, "ceil of {i}");
            if i + 1 < BUCKET_COUNT {
                assert_eq!(hi + 1, bucket_floor(i + 1), "gap after bucket {i}");
            }
        }
        assert_eq!(bucket_of(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn relative_error_is_bounded_by_a_quarter() {
        for i in 16..BUCKET_COUNT - 1 {
            let (lo, hi) = (bucket_floor(i), bucket_ceil(i));
            assert!(hi - lo < lo / 4 + 1, "bucket {i}: [{lo}, {hi}]");
        }
    }

    #[test]
    fn exact_percentiles_for_small_values() {
        let h = Histogram::new();
        for v in 1..=10u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 5);
        assert_eq!(s.percentile(1.0), 10);
        assert_eq!(s.max, 10);
        assert_eq!(s.mean(), 5); // 55 / 10, integer division
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0);
        assert_eq!(s, HistogramSnapshot::default());
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let (a, b, both) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [3u64, 70, 900, 12_345] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 70, 1_000_000] {
            b.record(v);
            both.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn delta_isolates_a_window() {
        let h = Histogram::new();
        h.record(100);
        let t0 = h.snapshot();
        h.record(5000);
        h.record(5000);
        let d = h.snapshot().delta(&t0);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 10_000);
        assert_eq!(bucket_of(d.p50()), bucket_of(5000));
    }
}
