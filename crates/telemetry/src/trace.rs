//! Sampled instance-lifecycle trace ring.
//!
//! A bounded ring buffer of [`SpanEvent`]s covering the life of an
//! instance: admit → lock-acquire / lock-wait → write → commit / abort
//! → audit-arc. Whole instances are sampled (every `1/rate` by global
//! id) so a captured instance's events are complete and a single slow
//! straggler can be reconstructed end to end. Unsampled instances never
//! touch the ring — the check is one modulo — so the hot path stays
//! lock-free; sampled events take a short `Mutex` push, which the crate
//! documents honestly rather than pretending a lock-free MPSC exists
//! without dependencies.
//!
//! Events dump as JSON lines ([`TraceRing::dump_jsonl`]) for
//! flamegraph-style offline inspection.

// Leaf lock in a dependency-free crate; see lib.rs. lockdep: allow(std-sync)
use std::sync::Mutex;

/// What happened at one point of an instance's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Instance passed the admission gate and began executing.
    Admit,
    /// One entity lock acquired; `dur_ns` is the time spent waiting
    /// for it (0 when granted immediately).
    LockAcquire,
    /// One entity written; `dur_ns` is unused.
    Write,
    /// Instance committed; `dur_ns` is the commit-phase duration.
    Commit,
    /// One attempt aborted (wait-die); `dur_ns` is the undo duration.
    Abort,
    /// The streaming auditor merged this instance; `n` is the arc
    /// count of the conflict graph afterwards.
    AuditArc,
}

impl SpanKind {
    /// Stable lowercase name used in the JSON dump.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Admit => "admit",
            SpanKind::LockAcquire => "lock_acquire",
            SpanKind::Write => "write",
            SpanKind::Commit => "commit",
            SpanKind::Abort => "abort",
            SpanKind::AuditArc => "audit_arc",
        }
    }
}

/// One plain-data lifecycle event. Copy, no allocation on record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Nanoseconds since the telemetry handle was created.
    pub ts_ns: u64,
    /// Global instance id (WAL id space).
    pub gid: u64,
    /// Template index of the instance.
    pub template: u32,
    /// 1-based attempt number (wait-die retries bump it).
    pub attempt: u32,
    /// What happened.
    pub kind: SpanKind,
    /// Entity involved, or `u32::MAX` when not entity-scoped.
    pub entity: u32,
    /// Duration in nanoseconds where the kind defines one, else 0.
    pub dur_ns: u64,
    /// Kind-specific count (auditor arcs for [`SpanKind::AuditArc`]).
    pub n: u64,
}

/// Bounded ring of sampled [`SpanEvent`]s. Oldest events are
/// overwritten once `capacity` is reached; `dropped` counts them.
#[derive(Debug)]
pub struct TraceRing {
    inner: Mutex<RingState>,
    capacity: usize,
}

#[derive(Debug)]
struct RingState {
    events: Vec<SpanEvent>,
    head: usize,
    dropped: u64,
}

impl TraceRing {
    /// An empty ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(RingState {
                events: Vec::new(),
                head: 0,
                dropped: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Pushes one event, evicting the oldest when full.
    pub fn push(&self, ev: SpanEvent) {
        let mut st = self.inner.lock().expect("trace ring poisoned");
        if st.events.len() < self.capacity {
            st.events.push(ev);
        } else {
            let head = st.head;
            st.events[head] = ev;
            st.head = (head + 1) % self.capacity;
            st.dropped += 1;
        }
    }

    /// Events currently held, oldest first.
    pub fn captured(&self) -> Vec<SpanEvent> {
        let st = self.inner.lock().expect("trace ring poisoned");
        let mut out = Vec::with_capacity(st.events.len());
        out.extend_from_slice(&st.events[st.head..]);
        out.extend_from_slice(&st.events[..st.head]);
        out
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace ring poisoned").events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("trace ring poisoned").dropped
    }

    /// Renders the held events as JSON lines, oldest first: one object
    /// per line with `ts_ns`, `gid`, `template`, `attempt`, `kind`,
    /// `entity` (absent when not entity-scoped), `dur_ns`, and `n`
    /// (absent when 0). Hand-rolled on purpose — keys and values are
    /// all numeric or fixed identifiers, so no escaping is needed and
    /// the crate stays dependency-free.
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.captured() {
            out.push_str(&format!(
                "{{\"ts_ns\":{},\"gid\":{},\"template\":{},\"attempt\":{},\"kind\":\"{}\"",
                ev.ts_ns,
                ev.gid,
                ev.template,
                ev.attempt,
                ev.kind.name()
            ));
            if ev.entity != u32::MAX {
                out.push_str(&format!(",\"entity\":{}", ev.entity));
            }
            out.push_str(&format!(",\"dur_ns\":{}", ev.dur_ns));
            if ev.n != 0 {
                out.push_str(&format!(",\"n\":{}", ev.n));
            }
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(gid: u64, kind: SpanKind) -> SpanEvent {
        SpanEvent {
            ts_ns: gid * 10,
            gid,
            template: 0,
            attempt: 1,
            kind,
            entity: u32::MAX,
            dur_ns: 0,
            n: 0,
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let ring = TraceRing::new(3);
        for gid in 0..5 {
            ring.push(ev(gid, SpanKind::Admit));
        }
        let got: Vec<u64> = ring.captured().iter().map(|e| e.gid).collect();
        assert_eq!(got, vec![2, 3, 4]);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn jsonl_one_line_per_event_with_optional_fields() {
        let ring = TraceRing::new(8);
        ring.push(ev(7, SpanKind::Admit));
        ring.push(SpanEvent {
            entity: 3,
            dur_ns: 42,
            n: 9,
            ..ev(7, SpanKind::AuditArc)
        });
        let dump = ring.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"admit\""));
        assert!(!lines[0].contains("entity"));
        assert!(lines[1].contains("\"entity\":3"));
        assert!(lines[1].contains("\"n\":9"));
        assert!(lines[1].ends_with('}'));
    }

    #[test]
    fn empty_ring_dumps_nothing() {
        let ring = TraceRing::new(4);
        assert!(ring.is_empty());
        assert_eq!(ring.dump_jsonl(), "");
    }
}
