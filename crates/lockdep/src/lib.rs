//! ddlf-lockdep — runtime verification of the engine's **own** lock
//! discipline.
//!
//! The paper proves *transactions* deadlock-free at the data level; this
//! crate brings the same rigor to the implementation that executes them.
//! The vendored `parking_lot` shim calls into these hooks (behind its
//! `lockdep` cargo feature) on every mutex/rwlock acquire, release, and
//! condvar wait, and three checkers run over the stream:
//!
//! 1. **Lock-order validation** (the kernel-lockdep idea): every lock
//!    belongs to a *class* — all shard mutexes are one `shard.state`
//!    class, every WAL shard sink is one `wal.shard_sink` class — and
//!    nested acquisitions accumulate *class-order edges* in a
//!    process-wide graph maintained by the Pearce–Kelly incremental
//!    topological order (`ddlf_model::incremental::IncrementalTopo`).
//!    An edge that would close a cycle is a potential ABBA deadlock,
//!    reported with both acquisition sites and the full held-stack —
//!    even if the schedule that ran never actually deadlocked. One test
//!    run certifies every ordering it reached.
//! 2. **Blocking-section verification**: `wal.rs` and the server brace
//!    their `write(2)`/`fsync`/`accept(2)` regions with
//!    [`blocking_region`] guards; holding a lock class across one is a
//!    violation unless the class is on the explicit `BLOCKING_ALLOW`
//!    list. This machine-checks the group-commit invariants ("the
//!    leader drains tickets *outside* the lock", "one decision fsync
//!    per group") that PR 7 could only assert in review.
//! 3. **Condvar-wait discipline**: waiting on a condvar while holding a
//!    second, unrelated lock class wedges every thread that needs the
//!    other lock for the whole wait — flagged.
//!
//! Violations are recorded (and logged) as they happen, never panicking
//! inside the hooks — a panic on a worker thread could wedge the very
//! engine under test. Enforcement happens at process exit: with
//! `DDLF_LOCKDEP=fail` any unresolved violation aborts the process (so
//! a full `cargo test --features lockdep` run doubles as a lock-order
//! certification pass); `DDLF_LOCKDEP=warn` (the default when the
//! feature is on) demotes to a logged report; `DDLF_LOCKDEP=off`
//! disables the hooks at runtime.
//!
//! Without the `enabled` cargo feature every entry point is an inline
//! no-op — the default build pays nothing (BENCH_lockdep.json holds the
//! receipts). The intended global lock hierarchy the order graph checks
//! against is documented in ARCHITECTURE.md ("Lock discipline"); the
//! class names registered at construction sites are the executable form
//! of that table.

use std::fmt;

/// The kind of blocking operation a [`blocking_region`] brackets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockingKind {
    /// A potentially-blocking `write(2)` (WAL buffer flush).
    Write,
    /// An `fsync`/`fdatasync` durability wait.
    Fsync,
    /// A socket `accept(2)` wait in the server front-end.
    Accept,
}

impl BlockingKind {
    /// Bit for this kind in a per-class allow mask.
    pub const fn mask(self) -> u8 {
        match self {
            BlockingKind::Write => 1,
            BlockingKind::Fsync => 2,
            BlockingKind::Accept => 4,
        }
    }
}

/// Enforcement mode, initialized from the `DDLF_LOCKDEP` environment
/// variable (`off` | `warn` | `fail`; default `warn`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Hooks return immediately; nothing is recorded.
    Off = 0,
    /// Violations are recorded and logged; process exit is unaffected.
    Warn = 1,
    /// Violations are recorded and logged; any violation still
    /// unresolved at process exit aborts (non-zero status for CI).
    Fail = 2,
}

/// What a [`Violation`] is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A nested acquisition closed a cycle in the class-order graph
    /// (the classic ABBA inversion, caught structurally).
    OrderInversion,
    /// A thread acquired a second lock of a class it already holds —
    /// two threads doing so against distinct instances can deadlock.
    SameClassNesting,
    /// A lock class not on the allowlist was held across a
    /// [`blocking_region`].
    BlockingHeld,
    /// A condvar wait started while a second lock class was held.
    CondvarHeld,
}

/// One recorded discipline violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which checker fired.
    pub kind: ViolationKind,
    /// The lock classes involved. For [`ViolationKind::OrderInversion`]
    /// this is the cycle `c0 → c1 → … → c0` (first class not repeated);
    /// for the others, the waiting/blocking class first, then the
    /// offending held classes.
    pub classes: Vec<String>,
    /// Fully rendered detail: acquisition sites and held-stacks.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} [{}]: {}",
            self.kind,
            self.classes.join(", "),
            self.message
        )
    }
}

/// Opaque identifier of a lock class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassId(u32);

impl ClassId {
    /// Rebuilds a class id from its raw index (shim plumbing).
    pub const fn from_raw(raw: u32) -> Self {
        Self(raw)
    }

    /// The raw index of this class (shim plumbing).
    pub const fn raw(self) -> u32 {
        self.0
    }
}

/// Whether a process with `unresolved` violations should abort at exit
/// under `mode`. Factored out so the warn/fail split is unit-testable
/// without actually aborting a test process.
pub fn exit_should_abort(mode: Mode, unresolved: usize) -> bool {
    mode == Mode::Fail && unresolved > 0
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{BlockingKind, ClassId, Mode, Violation, ViolationKind};
    use ddlf_model::incremental::IncrementalTopo;
    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::panic::Location;
    use std::sync::atomic::{AtomicU8, Ordering};
    use std::sync::{Mutex, Once, OnceLock}; // lockdep: allow(std-sync) — the validator cannot instrument itself

    /// The blocking allowlist — the executable, row-by-row form of the
    /// ARCHITECTURE.md "Lock discipline" table. A class absent here may
    /// be held across **no** blocking region.
    ///
    /// * `shard.state` — applying a write appends its WAL record under
    ///   the shard mutex, and a buffered append may cross into
    ///   `write(2)` on a capacity boundary; it must never cross an
    ///   fsync (durability waits run with no shard lock held).
    /// * `history.shared` — the timestamp critical section feeds the
    ///   WAL event sink (buffered), by design, so durable history order
    ///   equals timestamp order.
    /// * `wal.*` writer locks — these exist precisely to serialize
    ///   write+fsync, so they alone may cross both.
    /// * `server.engine` — `submit` holds the engine slot for an entire
    ///   run by design (submissions serialize); everything the engine
    ///   does, durability included, happens under it.
    ///
    /// `wal.group_state` is deliberately absent: the group-commit
    /// leader must drain tickets and fsync *outside* the state lock
    /// (the PR 7 invariant this list machine-checks). So are
    /// `template.slot_gate`, `engine.cumulative`, `engine.auditor`,
    /// and `server.conns`.
    const BLOCKING_ALLOW: &[(&str, u8)] = &[
        ("shard.state", 1),
        ("history.shared", 1),
        ("wal.commit", 1 | 2),
        ("wal.history", 1 | 2),
        ("wal.shard_sinks", 1 | 2),
        ("wal.shard_sink", 1 | 2),
        ("server.engine", 1 | 2),
    ];

    /// First-witness record for a class-order edge.
    struct EdgeWitness {
        from_site: &'static Location<'static>,
        to_site: &'static Location<'static>,
        thread: String,
    }

    #[derive(Default)]
    struct State {
        /// Class index → name (`anon#N` for unnamed locks).
        names: Vec<String>,
        by_name: HashMap<&'static str, u32>,
        /// Class index → blocking-kind allow mask.
        allow: Vec<u8>,
        topo: IncrementalTopo,
        edges: HashMap<(u32, u32), EdgeWitness>,
        violations: Vec<Violation>,
        /// Dedup keys so a hot loop reports each distinct finding once.
        seen: HashSet<String>,
    }

    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    /// Mode cache: `u8::MAX` = not yet read from the environment.
    static MODE: AtomicU8 = AtomicU8::new(u8::MAX);

    fn state() -> &'static Mutex<State> {
        STATE.get_or_init(|| {
            install_exit_hook();
            Mutex::new(State::default())
        })
    }

    fn lock_state() -> std::sync::MutexGuard<'static, State> {
        state().lock().unwrap_or_else(|p| p.into_inner())
    }

    #[derive(Clone, Copy)]
    struct Held {
        class: u32,
        site: &'static Location<'static>,
    }

    thread_local! {
        /// The acquisition stack of the current thread.
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
        /// Active blocking regions of the current thread.
        static REGIONS: RefCell<Vec<(BlockingKind, &'static Location<'static>)>> =
            const { RefCell::new(Vec::new()) };
        /// Total instrumented acquisitions on this thread (any class,
        /// any mode) — lets a test certify that a code path is
        /// lock-free by diffing the counter around it.
        static ACQUIRES: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }

    /// Instrumented lock acquisitions performed by the *current thread*
    /// since it started, across every class and regardless of
    /// enforcement mode. A path that leaves this counter unchanged
    /// acquired no instrumented lock at all — the machine-checkable
    /// form of "takes zero lock classes".
    pub fn thread_acquire_count() -> u64 {
        ACQUIRES.try_with(|c| c.get()).unwrap_or(0)
    }

    fn parse_mode(raw: Option<&str>) -> Mode {
        match raw {
            Some("off") | Some("0") => Mode::Off,
            Some("fail") => Mode::Fail,
            _ => Mode::Warn,
        }
    }

    /// The current enforcement mode (first call reads `DDLF_LOCKDEP`).
    pub fn mode() -> Mode {
        match MODE.load(Ordering::Relaxed) {
            0 => Mode::Off,
            1 => Mode::Warn,
            2 => Mode::Fail,
            _ => {
                let var = std::env::var("DDLF_LOCKDEP").ok();
                let m = parse_mode(var.as_deref());
                set_mode(m);
                m
            }
        }
    }

    /// Overrides the enforcement mode (tests; takes precedence over the
    /// environment from this point on).
    pub fn set_mode(m: Mode) {
        MODE.store(m as u8, Ordering::Relaxed);
    }

    /// Registers (or looks up) the lock class named `name`. All locks
    /// constructed under the same name share one class — that sharing
    /// is what lets a single run certify the ordering of *every* shard
    /// mutex at once.
    pub fn register_class(name: &'static str) -> ClassId {
        let mut st = lock_state();
        if let Some(&id) = st.by_name.get(name) {
            return ClassId::from_raw(id);
        }
        let id = st.topo.add_node() as u32;
        st.names.push(name.to_string());
        let allow = BLOCKING_ALLOW
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, m)| m)
            .unwrap_or(0);
        st.allow.push(allow);
        st.by_name.insert(name, id);
        ClassId::from_raw(id)
    }

    /// A fresh per-instance class for a lock constructed without a
    /// name. Unique per call, so two unrelated anonymous locks are
    /// never falsely aliased into one ordering class.
    pub fn anon_class() -> ClassId {
        let mut st = lock_state();
        let id = st.topo.add_node() as u32;
        st.names.push(format!("anon#{id}"));
        st.allow.push(0);
        ClassId::from_raw(id)
    }

    fn thread_label() -> String {
        std::thread::current().name().unwrap_or("?").to_string()
    }

    fn render_stack(stack: &[Held], names: &[String]) -> String {
        let mut out = String::new();
        for h in stack {
            if !out.is_empty() {
                out.push_str(", ");
            }
            out.push_str(&format!("{} @ {}", names[h.class as usize], h.site));
        }
        if out.is_empty() {
            out.push_str("(empty)");
        }
        out
    }

    /// Records `v` unless an equivalent finding (same `key`) was
    /// already seen. Logs immediately in warn and fail modes. Never
    /// panics.
    fn record(st: &mut State, key: String, v: Violation) {
        if !st.seen.insert(key) {
            return;
        }
        eprintln!("[lockdep] {v}");
        st.violations.push(v);
    }

    /// Acquire hook: checks order edges against every currently-held
    /// class, same-class nesting, and active blocking regions, then
    /// pushes onto the held-stack. Called by the `parking_lot` shim
    /// *before* blocking on the lock, so a potential deadlock is
    /// reported even if this very acquisition would hang.
    pub fn on_acquire(class: ClassId, site: &'static Location<'static>) {
        let _ = ACQUIRES.try_with(|c| c.set(c.get() + 1));
        if mode() == Mode::Off {
            return;
        }
        let c = class.raw();
        let snapshot: Vec<Held> = HELD.try_with(|h| h.borrow().clone()).unwrap_or_default();
        let regions: Vec<(BlockingKind, &'static Location<'static>)> =
            REGIONS.try_with(|r| r.borrow().clone()).unwrap_or_default();
        if !snapshot.is_empty() || !regions.is_empty() {
            let mut st = lock_state();
            if snapshot.iter().any(|h| h.class == c) {
                let name = st.names[c as usize].clone();
                let msg = format!(
                    "re-acquired class '{name}' at {site} while already holding it \
                     (held stack: {}) on thread '{}'",
                    render_stack(&snapshot, &st.names),
                    thread_label()
                );
                record(
                    &mut st,
                    format!("nest|{name}"),
                    Violation {
                        kind: ViolationKind::SameClassNesting,
                        classes: vec![name],
                        message: msg,
                    },
                );
            }
            for h in &snapshot {
                if h.class == c {
                    continue;
                }
                match st.topo.add_arc(h.class as usize, c as usize) {
                    Ok(true) => {
                        st.edges.insert(
                            (h.class, c),
                            EdgeWitness {
                                from_site: h.site,
                                to_site: site,
                                thread: thread_label(),
                            },
                        );
                    }
                    Ok(false) => {}
                    Err(cycle) => {
                        let classes: Vec<String> =
                            cycle.iter().map(|&i| st.names[i].clone()).collect();
                        let mut msg = format!(
                            "acquiring '{}' at {site} while holding '{}' (acquired at {}) \
                             closes the cycle {} -> {}; held stack: {}; thread '{}'",
                            st.names[c as usize],
                            st.names[h.class as usize],
                            h.site,
                            classes.join(" -> "),
                            classes[0],
                            render_stack(&snapshot, &st.names),
                            thread_label()
                        );
                        // The reverse path already in the graph: name the
                        // first-witness sites of each edge along the cycle
                        // (wrap-around included), so the report shows *both*
                        // acquisition orders. The attempted edge itself was
                        // refused, so it has no stored witness.
                        for i in 0..cycle.len() {
                            let cu = cycle[i];
                            let cv = cycle[(i + 1) % cycle.len()];
                            if let Some(e) = st.edges.get(&(cu as u32, cv as u32)) {
                                msg.push_str(&format!(
                                    "; prior edge {} -> {} first seen on thread '{}' \
                                     ({} then {})",
                                    st.names[cu], st.names[cv], e.thread, e.from_site, e.to_site
                                ));
                            }
                        }
                        let key = format!("cycle|{}", classes.join("->"));
                        record(
                            &mut st,
                            key,
                            Violation {
                                kind: ViolationKind::OrderInversion,
                                classes,
                                message: msg,
                            },
                        );
                    }
                }
            }
            for &(kind, rsite) in &regions {
                if st.allow.get(c as usize).copied().unwrap_or(0) & kind.mask() == 0 {
                    let name = st.names[c as usize].clone();
                    let msg = format!(
                        "acquired '{name}' at {site} inside an active {kind:?} blocking \
                         region entered at {rsite}"
                    );
                    record(
                        &mut st,
                        format!("blockacq|{kind:?}|{name}|{rsite}"),
                        Violation {
                            kind: ViolationKind::BlockingHeld,
                            classes: vec![name],
                            message: msg,
                        },
                    );
                }
            }
        }
        let _ = HELD.try_with(|h| h.borrow_mut().push(Held { class: c, site }));
    }

    /// Release hook: pops the most recent held entry of `class`.
    /// Tolerates out-of-LIFO guard drops and thread-exit teardown.
    pub fn on_release(class: ClassId) {
        if mode() == Mode::Off {
            return;
        }
        let _ = HELD.try_with(|h| {
            let mut h = h.borrow_mut();
            if let Some(i) = h.iter().rposition(|e| e.class == class.raw()) {
                h.remove(i);
            }
        });
    }

    /// Token carrying the held-stack entry a condvar wait released;
    /// handed back to [`condvar_wait_end`] on wakeup.
    pub struct WaitToken {
        entry: Option<Held>,
    }

    /// Condvar wait hook: flags any *other* class held at wait time
    /// (discipline: a wait may hold only the mutex it waits on), then
    /// pops the waited mutex from the held-stack for the duration.
    pub fn condvar_wait_begin(class: ClassId, wait_site: &'static Location<'static>) -> WaitToken {
        if mode() == Mode::Off {
            return WaitToken { entry: None };
        }
        let mut entry = None;
        let mut others: Vec<Held> = Vec::new();
        let _ = HELD.try_with(|h| {
            let mut h = h.borrow_mut();
            if let Some(i) = h.iter().rposition(|e| e.class == class.raw()) {
                entry = Some(h.remove(i));
            }
            others = h.iter().copied().collect();
        });
        if !others.is_empty() {
            let mut st = lock_state();
            let waiting = st.names[class.raw() as usize].clone();
            let mut classes = vec![waiting.clone()];
            classes.extend(others.iter().map(|o| st.names[o.class as usize].clone()));
            let msg = format!(
                "condvar wait on mutex class '{waiting}' at {wait_site} while still \
                 holding: {}; thread '{}'",
                render_stack(&others, &st.names),
                thread_label()
            );
            record(
                &mut st,
                format!("condvar|{}", classes.join("|")),
                Violation {
                    kind: ViolationKind::CondvarHeld,
                    classes,
                    message: msg,
                },
            );
        }
        WaitToken { entry }
    }

    /// Re-pushes the waited mutex after the condvar wait returns (the
    /// wait re-acquired it). No new order edges: if the discipline
    /// check passed, nothing else was held.
    pub fn condvar_wait_end(token: WaitToken) {
        if let Some(e) = token.entry {
            let _ = HELD.try_with(|h| h.borrow_mut().push(e));
        }
    }

    /// RAII marker for a blocking section; see [`blocking_region`].
    pub struct BlockingRegion {
        armed: bool,
    }

    impl Drop for BlockingRegion {
        fn drop(&mut self) {
            if self.armed {
                let _ = REGIONS.try_with(|r| {
                    r.borrow_mut().pop();
                });
            }
        }
    }

    /// Marks the enclosing scope as a blocking section of `kind`.
    /// Every lock class held at entry (and any acquired while the
    /// region is active) must have `kind` in its allow mask.
    #[track_caller]
    pub fn blocking_region(kind: BlockingKind) -> BlockingRegion {
        if mode() == Mode::Off {
            return BlockingRegion { armed: false };
        }
        let site = Location::caller();
        let snapshot: Vec<Held> = HELD.try_with(|h| h.borrow().clone()).unwrap_or_default();
        if !snapshot.is_empty() {
            let mut st = lock_state();
            for h in &snapshot {
                if st.allow.get(h.class as usize).copied().unwrap_or(0) & kind.mask() == 0 {
                    let name = st.names[h.class as usize].clone();
                    let msg = format!(
                        "{kind:?} blocking region entered at {site} while holding \
                         '{name}' (acquired at {}); held stack: {}; thread '{}'",
                        h.site,
                        render_stack(&snapshot, &st.names),
                        thread_label()
                    );
                    record(
                        &mut st,
                        format!("block|{kind:?}|{name}|{site}"),
                        Violation {
                            kind: ViolationKind::BlockingHeld,
                            classes: vec![name],
                            message: msg,
                        },
                    );
                }
            }
        }
        let _ = REGIONS.try_with(|r| r.borrow_mut().push((kind, site)));
        BlockingRegion { armed: true }
    }

    /// All registered class names, in registration order.
    pub fn classes() -> Vec<String> {
        lock_state().names.clone()
    }

    /// The observed class-order edges, as `(from, to)` name pairs,
    /// sorted for stable output.
    pub fn edges() -> Vec<(String, String)> {
        let st = lock_state();
        let mut out: Vec<(String, String)> = st
            .edges
            .keys()
            .map(|&(u, v)| (st.names[u as usize].clone(), st.names[v as usize].clone()))
            .collect();
        out.sort();
        out
    }

    /// A copy of the currently recorded violations.
    pub fn violations() -> Vec<Violation> {
        lock_state().violations.clone()
    }

    /// Number of currently recorded violations.
    pub fn violation_count() -> usize {
        lock_state().violations.len()
    }

    /// Drains **all** recorded violations (report tooling).
    pub fn take_violations() -> Vec<Violation> {
        std::mem::take(&mut lock_state().violations)
    }

    /// Drains only the violations all of whose classes start with
    /// `prefix`. Lets a test that *deliberately* provokes a violation
    /// (the ABBA self-test) consume its own finding without masking
    /// anything another test surfaced in the same process.
    pub fn take_violations_with_prefix(prefix: &str) -> Vec<Violation> {
        let mut st = lock_state();
        let (mine, keep): (Vec<Violation>, Vec<Violation>) = std::mem::take(&mut st.violations)
            .into_iter()
            .partition(|v| v.classes.iter().all(|c| c.starts_with(prefix)));
        st.violations = keep;
        mine
    }

    /// Human-readable dump: classes, observed order edges with first
    /// witnesses, and unresolved violations.
    pub fn report() -> String {
        let st = lock_state();
        let mut out = format!(
            "lockdep: {} classes, {} order edges, {} unresolved violation(s), mode {:?}\n",
            st.names.len(),
            st.edges.len(),
            st.violations.len(),
            mode()
        );
        let mut edges: Vec<_> = st.edges.iter().collect();
        edges.sort_by_key(|(&(u, v), _)| (u, v));
        for (&(u, v), w) in edges {
            out.push_str(&format!(
                "  {} -> {}  (first: thread '{}', {} then {})\n",
                st.names[u as usize], st.names[v as usize], w.thread, w.from_site, w.to_site
            ));
        }
        for v in &st.violations {
            out.push_str(&format!("  VIOLATION {v}\n"));
        }
        out
    }

    /// The observed class-order DAG in Graphviz DOT form.
    pub fn dot() -> String {
        let st = lock_state();
        let mut out = String::from("digraph lockorder {\n  rankdir=LR;\n");
        for name in &st.names {
            out.push_str(&format!("  \"{name}\";\n"));
        }
        let mut edges: Vec<_> = st.edges.keys().copied().collect();
        edges.sort_unstable();
        for (u, v) in edges {
            out.push_str(&format!(
                "  \"{}\" -> \"{}\";\n",
                st.names[u as usize], st.names[v as usize]
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Registers the atexit enforcement hook exactly once. Declared
    /// directly against libc's `atexit` (std already links libc; the
    /// build has no `libc` crate).
    fn install_exit_hook() {
        static HOOK: Once = Once::new();
        HOOK.call_once(|| {
            extern "C" {
                fn atexit(cb: extern "C" fn()) -> i32;
            }
            extern "C" fn lockdep_exit() {
                let Some(m) = STATE.get() else { return };
                let unresolved = {
                    let st = m.lock().unwrap_or_else(|p| p.into_inner());
                    st.violations.len()
                };
                if unresolved == 0 {
                    return;
                }
                eprintln!("[lockdep] {unresolved} unresolved violation(s) at process exit:");
                eprint!("{}", report());
                if super::exit_should_abort(mode(), unresolved) {
                    eprintln!("[lockdep] DDLF_LOCKDEP=fail: aborting");
                    std::process::abort();
                }
            }
            // SAFETY: `atexit` is the standard C routine; the callback is a
            // plain `extern "C" fn` with no unwinding (all fallible work is
            // poison-tolerated above).
            unsafe {
                atexit(lockdep_exit);
            }
        });
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::panic::Location;

        /// A distinct `&'static Location` per call site.
        #[track_caller]
        fn here() -> &'static Location<'static> {
            Location::caller()
        }

        #[test]
        fn env_mode_parsing() {
            assert_eq!(parse_mode(Some("off")), Mode::Off);
            assert_eq!(parse_mode(Some("0")), Mode::Off);
            assert_eq!(parse_mode(Some("warn")), Mode::Warn);
            assert_eq!(parse_mode(Some("fail")), Mode::Fail);
            assert_eq!(parse_mode(Some("bogus")), Mode::Warn);
            assert_eq!(parse_mode(None), Mode::Warn);
        }

        #[test]
        fn warn_mode_demotes_fail_mode_aborts() {
            assert!(!super::super::exit_should_abort(Mode::Warn, 3));
            assert!(!super::super::exit_should_abort(Mode::Fail, 0));
            assert!(super::super::exit_should_abort(Mode::Fail, 1));
            assert!(!super::super::exit_should_abort(Mode::Off, 9));
        }

        #[test]
        fn abba_inversion_reports_two_class_cycle_with_both_sites() {
            set_mode(Mode::Warn);
            let a = register_class("selftest.abba.a");
            let b = register_class("selftest.abba.b");
            let (s1, s2, s3, s4) = (here(), here(), here(), here());
            // Thread-order A then B…
            on_acquire(a, s1);
            on_acquire(b, s2);
            on_release(b);
            on_release(a);
            // …then B then A: the second acquisition closes the cycle.
            on_acquire(b, s3);
            on_acquire(a, s4);
            on_release(a);
            on_release(b);
            let v = take_violations_with_prefix("selftest.abba.");
            assert_eq!(v.len(), 1, "exactly one inversion: {v:?}");
            assert_eq!(v[0].kind, ViolationKind::OrderInversion);
            let mut cycle = v[0].classes.clone();
            cycle.sort();
            assert_eq!(
                cycle,
                vec!["selftest.abba.a".to_string(), "selftest.abba.b".to_string()],
                "the witness names exactly the two inverted classes"
            );
            // Both acquisition orders are in the report: the inverting
            // acquisition (s4 while holding s3) and the first-seen edge
            // from the original order (s1 then s2).
            let m = &v[0].message;
            assert!(m.contains(&s4.to_string()), "inverting site: {m}");
            assert!(m.contains(&s3.to_string()), "held site: {m}");
            assert!(m.contains(&s1.to_string()), "prior-edge from-site: {m}");
            assert!(m.contains(&s2.to_string()), "prior-edge to-site: {m}");
            assert!(m.contains("held stack"), "held stack rendered: {m}");
            // Re-running the inverted order re-reports nothing (deduped),
            // and the graph still answers (the bad arc was never added).
            on_acquire(b, here());
            on_acquire(a, here());
            on_release(a);
            on_release(b);
            assert!(take_violations_with_prefix("selftest.abba.").is_empty());
        }

        #[test]
        fn consistent_nesting_is_clean_and_edges_recorded() {
            set_mode(Mode::Warn);
            let a = register_class("selftest.clean.a");
            let b = register_class("selftest.clean.b");
            for _ in 0..3 {
                on_acquire(a, here());
                on_acquire(b, here());
                on_release(b);
                on_release(a);
            }
            assert!(take_violations_with_prefix("selftest.clean.").is_empty());
            assert!(edges().contains(&(
                "selftest.clean.a".to_string(),
                "selftest.clean.b".to_string()
            )));
            let d = dot();
            assert!(d.contains("\"selftest.clean.a\" -> \"selftest.clean.b\""));
        }

        #[test]
        fn blocking_allowlist_admits_wal_writers_only() {
            set_mode(Mode::Warn);
            // `wal.commit` is allowlisted for Write|Fsync: clean.
            let wal = register_class("wal.commit");
            on_acquire(wal, here());
            {
                let _r = blocking_region(BlockingKind::Fsync);
            }
            on_release(wal);
            assert!(take_violations_with_prefix("wal.commit").is_empty());

            // An unlisted class across an fsync: violation.
            let c = register_class("selftest.blk.gate");
            on_acquire(c, here());
            {
                let _r = blocking_region(BlockingKind::Fsync);
            }
            on_release(c);
            let v = take_violations_with_prefix("selftest.blk.");
            assert_eq!(v.len(), 1);
            assert_eq!(v[0].kind, ViolationKind::BlockingHeld);
            assert_eq!(v[0].classes, vec!["selftest.blk.gate".to_string()]);
        }

        #[test]
        fn acquiring_inside_active_region_is_flagged() {
            set_mode(Mode::Warn);
            let c = register_class("selftest.blkacq.x");
            {
                let _r = blocking_region(BlockingKind::Accept);
                on_acquire(c, here());
                on_release(c);
            }
            let v = take_violations_with_prefix("selftest.blkacq.");
            assert_eq!(v.len(), 1);
            assert_eq!(v[0].kind, ViolationKind::BlockingHeld);
        }

        #[test]
        fn condvar_wait_holding_second_class_is_flagged() {
            set_mode(Mode::Warn);
            let m = register_class("selftest.cv.m");
            let other = register_class("selftest.cv.other");
            on_acquire(other, here());
            on_acquire(m, here());
            let tok = condvar_wait_begin(m, here());
            condvar_wait_end(tok);
            on_release(m);
            on_release(other);
            let v = take_violations_with_prefix("selftest.cv.");
            assert_eq!(v.len(), 1);
            assert_eq!(v[0].kind, ViolationKind::CondvarHeld);
            assert_eq!(
                v[0].classes,
                vec!["selftest.cv.m".to_string(), "selftest.cv.other".to_string()]
            );

            // The disciplined shape — waiting holding only the waited
            // mutex — is clean, and the stack survives the round trip.
            on_acquire(m, here());
            let tok = condvar_wait_begin(m, here());
            condvar_wait_end(tok);
            on_release(m);
            assert!(take_violations_with_prefix("selftest.cv.").is_empty());
        }

        #[test]
        fn same_class_nesting_is_flagged() {
            set_mode(Mode::Warn);
            let c = register_class("selftest.nest.s");
            on_acquire(c, here());
            on_acquire(c, here());
            on_release(c);
            on_release(c);
            let v = take_violations_with_prefix("selftest.nest.");
            assert_eq!(v.len(), 1);
            assert_eq!(v[0].kind, ViolationKind::SameClassNesting);
        }

        #[test]
        fn anon_classes_are_not_aliased() {
            set_mode(Mode::Warn);
            let a = anon_class();
            let b = anon_class();
            assert_ne!(a, b);
            // a→b then b→a would be an inversion if aliased into one
            // class; as distinct classes it is one (real) inversion too —
            // but nesting the *same* anon pair consistently is clean.
            on_acquire(a, here());
            on_acquire(b, here());
            on_release(b);
            on_release(a);
            assert!(take_violations_with_prefix("anon#").is_empty());
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::{BlockingKind, ClassId, Mode, Violation};

    /// No-op stand-in; see the `enabled` build for semantics.
    #[inline(always)]
    pub fn register_class(_name: &'static str) -> ClassId {
        ClassId::from_raw(0)
    }

    /// No-op stand-in; see the `enabled` build for semantics.
    #[inline(always)]
    pub fn anon_class() -> ClassId {
        ClassId::from_raw(0)
    }

    /// Zero-sized stand-in for the region marker.
    pub struct BlockingRegion(());

    /// No-op stand-in; compiles to nothing.
    #[inline(always)]
    pub fn blocking_region(_kind: BlockingKind) -> BlockingRegion {
        BlockingRegion(())
    }

    /// Always [`Mode::Off`] when the feature is disabled.
    #[inline(always)]
    pub fn mode() -> Mode {
        Mode::Off
    }

    /// Always zero when the feature is disabled (no instrumentation).
    #[inline(always)]
    pub fn thread_acquire_count() -> u64 {
        0
    }

    /// No-op stand-in.
    #[inline(always)]
    pub fn set_mode(_m: Mode) {}

    /// Always empty when the feature is disabled.
    #[inline(always)]
    pub fn classes() -> Vec<String> {
        Vec::new()
    }

    /// Always empty when the feature is disabled.
    #[inline(always)]
    pub fn edges() -> Vec<(String, String)> {
        Vec::new()
    }

    /// Always empty when the feature is disabled.
    #[inline(always)]
    pub fn violations() -> Vec<Violation> {
        Vec::new()
    }

    /// Always zero when the feature is disabled.
    #[inline(always)]
    pub fn violation_count() -> usize {
        0
    }

    /// Always empty when the feature is disabled.
    #[inline(always)]
    pub fn take_violations() -> Vec<Violation> {
        Vec::new()
    }

    /// Always empty when the feature is disabled.
    #[inline(always)]
    pub fn take_violations_with_prefix(_prefix: &str) -> Vec<Violation> {
        Vec::new()
    }

    /// Notes that the validator is compiled out.
    pub fn report() -> String {
        "lockdep: disabled (build with `--features lockdep` to instrument)".to_string()
    }

    /// An empty graph when the feature is disabled.
    pub fn dot() -> String {
        "digraph lockorder {\n}\n".to_string()
    }
}

pub use imp::*;

/// Whether this build carries the real validator (`enabled` feature) or
/// the zero-cost stub — lets embedders print a useful hint instead of an
/// empty graph.
pub const ENABLED: bool = cfg!(feature = "enabled");
