//! ddlf-lint — source-level lock-discipline rules clippy can't express.
//!
//! Scans `crates/*/src` (the vendored shims under `vendor/` are exempt
//! by construction) and enforces four repo rules:
//!
//! * `std-sync` — no `std::sync::Mutex`/`RwLock`/`Condvar` outside the
//!   vendored `parking_lot` shim, so every lock in the tree goes
//!   through the instrumented (lockdep-hooked) types. Crates that must
//!   stay below `parking_lot` in the dependency graph (`ddlf-telemetry`,
//!   `ddlf-lockdep` itself) opt out per line with
//!   `// lockdep: allow(std-sync)`.
//! * `raw-fsync` — no `sync_data`/`sync_all` outside `wal.rs`:
//!   durability belongs to the WAL layer, where the blocking-section
//!   verifier brackets it.
//! * `held-across-blocking` — no `.lock(` call textually inside a
//!   `blocking_region` scope without
//!   `// lockdep: allow(held-across-blocking)`; the dynamic checker
//!   catches the runtime form, this catches it at review time.
//! * `channel-unwrap` — in `crates/server`, no `.unwrap()` on
//!   cross-thread channel/socket results (`recv`/`send`/`accept`): a
//!   disconnected peer must degrade, not panic a server thread.
//!   (Test modules — everything after a `#[cfg(test)]` line — are
//!   exempt.)
//!
//! Violations print GitHub `::error file=…,line=…::…` annotations and
//! the process exits non-zero, so the CI `lint-test` job surfaces them
//! inline on the PR diff.

use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, PartialEq, Eq)]
struct Finding {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

/// True when `line` (or the previous line) carries the allow pragma
/// for `rule`.
fn allowed(lines: &[&str], idx: usize, rule: &str) -> bool {
    let needle = format!("lockdep: allow({rule})");
    lines[idx].contains(&needle) || (idx > 0 && lines[idx - 1].contains(&needle))
}

/// Strips a trailing `// …` line comment (naive: does not parse string
/// literals, which is fine for the patterns these rules match).
fn code_of(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// True when `hay` contains `pat` NOT followed by an identifier
/// character (so `std::sync::Mutex` does not match `MutexGuard`).
fn contains_word(hay: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(i) = hay[from..].find(pat) {
        let end = from + i + pat.len();
        let boundary = hay[end..]
            .chars()
            .next()
            .map(|c| !c.is_alphanumeric() && c != '_')
            .unwrap_or(true);
        if boundary {
            return true;
        }
        from = end;
    }
    false
}

/// Scans one source file; `file` is the repo-relative label used in
/// annotations.
fn scan_source(file: &str, content: &str) -> Vec<Finding> {
    let lines: Vec<&str> = content.lines().collect();
    let mut findings = Vec::new();
    let is_wal = file.ends_with("wal.rs");
    let in_server = file.contains("crates/server/");

    // Brace depth per line start, plus open blocking_region scopes as
    // (start_depth) entries; a scope closes when depth drops below it.
    let mut depth: i64 = 0;
    let mut region_scopes: Vec<i64> = Vec::new();
    let mut in_tests = false;

    for (idx, raw) in lines.iter().enumerate() {
        let line = code_of(raw);
        let n = idx + 1;
        if raw.trim_start().starts_with("#[cfg(test)]") {
            in_tests = true;
        }

        // ---- rule: std-sync ----
        let std_sync_hit = contains_word(line, "std::sync::Mutex")
            || contains_word(line, "std::sync::RwLock")
            || contains_word(line, "std::sync::Condvar")
            || (line.contains("use std::sync::")
                && (contains_word(line, "Mutex")
                    || contains_word(line, "RwLock")
                    || contains_word(line, "Condvar")));
        if std_sync_hit && !allowed(&lines, idx, "std-sync") {
            findings.push(Finding {
                file: file.to_string(),
                line: n,
                rule: "std-sync",
                message: "std::sync lock primitive outside the vendored parking_lot shim; \
                          use parking_lot (lockdep-instrumented) or annotate with \
                          `// lockdep: allow(std-sync)`"
                    .to_string(),
            });
        }

        // ---- rule: raw-fsync ----
        if !is_wal
            && (contains_word(line, "sync_data") || contains_word(line, "sync_all"))
            && !allowed(&lines, idx, "raw-fsync")
        {
            findings.push(Finding {
                file: file.to_string(),
                line: n,
                rule: "raw-fsync",
                message: "raw fsync outside wal.rs; route durability through the WAL \
                          layer (blocking-section verified) or annotate with \
                          `// lockdep: allow(raw-fsync)`"
                    .to_string(),
            });
        }

        // ---- rule: held-across-blocking ----
        if !region_scopes.is_empty()
            && line.contains(".lock(")
            && !allowed(&lines, idx, "held-across-blocking")
        {
            findings.push(Finding {
                file: file.to_string(),
                line: n,
                rule: "held-across-blocking",
                message: "lock acquisition textually inside a blocking_region scope; \
                          hoist it out or annotate with \
                          `// lockdep: allow(held-across-blocking)`"
                    .to_string(),
            });
        }

        // ---- rule: channel-unwrap ----
        if in_server
            && !in_tests
            && line.contains(".unwrap()")
            && (line.contains(".recv(")
                || line.contains(".try_recv(")
                || line.contains(".send(")
                || line.contains(".accept("))
            && !allowed(&lines, idx, "channel-unwrap")
        {
            findings.push(Finding {
                file: file.to_string(),
                line: n,
                rule: "channel-unwrap",
                message: "unwrap() on a cross-thread channel/socket result in the \
                          server; a disconnected peer must degrade, not panic \
                          (or annotate with `// lockdep: allow(channel-unwrap)`)"
                    .to_string(),
            });
        }

        // Track blocking_region scopes *after* rule checks so the
        // guard-creating line itself is not inside its own scope. A
        // region opened at depth d is alive until the enclosing block
        // closes (depth drops below d); a net-brace-neutral inner block
        // on one line leaves it open, which errs conservative.
        for ch in line.chars() {
            match ch {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if line.contains("blocking_region(") {
            region_scopes.push(depth);
        }
        while region_scopes.last().is_some_and(|&d| depth < d) {
            region_scopes.pop();
        }
    }
    findings
}

fn rust_files(root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Scans every `crates/*/src` tree under `repo_root`.
fn scan_repo(repo_root: &Path) -> Vec<Finding> {
    let crates = repo_root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(&crates) {
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                crate_dirs.push(src);
            }
        }
    }
    crate_dirs.sort();
    let mut files = Vec::new();
    for dir in &crate_dirs {
        rust_files(dir, &mut files);
    }
    files.sort();
    let mut findings = Vec::new();
    for path in files {
        // The lint's own source is full of deliberately-violating test
        // fixtures; scanning it would be navel-gazing.
        if path.ends_with("bin/ddlf_lint.rs") {
            continue;
        }
        let Ok(content) = std::fs::read_to_string(&path) else {
            continue;
        };
        let label = path
            .strip_prefix(repo_root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(scan_source(&label, &content));
    }
    findings
}

fn main() {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let findings = scan_repo(&root);
    for f in &findings {
        println!(
            "::error file={},line={}::{}: {}",
            f.file, f.line, f.rule, f.message
        );
        eprintln!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    if findings.is_empty() {
        println!("ddlf-lint: clean");
    } else {
        eprintln!("ddlf-lint: {} violation(s)", findings.len());
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(file: &str, src: &str) -> Vec<(&'static str, usize)> {
        scan_source(file, src)
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn std_sync_flagged_unless_annotated() {
        let src = "use std::sync::Mutex;\n";
        assert_eq!(rules("crates/x/src/lib.rs", src), vec![("std-sync", 1)]);
        let ok = "// lockdep: allow(std-sync)\nuse std::sync::Mutex;\n";
        assert!(rules("crates/x/src/lib.rs", ok).is_empty());
        let inline = "use std::sync::Mutex; // lockdep: allow(std-sync)\n";
        assert!(rules("crates/x/src/lib.rs", inline).is_empty());
    }

    #[test]
    fn std_sync_word_boundary_spares_guards_and_atomics() {
        let src = "fn f() -> std::sync::MutexGuard<'static, u8> { todo!() }\n\
                   use std::sync::atomic::AtomicU8;\nuse std::sync::Arc;\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn raw_fsync_allowed_only_in_wal() {
        let src = "fn f(file: &std::fs::File) { file.sync_data().ok(); }\n";
        assert_eq!(rules("crates/x/src/store.rs", src), vec![("raw-fsync", 1)]);
        assert!(rules("crates/engine/src/wal.rs", src).is_empty());
    }

    #[test]
    fn lock_inside_blocking_region_flagged() {
        let src = "fn f() {\n    let _r = blocking_region(BlockingKind::Fsync);\n    \
                   let g = self.state.lock();\n}\nfn g() {\n    let h = self.state.lock();\n}\n";
        assert_eq!(
            rules("crates/x/src/lib.rs", src),
            vec![("held-across-blocking", 3)]
        );
        let ok = "fn f() {\n    let _r = blocking_region(BlockingKind::Fsync);\n    \
                  // lockdep: allow(held-across-blocking)\n    let g = self.state.lock();\n}\n";
        assert!(rules("crates/x/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn blocking_scope_ends_with_block() {
        let src = "fn f() {\n    {\n        let _r = blocking_region(K);\n    }\n    \
                   let g = self.state.lock();\n}\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn server_channel_unwrap_flagged_outside_tests() {
        let src = "fn f(rx: &Receiver<u8>) { let _ = rx.recv().unwrap(); }\n";
        assert_eq!(
            rules("crates/server/src/server.rs", src),
            vec![("channel-unwrap", 1)]
        );
        // Same pattern outside crates/server: out of scope.
        assert!(rules("crates/engine/src/executor.rs", src).is_empty());
        // After #[cfg(test)]: exempt.
        let test_src = "#[cfg(test)]\nmod tests {\n    fn f(rx: &Receiver<u8>) \
                        { let _ = rx.recv().unwrap(); }\n}\n";
        assert!(rules("crates/server/src/server.rs", test_src).is_empty());
    }
}
