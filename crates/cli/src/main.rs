//! The `ddlf` command-line entry point (logic in the library crate).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match ddlf_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    // The wire commands talk to a server; everything else loads a spec
    // file and runs locally.
    let path = match &cmd {
        ddlf_cli::Command::Serve {
            addr,
            threads,
            inflate,
            wal,
            wal_sync,
            group_commit,
            admission_batch,
            no_telemetry,
        } => match ddlf_cli::run_serve(
            addr,
            *threads,
            *inflate,
            wal.as_deref(),
            *wal_sync,
            *group_commit,
            *admission_batch,
            *no_telemetry,
        ) {
            Ok(()) => std::process::exit(0),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        },
        ddlf_cli::Command::Recover {
            dir,
            expect_total,
            json,
        } => {
            let (out, code) = ddlf_cli::run_recover(dir, *expect_total, *json);
            print!("{out}");
            std::process::exit(code);
        }
        ddlf_cli::Command::Stats { addr, json, prom } => {
            let (out, code) = ddlf_cli::run_stats(addr, *json, *prom);
            print!("{out}");
            std::process::exit(code);
        }
        ddlf_cli::Command::Read { .. } => {
            let (out, code) = ddlf_cli::run_read(&cmd);
            print!("{out}");
            std::process::exit(code);
        }
        ddlf_cli::Command::Lockgraph { dot } => {
            let (out, code) = ddlf_cli::run_lockgraph(*dot);
            print!("{out}");
            std::process::exit(code);
        }
        ddlf_cli::Command::Submit { spec, .. } => spec.clone(),
        ddlf_cli::Command::Certify { spec }
        | ddlf_cli::Command::Deadlock { spec }
        | ddlf_cli::Command::Explore { spec, .. }
        | ddlf_cli::Command::Simulate { spec, .. }
        | ddlf_cli::Command::Run { spec, .. }
        | ddlf_cli::Command::Dot { spec } => spec.clone(),
    };
    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    if let ddlf_cli::Command::Submit { .. } = &cmd {
        // The server parses and certifies the spec; ship it verbatim.
        let (out, code) = ddlf_cli::run_submit(&cmd, &json);
        print!("{out}");
        std::process::exit(code);
    }
    let sys = match ddlf_cli::load_system(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let (out, code) = ddlf_cli::execute(&cmd, &sys);
    print!("{out}");
    std::process::exit(code);
}
