//! The `ddlf` command-line entry point (logic in the library crate).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match ddlf_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let path = match &cmd {
        ddlf_cli::Command::Certify { spec }
        | ddlf_cli::Command::Deadlock { spec }
        | ddlf_cli::Command::Simulate { spec, .. }
        | ddlf_cli::Command::Run { spec, .. }
        | ddlf_cli::Command::Dot { spec } => spec.clone(),
    };
    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let sys = match ddlf_cli::load_system(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let (out, code) = ddlf_cli::execute(&cmd, &sys);
    print!("{out}");
    std::process::exit(code);
}
